//! The §6 future-work extensions in action: XQuery-lite FLWOR expressions
//! and full-text search, both layered on the same engine machinery.
//!
//! Run with: `cargo run --release --example xquery_fulltext`

use system_rx::engine::{Database, Output, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(Database::create_in_memory()?);
    session.execute("CREATE TABLE library (shelf VARCHAR, doc XML)")?;
    session.execute("CREATE INDEX year_idx ON library (doc) USING XPATH '/book/year' AS DOUBLE")?;
    session.execute(
        "CREATE FULLTEXT INDEX abstract_ft ON library (doc) USING XPATH '/book/abstract'",
    )?;

    let books = [
        (
            "db",
            "Relational Databases",
            1970,
            "tables tuples and a declarative algebra",
        ),
        (
            "db",
            "Native XML Storage",
            2005,
            "packed records dewey identifiers streaming xpath",
        ),
        (
            "pl",
            "Streaming Algorithms",
            2003,
            "one pass evaluation with bounded state",
        ),
        (
            "db",
            "Query Optimization",
            1979,
            "access path selection with a cost model",
        ),
    ];
    for (shelf, title, year, abstract_text) in books {
        session.execute(&format!(
            "INSERT INTO library VALUES ('{shelf}', XML('<book><title>{title}</title>\
             <year>{year}</year><abstract>{abstract_text}</abstract></book>'))"
        ))?;
    }

    // Full-text: all terms must appear (DocID-level ANDing of postings).
    println!("books mentioning both 'streaming' and 'xpath':");
    if let Output::Rows(rows) =
        session.execute("SELECT * FROM library WHERE XMLCONTAINS('streaming xpath')")?
    {
        for r in &rows {
            println!("  doc {} on shelf {:?}", r.doc, r.values[0]);
        }
        assert_eq!(rows.len(), 1);
    }

    // FLWOR: filter (index-accelerated through the folded where-predicate),
    // order, and construct.
    println!("\nmodern books, newest first:");
    if let Output::Xml(items) = session.execute(
        "XQUERY 'for $b in /book where $b/year > 1980 \
         order by $b/year descending \
         return <entry><t>{ $b/title }</t><y>{ $b/year }</y></entry>' ON library",
    )? {
        for x in &items {
            println!("  {x}");
        }
        assert_eq!(items.len(), 2);
        assert!(items[0].contains("2005"));
    }

    // Publishing functions over relational columns (§4.1 through SQL).
    println!("\nshelf summary via XMLAGG:");
    if let Output::Xml(v) = session
        .execute("SELECT XMLAGG(XMLELEMENT(NAME shelf, shelf) ORDER BY shelf) FROM library")?
    {
        println!("  {}", v[0]);
    }
    Ok(())
}
