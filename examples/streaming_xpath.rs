//! QuickXScan in isolation (§4.2): streaming XPath over generated documents,
//! compared against the DOM-based evaluator and the naive per-instance
//! streaming matcher — including the Fig. 7 state-count blowup on recursive
//! documents.
//!
//! Run with: `cargo run --release --example streaming_xpath`

use std::time::Instant;
use system_rx::gen::{bom_doc, recursive_doc, sized_tree};
use system_rx::xml::dom::DomTree;
use system_rx::xml::NameDict;
use system_rx::xpath::baseline::{DomXPath, NaiveStreamMatcher};
use system_rx::xpath::quickxscan::scan_str;
use system_rx::xpath::{QueryTree, XPathParser};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dict = NameDict::new();

    // --- Linearity in document size (the §4.2 design goal) ----------------
    println!("QuickXScan elapsed time vs document size (query //item[entry]):");
    let path = XPathParser::new().parse("//item[entry]")?;
    let tree = QueryTree::compile(&path)?;
    for nodes in [1_000usize, 10_000, 100_000] {
        let doc = sized_tree(nodes, 4, 16, 7);
        let t = Instant::now();
        let (hits, stats) = scan_str(&tree, &dict, &doc)?;
        println!(
            "  {:>7} nodes ({:>8} bytes): {:>10.2?}  hits={} peak-instances={}",
            nodes,
            doc.len(),
            t.elapsed(),
            hits.len(),
            stats.peak_instances
        );
    }

    // --- QuickXScan vs DOM-based evaluation -------------------------------
    println!("\nQuickXScan vs DOM (build tree, then evaluate) on 100k nodes:");
    let doc = sized_tree(100_000, 4, 16, 7);
    let t = Instant::now();
    let (qx_hits, _) = scan_str(&tree, &dict, &doc)?;
    let qx_time = t.elapsed();
    let t = Instant::now();
    let dom = DomTree::parse(&doc, &dict)?;
    let dom_hits = DomXPath::new(&tree, &dict).eval(&dom);
    let dom_time = t.elapsed();
    assert_eq!(qx_hits.len(), dom_hits.len());
    println!(
        "  QuickXScan: {qx_time:.2?}   DOM: {dom_time:.2?} (incl. {} bytes of tree)   speedup {:.1}x",
        dom.approx_bytes(),
        dom_time.as_secs_f64() / qx_time.as_secs_f64()
    );

    // --- Fig. 7: active state count on recursive documents ----------------
    println!("\nFig. 7 state comparison (//a//a//a over r nested <a> elements):");
    println!(
        "  {:>4} {:>22} {:>22}",
        "r", "QuickXScan peak", "naive matcher peak"
    );
    let path = XPathParser::new().parse("//a//a//a")?;
    let tree3 = QueryTree::compile(&path)?;
    for r in [4usize, 8, 16, 32, 64] {
        let doc = recursive_doc("a", r, "x");
        let (_, stats) = scan_str(&tree3, &dict, &doc)?;
        let mut naive = NaiveStreamMatcher::new(&tree3, &dict)?;
        system_rx::xml::Parser::new(&dict).parse(&doc, &mut naive)?;
        let (_, naive_peak) = naive.finish();
        println!("  {r:>4} {:>22} {naive_peak:>22}", stats.peak_instances);
    }

    // --- A recursive query with predicates over a BOM document ------------
    println!("\nBill-of-materials: parts containing a part named p12:");
    let doc = bom_doc(5, 3);
    let path = XPathParser::new().parse(r#"//part[.//name = "p12"]"#)?;
    let tree = QueryTree::compile(&path)?;
    let (hits, stats) = scan_str(&tree, &dict, &doc)?;
    println!(
        "  {} matching ancestors (every part on the path to p12); {} propagations",
        hits.len(),
        stats.propagations
    );
    Ok(())
}
