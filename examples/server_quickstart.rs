//! Serve a database over loopback TCP and talk to it three ways: a
//! blocking client in an explicit transaction, a plain reader, and a
//! protocol-v2 multiplexed connection pipelining several sessions over one
//! socket.
//!
//! Run with: `cargo run --example server_quickstart`

use std::time::Duration;

use system_rx::engine::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::server::{
    connect_tcp, connect_tcp_multiplexed, ConnectOptions, ReqClass, Server, ServerConfig,
};

fn main() {
    // An in-memory database with one table: a string key plus an XML column.
    // A document-cache budget keeps hot documents' packed records resident
    // above the buffer pool, so repeated reads skip the NodeID index.
    let db = Database::create_in_memory_with(DbConfig {
        doc_cache_bytes: 4 << 20,
        ..DbConfig::default()
    })
    .expect("create database");
    db.create_table(
        "orders",
        &[("customer", ColumnKind::Str), ("doc", ColumnKind::Xml)],
    )
    .expect("create table");

    // Start the service layer and bind an ephemeral loopback port.
    let server = Server::start(
        db,
        ServerConfig {
            workers: 4,
            queue_depth: 32,
            idle_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind listener");
    println!("rx-server listening on {addr}");

    // Client one inserts inside an explicit transaction.
    let mut writer = connect_tcp(addr).expect("connect writer");
    writer.begin().unwrap();
    for (customer, total) in [("ada", 120), ("grace", 75), ("edsger", 310)] {
        let doc = writer
            .insert_row(
                "orders",
                vec![
                    ColValue::Str(customer.to_string()),
                    ColValue::Xml(format!("<order><total>{total}</total></order>")),
                ],
            )
            .unwrap();
        println!("writer: inserted order for {customer} as doc {doc}");
    }
    writer.commit().unwrap();

    // Client two queries concurrently over its own connection. The second
    // run of the same path is served from the plan cache, and the documents
    // it touches are replayed from the warm document cache — no heap
    // fetches, no index probes.
    let mut reader = connect_tcp(addr).expect("connect reader");
    let hits = reader.query("orders", "doc", "/order/total").unwrap();
    println!("reader: {} orders, totals:", hits.len());
    for hit in &hits {
        println!("  doc {} -> {}", hit.doc, hit.value);
    }
    let again = reader.query("orders", "doc", "/order/total").unwrap();
    assert_eq!(again.len(), hits.len());

    // The pipelined API: ONE connection, many concurrent sessions. Each
    // session has independent transaction state; requests from different
    // sessions overlap on the wire and may complete out of order.
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).expect("connect mux");
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let mut session = conn.session();
            std::thread::spawn(move || {
                session.begin().unwrap();
                let doc = session
                    .insert_row(
                        "orders",
                        vec![
                            ColValue::Str(format!("mux-{i}")),
                            ColValue::Xml(format!("<order><total>{}</total></order>", 10 * i)),
                        ],
                    )
                    .unwrap();
                session.commit().unwrap();
                doc
            })
        })
        .collect();
    for w in workers {
        let doc = w.join().unwrap();
        println!("mux: committed doc {doc}");
    }

    // The admin stats surface: server counters plus engine counters.
    let stats = reader.stats().unwrap();
    println!("\n-- server stats --");
    println!(
        "requests total/rejected/errored: {}/{}/{}",
        stats.requests_total, stats.requests_rejected, stats.requests_errored
    );
    println!(
        "sessions opened/active/expired:  {}/{}/{}",
        stats.sessions_opened, stats.sessions_active, stats.sessions_expired
    );
    println!(
        "connections v1/v2: {}/{}, streams opened {}, out-of-order completions {}",
        stats.connections_v1, stats.connections_v2, stats.streams_opened, stats.ooo_completions
    );
    for class in ReqClass::all() {
        let l = &stats.latency[class as usize];
        println!(
            "latency[{:5}]: {} requests, mean {} us",
            class.label(),
            l.count,
            l.mean_us()
        );
    }
    println!(
        "buffer hits/misses: {}/{}",
        stats.db.buffer_hits, stats.db.buffer_misses
    );
    println!(
        "wal records/bytes:  {}/{}",
        stats.db.wal_records, stats.db.wal_bytes
    );
    println!(
        "buffer shards/contention: {}/{}",
        stats.db.buffer_shards, stats.db.buffer_contention
    );
    println!(
        "group commit: {} fsyncs for {} waiting commits (max batch {} records, durable lsn {}, lag {})",
        stats.db.wal_fsyncs,
        stats.db.wal_group_commits,
        stats.db.wal_batch_max,
        stats.db.wal_durable_lsn,
        stats.db.wal_durable_lag
    );
    println!(
        "lock waits/timeouts/deadlocks: {}/{}/{}",
        stats.db.lock_waits, stats.db.lock_timeouts, stats.db.lock_deadlocks
    );
    println!(
        "query executor: {} workers, {} parallel queries",
        stats.db.query_workers, stats.db.parallel_queries
    );
    println!(
        "plan cache: {} hits / {} misses, {} entries",
        stats.db.plan_cache_hits, stats.db.plan_cache_misses, stats.db.plan_cache_entries
    );
    println!(
        "doc cache:  {} hits / {} misses, {} evictions, {} bytes resident",
        stats.db.doc_cache_hits,
        stats.db.doc_cache_misses,
        stats.db.doc_cache_evictions,
        stats.db.doc_cache_bytes
    );

    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
