//! Quickstart: create a database, define a table with an XML column, index
//! it, load documents (one schema-validated), and query through the SQL/XML
//! session layer.
//!
//! Run with: `cargo run --example quickstart`

use system_rx::engine::{Database, Output, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory database; Database::create_dir("path") gives a durable one.
    let db = Database::create_in_memory()?;
    let session = Session::new(db);

    // A base table with a relational column and a native XML column (§3.1:
    // the XML column gets its own internal table space + NodeID index).
    session.execute("CREATE TABLE products (sku VARCHAR, doc XML)")?;

    // An XPath value index (§3.3): simple path, typed keys.
    session.execute(
        "CREATE INDEX price_idx ON products (doc) \
         USING XPATH '/Catalog/Product/RegPrice' AS DOUBLE",
    )?;

    // Register a schema: compiled to a binary table format in the catalog
    // (§3.2, Fig. 4) and executed by the validation VM on insert.
    session.execute(
        "REGISTER SCHEMA catalog AS '\
         <xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\
           <xs:element name=\"Catalog\"><xs:complexType><xs:sequence>\
             <xs:element name=\"Product\" maxOccurs=\"unbounded\">\
               <xs:complexType><xs:sequence>\
                 <xs:element name=\"ProductName\" type=\"xs:string\"/>\
                 <xs:element name=\"RegPrice\" type=\"xs:decimal\"/>\
               </xs:sequence></xs:complexType>\
             </xs:element>\
           </xs:sequence></xs:complexType></xs:element>\
         </xs:schema>'",
    )?;

    // Plain and validated inserts.
    session.execute(
        "INSERT INTO products VALUES ('SKU-1', XML('<Catalog>\
         <Product><ProductName>Widget</ProductName><RegPrice>19.99</RegPrice></Product>\
         </Catalog>'))",
    )?;
    session.execute(
        "INSERT INTO products VALUES ('SKU-2', XMLVALIDATE('<Catalog>\
         <Product><ProductName>Gadget</ProductName><RegPrice>149.00</RegPrice></Product>\
         </Catalog>' ACCORDING TO catalog))",
    )?;

    // A malformed document is rejected by the validation VM.
    let bad = session.execute(
        "INSERT INTO products VALUES ('SKU-3', XMLVALIDATE('<Catalog>\
         <Product><RegPrice>1</RegPrice></Product></Catalog>' ACCORDING TO catalog))",
    );
    println!("validation rejected bad document: {}", bad.is_err());

    // The optimizer picks an index plan (Table 2 case 1: exact DocID list).
    if let Output::Explain(plan) = session
        .execute("EXPLAIN SELECT XMLQUERY('/Catalog/Product[RegPrice > 100]') FROM products")?
    {
        println!("plan:\n{plan}\n");
    }

    // Query: the RegPrice predicate runs off the value index.
    if let Output::Sequence(hits) = session
        .execute("SELECT XMLQUERY('/Catalog/Product[RegPrice > 100]/ProductName') FROM products")?
    {
        for h in &hits {
            println!("match in doc {}: {}", h.doc, h.value);
        }
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].value, "Gadget");
    }

    // Round-trip a stored document.
    if let Output::Documents(docs) =
        session.execute("SELECT XMLSERIALIZE(doc) FROM products WHERE DOCID = 1")?
    {
        println!("stored doc 1: {}", docs[0].1);
    }
    Ok(())
}
