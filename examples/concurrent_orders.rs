//! Concurrency (§5): document-level DocID locking, sub-document node-prefix
//! locking with concurrent writers on disjoint subtrees of one document, and
//! lock-free snapshot readers over the multiversioned store.
//!
//! Run with: `cargo run --release --example concurrent_orders`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use system_rx::engine::conc;
use system_rx::engine::db::{ColValue, ColumnKind, Database};
use system_rx::engine::mvcc::{pack_for_mvcc, MvccXmlStore};
use system_rx::engine::update;
use system_rx::gen::order_doc;
use system_rx::storage::{BufferPool, MemBackend, TableSpace};
use system_rx::xml::{NameDict, NodeId, RelId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: disjoint-subtree writers on one order document ----------
    let db = Database::create_in_memory()?;
    let table = db.create_table("orders", &[("doc", ColumnKind::Xml)])?;
    let doc = db.insert_row(&table, &[ColValue::Xml(order_doc(1, 8))])?;
    let table_id = table.def.id;
    let col = table.xml_column("doc")?;

    // Each item's <Status> text: Order(02)/Item(i)/Status(06)/text(02).
    // Order's children: @id attribute (02), <Customer> (04), items from 06.
    let item_rel = |i: usize| -> NodeId {
        let mut rel = RelId::first().next_sibling().next_sibling(); // 06 = first Item
        for _ in 0..i {
            rel = rel.next_sibling();
        }
        NodeId::root()
            .child(&RelId::first()) // Order
            .child(&rel)
    };

    let updated = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for w in 0..4usize {
            let db = &db;
            let updated = &updated;
            let item_rel = &item_rel;
            s.spawn(move || {
                // Each writer owns two disjoint items of the SAME document.
                for i in [w * 2, w * 2 + 1] {
                    let item = item_rel(i);
                    let txn = db.begin().unwrap();
                    // §5.2 protocol: IX table, IX doc, X subtree.
                    conc::lock_subtree_exclusive(&txn, table_id, doc, &item).unwrap();
                    // Status text = Item/Status(3rd child: Sku=02,Qty=04,Status=06)/text.
                    let status_text =
                        NodeId::from_bytes(&[item.as_bytes(), &[0x06, 0x02]].concat()).unwrap();
                    update::replace_value(
                        &txn,
                        col.xml_table(),
                        doc,
                        &status_text,
                        &format!("shipped-by-{w}"),
                    )
                    .unwrap();
                    txn.commit().unwrap();
                    updated.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let out = db.serialize_document(&table, "doc", doc)?;
    assert_eq!(out.matches("shipped-by-").count(), 8);
    println!(
        "4 writers updated {} disjoint items of one document concurrently",
        updated.load(Ordering::Relaxed)
    );

    // A whole-document reader conflicts while a subtree writer is active:
    let w = db.begin()?;
    conc::lock_subtree_exclusive(&w, table_id, doc, &item_rel(0))?;
    let r = db.begin()?;
    let blocked = !r.try_lock(
        &system_rx::storage::LockName::Document {
            table: table_id,
            doc,
        },
        system_rx::storage::LockMode::S,
    )?;
    println!("whole-document S lock blocked by an item writer: {blocked}");
    w.commit()?;
    r.commit()?;

    // ---- Part 2: MVCC — readers never block under a write storm ----------
    let pool = BufferPool::new(4096);
    let space = TableSpace::create(pool, 99, Arc::new(MemBackend::new()))?;
    let store = Arc::new(MvccXmlStore::create(space)?);
    let dict = NameDict::new();
    store.commit_version(1, &pack_for_mvcc(&order_doc(1, 4), &dict, 3500)?, &[])?;

    let reads = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        // Writer: a new version every iteration.
        {
            let store = Arc::clone(&store);
            let dict = &dict;
            s.spawn(move || {
                for v in 0..200 {
                    let recs = pack_for_mvcc(&order_doc(1, 4 + v % 3), dict, 3500).unwrap();
                    store.commit_version(1, &recs, &[]).unwrap();
                }
            });
        }
        // Readers: consistent snapshots, zero locks.
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let root = NodeId::from_bytes(&[0x02]).unwrap();
                for _ in 0..2000 {
                    let snap = store.snapshot();
                    let rid = store.locate(1, &root, snap).unwrap();
                    assert!(rid.is_some());
                    store.close_snapshot(snap);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    println!(
        "MVCC: {} snapshot reads completed against 200 concurrent version commits in {:.2?}",
        reads.load(Ordering::Relaxed),
        t0.elapsed()
    );
    let (dropped, freed) = store.gc()?;
    println!("GC reclaimed {dropped} old versions ({freed} records)");
    Ok(())
}
