//! A product-catalog workload exercising the paper's Table 2 access methods
//! end-to-end: thousands of small documents, value indexes on price and
//! discount, index-backed queries (exact list / filtering / ANDing / ORing),
//! sub-document updates, and durable storage with crash recovery.
//!
//! Run with: `cargo run --release --example catalog_store`

use std::sync::Arc;
use std::time::Instant;
use system_rx::engine::access;
use system_rx::engine::db::{ColValue, ColumnKind, Database};
use system_rx::engine::update::{self, InsertPos};
use system_rx::gen::{product_doc, CatalogSpec};
use system_rx::xml::value::KeyType;
use system_rx::xml::NodeId;
use system_rx::xpath::XPathParser;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("system-rx-catalog-example");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::create_dir(&dir)?;

    let table = db.create_table(
        "products",
        &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
    )?;
    db.create_value_index(
        "products",
        "price_idx",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        KeyType::Double,
    )?;
    db.create_value_index("products", "disc_idx", "doc", "//Discount", KeyType::Double)?;

    // Load 2000 single-product documents.
    let spec = CatalogSpec {
        products: 2000,
        ..Default::default()
    };
    let t0 = Instant::now();
    for i in 0..spec.products {
        db.insert_row(
            &table,
            &[
                ColValue::Str(format!("SKU-{i:05}")),
                ColValue::Xml(product_doc(&spec, i)),
            ],
        )?;
    }
    println!(
        "loaded {} documents in {:.2?} ({:.0} docs/s)",
        spec.products,
        t0.elapsed(),
        spec.products as f64 / t0.elapsed().as_secs_f64()
    );

    let col = table.xml_column("doc")?;
    let dict = db.dict();
    let queries = [
        // Table 2 case 1: exact index match.
        "/Catalog/Categories/Product[RegPrice > 400]",
        // Table 2 case 2: //Discount contains the access path -> filtering.
        "/Catalog/Categories/Product[Discount > 0.30]",
        // Table 2 case 3: ANDing two indexes.
        "/Catalog/Categories/Product[RegPrice > 250 and Discount > 0.20]",
        // ORing.
        "/Catalog/Categories/Product[RegPrice < 20 or Discount > 0.30]",
        // Unindexed predicate: full scan.
        "/Catalog/Categories/Product[ProductName = 'Product-000007']",
    ];
    for q in queries {
        let path = XPathParser::new().parse(q)?;
        let plan = access::plan(&path, col, false);
        let t = Instant::now();
        let (hits, stats) = access::execute(&plan, &table, col, dict, &path)?;
        println!(
            "\nquery: {q}\n  plan: {}\n  hits={} candidates={} docs-evaluated={} elapsed={:.2?}",
            plan.explain().lines().next().unwrap_or(""),
            hits.len(),
            stats.candidates,
            stats.docs_evaluated,
            t.elapsed()
        );
    }

    // Sub-document update: raise one product's price in place (§3.1 — only
    // the containing record is touched, and Dewey IDs keep every other node
    // stable). update_document_txn takes the §5.2 subtree locks and keeps
    // the value indexes in step with the new price.
    let txn = db.begin()?;
    // /Catalog(02)/Categories(02)/Product(02)/RegPrice/text
    // (the @id attribute takes rel 02, so ProductName=04, RegPrice=06)
    let product = NodeId::from_bytes(&[0x02, 0x02, 0x02])?;
    let price_text = NodeId::from_bytes(&[0x02, 0x02, 0x02, 0x06, 0x02])?;
    let stats = db.update_document_txn(&txn, &table, "doc", 1, &product, |txn, xml| {
        let stats = update::replace_value(txn, xml, 1, &price_text, "999.99")?;
        // And append a tag element to the same product.
        update::insert_fragment(
            txn,
            xml,
            1,
            dict,
            &product,
            InsertPos::Last,
            "<Tag>limited-edition</Tag>",
        )?;
        Ok(stats)
    })?;
    txn.commit()?;
    // The price index sees the new price immediately.
    let path = XPathParser::new().parse("/Catalog/Categories/Product[RegPrice > 900]")?;
    let (hits, _, explain) = access::run_query(&table, col, dict, &path, false)?;
    println!(
        "\nindexed query after update ({}): {} hit(s)",
        explain.lines().next().unwrap_or(""),
        hits.len()
    );
    assert_eq!(hits.len(), 1);
    println!(
        "\nsub-document update touched {} record(s), {} bytes",
        stats.records_touched, stats.bytes_written
    );
    println!("doc 1 now: {}", db.serialize_document(&table, "doc", 1)?);

    // Durability: checkpoint, reopen, verify.
    db.checkpoint()?;
    drop(db);
    let db = Database::open_dir(&dir)?;
    let table = db.table("products")?;
    let doc1 = db.serialize_document(&table, "doc", 1)?;
    assert!(doc1.contains("999.99") && doc1.contains("limited-edition"));
    println!("\nreopened from disk; updated document survived recovery");

    // Storage report.
    let (pages, records, bytes, entries, ipages) = table.xml_column("doc")?.xml_table().stats()?;
    println!(
        "XML table: {pages} pages, {records} packed records, {bytes} data bytes; \
         NodeID index: {entries} entries over {ipages} pages"
    );
    let _ = Arc::strong_count(&table);
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
