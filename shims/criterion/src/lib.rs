//! Offline stand-in for the `criterion` crate (see `[patch.crates-io]` in
//! the root manifest).
//!
//! The build environment has no crates.io access, so this crate provides the
//! API subset the workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size` / `throughput` / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it times `sample_size`
//! batches with `std::time::Instant` and prints mean/min per iteration —
//! enough to compare the paper's packed-vs-naive alternatives by eye, with
//! zero dependencies. Output format is ours, not criterion's.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-iteration work declared for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A bench identifier built from a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    samples: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample; the return value is black-boxed so
    /// the computation is not optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up to populate caches / lazy state.
        black_box(routine());
        self.elapsed.reserve(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.elapsed.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each bench takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b.elapsed);
        self
    }

    /// Run one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b.elapsed);
        self
    }

    /// End the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples (b.iter never called)", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!(" ({:.1} MiB/s)", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {mean:?}, min {min:?} over {} samples{rate}",
            self.name,
            samples.len(),
        );
    }
}

/// Entry point handed to each bench target function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Opaque value barrier so benchmarked results are not optimized away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect bench target functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        // 1 warm-up + 3 timed samples.
        assert_eq!(runs, 4);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, v| {
            b.iter(|| *v * 2)
        });
        g.finish();
    }
}
