//! Offline stand-in for the `parking_lot` crate, implemented over
//! `std::sync` primitives.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace patches `parking_lot` to this crate (see
//! `[patch.crates-io]` in the root manifest). It reproduces exactly the API
//! surface the workspace uses — `Mutex`, `RwLock`, `Condvar` with
//! deadline waits, and the corresponding guards — with `parking_lot`
//! semantics where they differ from `std`: locking never returns a poison
//! error (a poisoned `std` lock is recovered transparently), and
//! `Condvar::wait_until` takes the guard by `&mut` reference.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion primitive; `lock` never fails or poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// Holds an `Option` internally so [`Condvar::wait_until`] can temporarily
/// move the underlying `std` guard out through an `&mut` reference.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Try to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// A reader-writer lock; acquisition never fails or poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access, blocking while a writer holds the lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire exclusive access, blocking while any holder exists.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`] / [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present before wait");
        let g = self.0.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present before wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn condvar_deadline_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_until(&mut g, Instant::now() + Duration::from_millis(20));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let c = Arc::new(Condvar::new());
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = c2.wait_until(&mut g, Instant::now() + Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(30));
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }
}
