//! Config, error type, and deterministic RNG for the `proptest!` runner.

use std::fmt;

/// Runner configuration (subset of upstream's fields).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case (from `prop_assert!` or an explicit `Err`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fail the current case with `message`.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Upstream-compatible alias used by some call sites.
    pub fn reject(message: impl Into<String>) -> TestCaseError {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 generator, seeded from the test's module path so
/// every test gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary name (FNV-1a hash of the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` must be positive).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_name_determinism() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        let mut c = TestRng::from_name("x::z");
        let mut d = TestRng::from_name("x::y");
        assert_ne!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut r = TestRng::from_name("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
