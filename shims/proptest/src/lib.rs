//! Offline stand-in for the `proptest` crate (see `[patch.crates-io]` in
//! the root manifest).
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest's API that the workspace's property tests use:
//!
//! * the [`strategy::Strategy`] trait with `prop_map` / `boxed`;
//! * `Just`, tuples, integer ranges, regex-subset string strategies,
//!   [`collection::vec`], [`option::of`], [`arbitrary::any`], and weighted
//!   [`prop_oneof!`] unions;
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * a deterministic runner (seeded per test name) — failures report the
//!   generated inputs. **No shrinking**: a failing case prints its inputs
//!   verbatim instead of a minimized counterexample.
//!
//! Determinism is a feature here: tier-1 CI runs the same cases every time.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Strategies for `Option<T>`.
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// An `Option<T>` that is `Some` about half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// A strategy producing any value of `T` (full-range for integers).
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Build a union strategy choosing among alternatives, optionally weighted
/// (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body; failure aborts the case
/// with the formatted message (and the runner reports the inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }` runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n", stringify!($arg), &$arg
                            ));
                        )+
                        s
                    };
                    let outcome: $crate::test_runner::TestCaseResult =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), case, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
