//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type. Unlike upstream proptest there is no
/// value tree / shrinking: `generate` draws a value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Object-safe indirection for BoxedStrategy (Strategy itself has generic
// methods, which are confined behind `Self: Sized`).
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weight bookkeeping")
    }
}

// -- integer ranges ---------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// -- any::<T>() -------------------------------------------------------------

/// Full-range strategy for primitive types (see [`crate::arbitrary::any`]).
pub struct Any<T>(pub(crate) PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

// -- strings from regex subsets ---------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// -- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// -- collections ------------------------------------------------------------

/// A length bound for [`crate::collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive minimum length.
    pub min: usize,
    /// Inclusive maximum length.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Result of [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let s = (1u8..4).prop_map(|x| x * 2).generate(&mut r);
            assert!([2, 4, 6].contains(&s));
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let mut r = rng();
        let ones = (0..1000).filter(|_| u.generate(&mut r) == 1).count();
        assert!(ones > 800, "weighted arm picked {ones}/1000");
    }

    #[test]
    fn vec_and_option() {
        let mut r = rng();
        let v = crate::collection::vec(0u8..5, 2..6).generate(&mut r);
        assert!((2..6).contains(&v.len()));
        let o = crate::option::of(Just(7u8));
        let some = (0..100).filter(|_| o.generate(&mut r).is_some()).count();
        assert!((20..80).contains(&some));
    }
}
