//! String generation from a small regex subset.
//!
//! Proptest treats `&str` strategies as regexes. The workspace's tests use
//! a narrow dialect — literals, character classes with ranges, groups, and
//! the `?` / `{m}` / `{m,n}` quantifiers — so that is what this parser
//! supports (e.g. `"[a-z0-9 ]{0,12}"`, `"-?[0-9]{1,12}(\.[0-9]{1,6})?"`).
//! Unsupported syntax panics with the offending pattern, so a new test
//! using a wider dialect fails loudly instead of generating junk.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Node {
    Lit(char),
    Class(Vec<char>),
    Group(Vec<(Node, Rep)>),
}

#[derive(Debug, Clone, Copy)]
struct Rep {
    min: u32,
    max: u32,
}

const ONCE: Rep = Rep { min: 1, max: 1 };

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let seq = parse_seq(pattern, &chars, &mut pos, false);
    if pos != chars.len() {
        panic!("unsupported regex pattern {pattern:?} (stopped at offset {pos})");
    }
    let mut out = String::new();
    emit_seq(&seq, rng, &mut out);
    out
}

fn parse_seq(pat: &str, chars: &[char], pos: &mut usize, in_group: bool) -> Vec<(Node, Rep)> {
    let mut seq = Vec::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        let node = match c {
            ')' if in_group => break,
            '(' => {
                *pos += 1;
                let inner = parse_seq(pat, chars, pos, true);
                if *pos >= chars.len() || chars[*pos] != ')' {
                    panic!("unterminated group in regex pattern {pat:?}");
                }
                *pos += 1;
                Node::Group(inner)
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(pat, chars, pos))
            }
            '\\' => {
                *pos += 1;
                let esc = *chars
                    .get(*pos)
                    .unwrap_or_else(|| panic!("dangling escape in regex pattern {pat:?}"));
                *pos += 1;
                Node::Lit(esc)
            }
            '.' | '*' | '+' | '|' | '^' | '$' => {
                panic!("unsupported regex metacharacter {c:?} in pattern {pat:?}")
            }
            lit => {
                *pos += 1;
                Node::Lit(lit)
            }
        };
        let rep = parse_quantifier(pat, chars, pos);
        seq.push((node, rep));
    }
    seq
}

fn parse_class(pat: &str, chars: &[char], pos: &mut usize) -> Vec<char> {
    let mut members = Vec::new();
    while *pos < chars.len() && chars[*pos] != ']' {
        let lo = chars[*pos];
        *pos += 1;
        if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
            let hi = chars[*pos + 1];
            *pos += 2;
            assert!(lo <= hi, "inverted class range in regex pattern {pat:?}");
            members.extend(lo..=hi);
        } else {
            members.push(lo);
        }
    }
    if *pos >= chars.len() {
        panic!("unterminated character class in regex pattern {pat:?}");
    }
    *pos += 1; // consume ']'
    assert!(!members.is_empty(), "empty character class in {pat:?}");
    members
}

fn parse_quantifier(pat: &str, chars: &[char], pos: &mut usize) -> Rep {
    match chars.get(*pos) {
        Some('?') => {
            *pos += 1;
            Rep { min: 0, max: 1 }
        }
        Some('{') => {
            *pos += 1;
            let mut min = 0u32;
            while let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(10)) {
                min = min * 10 + d;
                *pos += 1;
            }
            let max = if chars.get(*pos) == Some(&',') {
                *pos += 1;
                let mut m = 0u32;
                while let Some(d) = chars.get(*pos).and_then(|c| c.to_digit(10)) {
                    m = m * 10 + d;
                    *pos += 1;
                }
                m
            } else {
                min
            };
            if chars.get(*pos) != Some(&'}') {
                panic!("malformed {{m,n}} quantifier in regex pattern {pat:?}");
            }
            *pos += 1;
            assert!(min <= max, "inverted quantifier in regex pattern {pat:?}");
            Rep { min, max }
        }
        _ => ONCE,
    }
}

fn emit_seq(seq: &[(Node, Rep)], rng: &mut TestRng, out: &mut String) {
    for (node, rep) in seq {
        let span = u64::from(rep.max - rep.min) + 1;
        let reps = rep.min + rng.below(span) as u32;
        for _ in 0..reps {
            match node {
                Node::Lit(c) => out.push(*c),
                Node::Class(members) => {
                    out.push(members[rng.below(members.len() as u64) as usize]);
                }
                Node::Group(inner) => emit_seq(inner, rng, out),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn classes_and_quantifiers() {
        let mut rng = TestRng::from_name("string-tests");
        for _ in 0..200 {
            let s = generate("[a-z]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = generate("[a-z0-9 ]{0,12}", &mut rng);
            assert!(t.len() <= 12);

            let d = generate(r"-?[0-9]{1,12}(\.[0-9]{1,6})?", &mut rng);
            let stripped = d.strip_prefix('-').unwrap_or(&d);
            let mut parts = stripped.splitn(2, '.');
            let int = parts.next().unwrap();
            assert!((1..=12).contains(&int.len()) && int.bytes().all(|b| b.is_ascii_digit()));
            if let Some(frac) = parts.next() {
                assert!((1..=6).contains(&frac.len()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_syntax_panics() {
        let mut rng = TestRng::from_name("string-tests-2");
        generate("[a-z]+", &mut rng);
    }
}
