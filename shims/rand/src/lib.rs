//! Offline stand-in for the `rand` crate (see `[patch.crates-io]` in the
//! root manifest).
//!
//! The workload generators only need a seedable, deterministic PRNG with
//! `gen_range` over integer ranges, so this crate provides exactly that:
//! [`rngs::StdRng`] is a splitmix64 generator, and the [`Rng`] /
//! [`SeedableRng`] traits mirror the rand 0.8 method signatures the
//! workspace calls. Sequences differ from upstream rand's ChaCha-based
//! `StdRng`, which is fine here — callers depend on determinism per seed,
//! not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Seedable construction (rand 0.8 subset).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Random-value generation (rand 0.8 subset).
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 % 1.0 < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(0u8..=2);
            assert!(w <= 2);
        }
    }
}
