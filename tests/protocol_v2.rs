//! Protocol v2 wire-level tests: property-based frame round-trips for both
//! codec versions, handshake negotiation (v2, explicit v1 downgrade,
//! unknown-version refusal), frame-size-bound enforcement, and full
//! backwards compatibility for v1 clients against a v2 server.

use proptest::prelude::*;
use std::io::Cursor;
use std::sync::Arc;
use std::time::Duration;

use system_rx::engine::{ColValue, ColumnKind, Database};
use system_rx::server::{
    connect_tcp_multiplexed, Client, ClientError, ConnectOptions, ErrorCode, Frame, FrameCodec,
    Server, ServerConfig,
};

// ---------------------------------------------------------------------------
// Frame codec properties
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn v2_frames_round_trip(
        stream in any::<u32>(),
        flags in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let codec = FrameCodec::v2(1 << 20);
        let frame = Frame { stream, flags, payload };
        let mut wire = Vec::new();
        codec.write(&mut wire, &frame).unwrap();
        let mut r = Cursor::new(wire);
        let back = codec.read(&mut r).unwrap().expect("frame must decode");
        prop_assert_eq!(back.stream, frame.stream);
        prop_assert_eq!(back.flags, frame.flags);
        prop_assert_eq!(back.payload, frame.payload);
        // And the stream ends cleanly after exactly one frame.
        prop_assert!(codec.read(&mut r).unwrap().is_none());
    }

    #[test]
    fn v1_frames_round_trip(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let codec = FrameCodec::v1(1 << 20);
        let frame = Frame::data(0, payload.clone());
        let mut wire = Vec::new();
        codec.write(&mut wire, &frame).unwrap();
        let back = codec.read(&mut Cursor::new(wire)).unwrap().unwrap();
        prop_assert_eq!(back.stream, 0u32);
        prop_assert_eq!(back.flags, 0u8);
        prop_assert_eq!(back.payload, payload);
    }

    #[test]
    fn back_to_back_v2_frames_never_desync(
        frames in prop::collection::vec(
            (any::<u32>(), any::<u8>(), prop::collection::vec(any::<u8>(), 0..256)),
            1..16,
        ),
    ) {
        let codec = FrameCodec::v2(1 << 20);
        let mut wire = Vec::new();
        for (stream, flags, payload) in &frames {
            codec.write(&mut wire, &Frame {
                stream: *stream,
                flags: *flags,
                payload: payload.clone(),
            }).unwrap();
        }
        let mut r = Cursor::new(wire);
        for (stream, flags, payload) in &frames {
            let back = codec.read(&mut r).unwrap().expect("lost a frame");
            prop_assert_eq!(back.stream, *stream);
            prop_assert_eq!(back.flags, *flags);
            prop_assert_eq!(&back.payload, payload);
        }
        prop_assert!(codec.read(&mut r).unwrap().is_none());
    }
}

// ---------------------------------------------------------------------------
// Frame-size bound
// ---------------------------------------------------------------------------

#[test]
fn oversized_frames_rejected_without_allocation() {
    let codec = FrameCodec::v2(4096);
    // Write side refuses to emit a frame over the bound.
    let fat = Frame::data(1, vec![0u8; 5000]);
    let mut wire = Vec::new();
    assert!(codec.write(&mut wire, &fat).is_err());
    // Read side rejects a hostile length prefix before allocating: claim
    // 3 GiB with only 8 bytes behind it.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&(3u32 << 30).to_le_bytes());
    hostile.extend_from_slice(&[0u8; 8]);
    let err = codec.read(&mut Cursor::new(hostile)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

// ---------------------------------------------------------------------------
// Handshake negotiation
// ---------------------------------------------------------------------------

fn start_server() -> (Arc<Server>, std::net::SocketAddr) {
    let db = Database::create_in_memory().unwrap();
    db.create_table(
        "items",
        &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
    )
    .unwrap();
    let server = Server::start(
        db,
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            idle_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        },
    );
    let addr = server.listen(("127.0.0.1", 0)).unwrap();
    (server, addr)
}

#[test]
fn handshake_negotiates_v2_by_default() {
    let (server, addr) = start_server();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut c = Client::connect(stream).unwrap();
    assert_eq!(c.protocol_version(), 2);
    c.ping().unwrap();
    assert_eq!(server.stats().connections_v2, 1);
    server.shutdown();
}

#[test]
fn asking_for_a_future_version_lands_on_v2() {
    let (server, addr) = start_server();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut c = Client::connect_with(
        stream,
        ConnectOptions {
            version: 9,
            ..ConnectOptions::default()
        },
    )
    .unwrap();
    assert_eq!(c.protocol_version(), 2, "server caps at what it speaks");
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn explicit_downgrade_to_v1_is_honored() {
    let (server, addr) = start_server();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut c = Client::connect_with(
        stream,
        ConnectOptions {
            version: 1,
            ..ConnectOptions::default()
        },
    )
    .unwrap();
    assert_eq!(c.protocol_version(), 1);
    // The downgraded connection still does real work, lockstep.
    let doc = c
        .insert_row(
            "items",
            vec![ColValue::Str("v1".into()), ColValue::Xml("<item/>".into())],
        )
        .unwrap();
    assert!(c.fetch_row("items", doc).unwrap().is_some());
    let stats = c.stats().unwrap();
    assert_eq!(stats.connections_v1, 1);
    assert_eq!(stats.connections_v2, 0);
    server.shutdown();
}

#[test]
fn unknown_version_refused_cleanly() {
    let (server, addr) = start_server();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let err = match Client::connect_with(
        stream,
        ConnectOptions {
            version: 0,
            ..ConnectOptions::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("version 0 must be refused"),
    };
    match err {
        ClientError::Server(e) => assert_eq!(e.code, ErrorCode::UnsupportedVersion),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }
    // The refusal did not wedge the server: a well-behaved client connects.
    let mut ok = system_rx::server::connect_tcp(addr).unwrap();
    ok.ping().unwrap();
    server.shutdown();
}

#[test]
fn connection_establish_refuses_downgrade() {
    let (server, addr) = start_server();
    let err = match connect_tcp_multiplexed(
        addr,
        ConnectOptions {
            version: 1,
            ..ConnectOptions::default()
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("downgrade must fail Connection::establish"),
    };
    // A multiplexed Connection cannot run on lockstep v1.
    assert!(err.to_string().contains("v1"), "{err}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// v1 compatibility against a v2 server
// ---------------------------------------------------------------------------

#[test]
fn raw_v1_client_full_workload_against_v2_server() {
    // Byte-for-byte what a pre-v2 binary sends: no Hello at all. The
    // server must sniff the first frame and serve the lockstep path.
    let (server, addr) = start_server();
    let stream = std::net::TcpStream::connect(addr).unwrap();
    let mut c = Client::v1(stream).unwrap();
    assert_eq!(c.protocol_version(), 1);
    c.ping().unwrap();
    c.begin().unwrap();
    let doc = c
        .insert_row(
            "items",
            vec![
                ColValue::Str("legacy".into()),
                ColValue::Xml("<item><price>9</price></item>".into()),
            ],
        )
        .unwrap();
    c.commit().unwrap();
    let row = c.fetch_row("items", doc).unwrap().expect("committed row");
    assert_eq!(row.values[0], "legacy");
    let hits = c.query("items", "doc", "/item/price").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].value, "9");
    assert!(c.delete_row("items", doc).unwrap());
    let stats = c.stats().unwrap();
    assert_eq!(stats.connections_v1, 1);
    assert_eq!(stats.streams_opened, 0);
    server.shutdown();
}

#[test]
fn v1_and_v2_clients_share_one_server() {
    let (server, addr) = start_server();
    let mut old = Client::v1(std::net::TcpStream::connect(addr).unwrap()).unwrap();
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).unwrap();
    let mut new = conn.session();
    let d1 = old
        .insert_row(
            "items",
            vec![ColValue::Str("old".into()), ColValue::Xml("<item/>".into())],
        )
        .unwrap();
    let d2 = new
        .insert_row(
            "items",
            vec![ColValue::Str("new".into()), ColValue::Xml("<item/>".into())],
        )
        .unwrap();
    assert_ne!(d1, d2);
    // Each dialect sees the other's committed writes.
    assert!(old.fetch_row("items", d2).unwrap().is_some());
    assert!(new.fetch_row("items", d1).unwrap().is_some());
    let stats = new.stats().unwrap();
    assert_eq!(stats.connections_v1, 1);
    assert_eq!(stats.connections_v2, 1);
    server.shutdown();
}
