//! Property-based tests on the system's core invariants:
//!
//! * Dewey node IDs: order/ancestry/levels under arbitrary midpoint insertion;
//! * decimal sort keys: byte order ≡ numeric order for arbitrary decimals;
//! * B+tree ≡ `BTreeMap` under arbitrary operation sequences;
//! * parse → pack → store → traverse → serialize is the identity on
//!   arbitrary generated documents at arbitrary packing targets;
//! * QuickXScan ≡ DOM evaluation on arbitrary documents and queries.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::storage::{BTree, BufferPool, MemBackend, TableSpace};
use system_rx::xml::nodeid::RelId;
use system_rx::xml::value::Decimal;
use system_rx::xml::NameDict;
use system_rx::xpath::baseline::DomXPath;
use system_rx::xpath::{quickxscan::scan_str, QueryTree, XPathParser};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// An arbitrary small XML document: recursive elements over a tiny name
/// vocabulary, with attributes and text.
fn arb_xml() -> impl Strategy<Value = String> {
    fn node(depth: u32) -> BoxedStrategy<String> {
        let name = prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")];
        let text = "[a-z0-9 ]{0,12}";
        if depth == 0 {
            (name, text)
                .prop_map(|(n, t)| {
                    if t.is_empty() {
                        format!("<{n}/>")
                    } else {
                        format!("<{n}>{t}</{n}>")
                    }
                })
                .boxed()
        } else {
            (
                name,
                proptest::option::of(("[a-z]{1,4}", "[a-z0-9]{0,6}")),
                prop::collection::vec(node(depth - 1), 0..4),
                text,
            )
                .prop_map(|(n, attr, kids, t)| {
                    let attrs = match attr {
                        Some((an, av)) => format!(" {an}=\"{av}\""),
                        None => String::new(),
                    };
                    let body: String = kids.concat();
                    if body.is_empty() && t.is_empty() {
                        format!("<{n}{attrs}/>")
                    } else {
                        format!("<{n}{attrs}>{t}{body}</{n}>")
                    }
                })
                .boxed()
        }
    }
    node(3).prop_map(|inner| format!("<root>{inner}</root>"))
}

/// An arbitrary simple query over the same vocabulary.
fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/root".to_string()),
        Just("/root/a".to_string()),
        Just("//a".to_string()),
        Just("//b".to_string()),
        Just("//a//b".to_string()),
        Just("//a/b".to_string()),
        Just("/root//c".to_string()),
        Just("//a[b]".to_string()),
        Just("//a[not(b)]".to_string()),
        Just("//b[count(a) >= 1]".to_string()),
        Just("//a/@*".to_string()),
        Just("//d/text()".to_string()),
        Just("//*[c]".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relid_between_is_ordered_and_wellformed(
        seq in prop::collection::vec(0usize..=2, 1..40)
    ) {
        // Repeatedly insert between random adjacent pairs; the invariants:
        // strict order is maintained and every ID stays well-formed.
        let mut ids = vec![RelId::first(), RelId::first().next_sibling()];
        for &choice in &seq {
            let i = choice % (ids.len() - 1);
            let mid = RelId::between(&ids[i], &ids[i + 1]).unwrap();
            prop_assert!(ids[i] < mid && mid < ids[i + 1]);
            prop_assert!(RelId::from_bytes(mid.as_bytes()).is_ok());
            ids.insert(i + 1, mid);
        }
        for w in ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn decimal_sort_key_matches_compare(
        a in "-?[0-9]{1,12}(\\.[0-9]{1,6})?",
        b in "-?[0-9]{1,12}(\\.[0-9]{1,6})?"
    ) {
        let (da, db) = (Decimal::parse(&a).unwrap(), Decimal::parse(&b).unwrap());
        prop_assert_eq!(da.sort_key().cmp(&db.sort_key()), da.compare(&db));
    }

    #[test]
    fn btree_behaves_like_btreemap(
        ops in prop::collection::vec(
            (0u8..3, prop::collection::vec(any::<u8>(), 1..12), any::<u64>()),
            1..200
        )
    ) {
        let pool = BufferPool::new(256);
        let space = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).unwrap();
        let tree = BTree::create(space, 2).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (op, key, val) in &ops {
            match op % 3 {
                0 => {
                    let prev = tree.insert(key, *val).unwrap();
                    prop_assert_eq!(prev, model.insert(key.clone(), *val));
                }
                1 => {
                    let got = tree.delete(key).unwrap();
                    prop_assert_eq!(got, model.remove(key));
                }
                _ => {
                    prop_assert_eq!(tree.search(key).unwrap(), model.get(key).copied());
                }
            }
        }
        // Full scans agree in order and content.
        let mut scanned = Vec::new();
        tree.scan_all(|k, v| { scanned.push((k.to_vec(), v)); true }).unwrap();
        let expect: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn store_roundtrip_identity(doc in arb_xml(), target in 128usize..2048) {
        let db = Database::create_in_memory_with(DbConfig {
            target_record_size: target,
            buffer_pages: 512,
            ..Default::default()
        }).unwrap();
        let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        let id = db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
        // Canonicalize through the parser+serializer (whitespace handling),
        // then compare with the stored round trip.
        let dict = NameDict::new();
        let canon = system_rx::xml::serialize::serialize_stream(
            &system_rx::xml::Parser::new(&dict).parse_to_tokens(&doc).unwrap(),
            &dict,
        ).unwrap();
        prop_assert_eq!(db.serialize_document(&t, "doc", id).unwrap(), canon);
    }

    #[test]
    fn quickxscan_agrees_with_dom(doc in arb_xml(), query in arb_query()) {
        let dict = NameDict::new();
        let path = XPathParser::new().parse(&query).unwrap();
        let tree = QueryTree::compile(&path).unwrap();
        let (items, _) = scan_str(&tree, &dict, &doc).unwrap();
        let scan_values: Vec<String> = items.into_iter().map(|i| i.value).collect();
        let dom = system_rx::xml::dom::DomTree::parse(&doc, &dict).unwrap();
        let dom_values = DomXPath::new(&tree, &dict).eval(&dom);
        prop_assert_eq!(scan_values, dom_values, "query {} over {}", query, doc);
    }

    #[test]
    fn parser_serializer_fixpoint(doc in arb_xml()) {
        let dict = NameDict::new();
        let once = system_rx::xml::serialize::serialize_stream(
            &system_rx::xml::Parser::new(&dict).parse_to_tokens(&doc).unwrap(), &dict).unwrap();
        let twice = system_rx::xml::serialize::serialize_stream(
            &system_rx::xml::Parser::new(&dict).parse_to_tokens(&once).unwrap(), &dict).unwrap();
        prop_assert_eq!(once, twice);
    }
}
