//! An XMark-flavoured workload over the engine: a deeper, more varied
//! document shape than the catalog, with a query set checked index-vs-scan
//! and against the DOM reference.

use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{access, AccessPlan};
use system_rx::gen::auction_doc;
use system_rx::xml::value::KeyType;
use system_rx::xpath::XPathParser;

#[test]
fn auction_queries_agree_and_use_indexes() {
    let db = Database::create_in_memory_with(DbConfig {
        target_record_size: 1024,
        ..Default::default()
    })
    .unwrap();
    let t = db
        .create_table("site", &[("doc", ColumnKind::Xml)])
        .unwrap();
    db.create_value_index(
        "site",
        "income",
        "doc",
        "//profile/@income",
        KeyType::Double,
    )
    .unwrap();
    db.create_value_index(
        "site",
        "initial",
        "doc",
        "/site/open_auctions/open_auction/initial",
        KeyType::Double,
    )
    .unwrap();
    let doc = auction_doc(50, 40, 80, 7);
    let id = db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
    assert_eq!(db.serialize_document(&t, "doc", id).unwrap(), doc);

    let col = t.xml_column("doc").unwrap();
    let queries = [
        // XMark Q1-ish: initial price filter.
        "/site/open_auctions/open_auction[initial > 50]",
        // Profiles above an income threshold (attribute index, filtering).
        "//person[profile/@income > 60000]/name",
        // Items by region attribute.
        "//item[@region = 'europe']/name",
        // Auctions with long bid histories.
        "//open_auction[count(bidder) >= 3]",
        // Deep mixed content.
        "//item/description/parlist/listitem/text",
        // Correlated: auctions whose current equals a bidder's current.
        "//open_auction[bidder/current = current]",
    ];
    for q in queries {
        let path = XPathParser::new().parse(q).unwrap();
        for nodeid in [false, true] {
            let plan = access::plan(&path, col, nodeid);
            let (mut hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
            let (mut scan, _) =
                access::execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
            let key = |h: &access::QueryHit| (h.doc, h.node.clone().map(|n| n.as_bytes().to_vec()));
            hits.sort_by_key(key);
            scan.sort_by_key(key);
            assert_eq!(hits, scan, "query {q} nodeid={nodeid}");
            assert!(!scan.is_empty(), "query {q} should match something");
        }
    }
    // The income query actually plans as index access.
    let path = XPathParser::new()
        .parse("//person[profile/@income > 60000]")
        .unwrap();
    let plan = access::plan(&path, col, false);
    assert!(plan.explain().contains("list access"), "{}", plan.explain());
}
