//! Property-based crash-recovery testing at the storage layer: random
//! interleavings of committed, aborted, and in-flight (crashed) transactions
//! over a B+tree + heap; after losing every unflushed page and recovering
//! from the WAL alone, the state must equal a model that applied only the
//! committed transactions.
//!
//! The workload honours the engine's two-phase-locking discipline: a key
//! touched by a transaction that never finishes (crash) stays locked, so
//! later transactions skip operations on it — without that discipline,
//! loser-undo against a later overwrite is unsound in any before-image
//! recovery scheme (the engine enforces it with document X locks held to
//! commit).

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use system_rx::storage::wal::{LogRecord, MemLogStore, RecoveryEnv};
use system_rx::storage::{
    recover, BTree, BufferPool, HeapTable, LockManager, MemBackend, TableSpace, TxnManager, Wal,
};

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, u64),
    Delete(Vec<u8>),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Fate {
    Commit,
    Abort,
    Crash, // left in flight at the crash point
}

fn arb_txn() -> impl Strategy<Value = (Vec<Op>, Fate)> {
    let op = prop_oneof![
        (prop::collection::vec(1u8..16, 1..5), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        prop::collection::vec(1u8..16, 1..5).prop_map(Op::Delete),
    ];
    (
        prop::collection::vec(op, 1..8),
        prop_oneof![
            3 => Just(Fate::Commit),
            1 => Just(Fate::Abort),
            1 => Just(Fate::Crash),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_equals_committed_model(txns in prop::collection::vec(arb_txn(), 1..12)) {
        let backend = Arc::new(MemBackend::new());
        let log_store = Arc::new(MemLogStore::new());
        let space_id = 3u32;
        let anchor = 2u32;

        // Phase 1: set up, checkpoint the empty structures, run the txns,
        // then crash (drop the pool without flushing).
        {
            let pool = BufferPool::new(256);
            let space = TableSpace::create(pool.clone(), space_id, backend.clone()).unwrap();
            let _heap = HeapTable::create(space.clone()).unwrap();
            let tree = BTree::create(space, anchor as usize).unwrap();
            pool.flush_all().unwrap(); // durable empty baseline
            let wal = Wal::new(log_store.clone());
            let txm = TxnManager::new(wal, LockManager::with_defaults());

            let mut frozen: std::collections::BTreeSet<Vec<u8>> = Default::default();
            for (ops, fate) in &txns {
                let txn = txm.begin().unwrap();
                for op in ops {
                    let key = match op {
                        Op::Insert(k, _) | Op::Delete(k) => k,
                    };
                    if frozen.contains(key) {
                        continue; // 2PL: a crashed txn still holds this key
                    }
                    match op {
                        Op::Insert(k, v) => {
                            let prev = tree.insert(k, *v).unwrap();
                            txn.log(&LogRecord::IndexInsert {
                                txn: txn.id(),
                                space: space_id,
                                anchor,
                                key: k.clone(),
                                value: *v,
                                prev,
                            }).unwrap();
                            let t = Arc::clone(&tree);
                            let k2 = k.clone();
                            let v2 = *v;
                            txn.push_undo(Box::new(move |ctx| {
                                match prev {
                                    Some(p) => {
                                        ctx.log(&LogRecord::IndexInsert {
                                            txn: ctx.txn(),
                                            space: space_id,
                                            anchor,
                                            key: k2.clone(),
                                            value: p,
                                            prev: None,
                                        })?;
                                        t.insert(&k2, p)?;
                                    }
                                    None => {
                                        ctx.log(&LogRecord::IndexDelete {
                                            txn: ctx.txn(),
                                            space: space_id,
                                            anchor,
                                            key: k2.clone(),
                                            value: v2,
                                        })?;
                                        t.delete(&k2)?;
                                    }
                                }
                                Ok(())
                            }));
                        }
                        Op::Delete(k) => {
                            if let Some(v) = tree.delete(k).unwrap() {
                                txn.log(&LogRecord::IndexDelete {
                                    txn: txn.id(),
                                    space: space_id,
                                    anchor,
                                    key: k.clone(),
                                    value: v,
                                }).unwrap();
                                let t = Arc::clone(&tree);
                                let k2 = k.clone();
                                txn.push_undo(Box::new(move |ctx| {
                                    ctx.log(&LogRecord::IndexInsert {
                                        txn: ctx.txn(),
                                        space: space_id,
                                        anchor,
                                        key: k2.clone(),
                                        value: v,
                                        prev: None,
                                    })?;
                                    t.insert(&k2, v)?;
                                    Ok(())
                                }));
                            }
                        }
                    }
                }
                match fate {
                    Fate::Commit => txn.commit().unwrap(),
                    Fate::Abort => txn.rollback().unwrap(),
                    Fate::Crash => {
                        for op in ops {
                            match op {
                                Op::Insert(k, _) | Op::Delete(k) => {
                                    frozen.insert(k.clone());
                                }
                            }
                        }
                        std::mem::forget(txn);
                    }
                }
            }
            // Crash: pool dropped here; nothing flushed since the baseline.
        }

        // The model: committed transactions applied in order. Aborted
        // transactions applied-then-undone == not applied (their deletes of
        // other txns' keys WERE real runtime effects though — runtime undo
        // restores exactly the pre-state, so the model can treat aborted
        // txns as fully invisible only if their interleaving is serial,
        // which it is here: txns run one at a time).
        let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        let mut model_frozen: std::collections::BTreeSet<Vec<u8>> = Default::default();
        for (ops, fate) in &txns {
            if *fate == Fate::Crash {
                for op in ops {
                    match op {
                        Op::Insert(k, _) | Op::Delete(k) => {
                            model_frozen.insert(k.clone());
                        }
                    }
                }
                continue;
            }
            if *fate != Fate::Commit {
                continue;
            }
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        if !model_frozen.contains(k) {
                            model.insert(k.clone(), *v);
                        }
                    }
                    Op::Delete(k) => {
                        if !model_frozen.contains(k) {
                            model.remove(k);
                        }
                    }
                }
            }
        }

        // Phase 2: recover from the backend image + WAL.
        let pool = BufferPool::new(256);
        let space = TableSpace::open(pool, space_id, backend).unwrap();
        let heap = HeapTable::open(space.clone()).unwrap();
        let tree = BTree::open(space, anchor as usize).unwrap();
        let mut env = RecoveryEnv::default();
        env.heaps.insert(space_id, Arc::clone(&heap));
        env.indexes.insert((space_id, anchor), Arc::clone(&tree));
        let wal = Wal::new(log_store);
        recover(&wal, &env).unwrap();

        let mut recovered: Vec<(Vec<u8>, u64)> = Vec::new();
        tree.scan_all(|k, v| {
            recovered.push((k.to_vec(), v));
            true
        }).unwrap();
        let expect: Vec<(Vec<u8>, u64)> = model.into_iter().collect();
        prop_assert_eq!(recovered, expect);
    }
}
