//! End-to-end integration tests: the full SQL/XML surface over the native
//! engine, storage fidelity across packing configurations, and index/scan
//! agreement on generated workloads.

use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{access, Output, Session};
use system_rx::gen::{catalog_xml, product_doc, sized_tree, CatalogSpec};
use system_rx::xml::value::KeyType;
use system_rx::xpath::XPathParser;

#[test]
fn sql_session_full_workflow() {
    let s = Session::new(Database::create_in_memory().unwrap());
    s.execute("CREATE TABLE inv (region VARCHAR, doc XML)")
        .unwrap();
    s.execute(
        "CREATE INDEX p ON inv (doc) USING XPATH '/Catalog/Categories/Product/RegPrice' AS DOUBLE",
    )
    .unwrap();
    let spec = CatalogSpec {
        products: 50,
        ..Default::default()
    };
    for i in 0..spec.products {
        let stmt = format!(
            "INSERT INTO inv VALUES ('r{}', XML('{}'))",
            i % 3,
            product_doc(&spec, i).replace('\'', "''")
        );
        s.execute(&stmt).unwrap();
    }
    // Count above a threshold agrees with the generator's closed form.
    let expected = spec.expected_above(250.0);
    match s
        .execute("SELECT XMLQUERY('/Catalog/Categories/Product[RegPrice > 250]') FROM inv")
        .unwrap()
    {
        Output::Sequence(hits) => assert_eq!(hits.len(), expected),
        other => panic!("unexpected {other:?}"),
    }
    // XMLEXISTS row filtering.
    match s
        .execute("SELECT * FROM inv WHERE XMLEXISTS('/Catalog/Categories/Product[RegPrice > 250]')")
        .unwrap()
    {
        Output::Rows(rows) => assert_eq!(rows.len(), expected),
        other => panic!("unexpected {other:?}"),
    }
    // Delete one qualifying row and re-count.
    match s
        .execute("SELECT * FROM inv WHERE XMLEXISTS('/Catalog/Categories/Product[RegPrice > 250]')")
        .unwrap()
    {
        Output::Rows(rows) => {
            let victim = rows[0].doc;
            s.execute(&format!("DELETE FROM inv WHERE DOCID = {victim}"))
                .unwrap();
        }
        other => panic!("unexpected {other:?}"),
    }
    match s
        .execute("SELECT XMLQUERY('/Catalog/Categories/Product[RegPrice > 250]') FROM inv")
        .unwrap()
    {
        Output::Sequence(hits) => assert_eq!(hits.len(), expected - 1),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn storage_roundtrip_across_packing_targets() {
    // The same document must round-trip byte-identically whatever the target
    // record size (i.e. however many records it spills into).
    let doc = catalog_xml(&CatalogSpec {
        products: 40,
        description_len: 120,
        ..Default::default()
    });
    for target in [256usize, 512, 1024, 3500] {
        let db = Database::create_in_memory_with(DbConfig {
            target_record_size: target,
            ..Default::default()
        })
        .unwrap();
        let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        let id = db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
        assert_eq!(
            db.serialize_document(&t, "doc", id).unwrap(),
            doc,
            "target {target}"
        );
        // More spilling -> more records, never fewer than 1.
        let (_, records, _, entries, _) = t.xml_column("doc").unwrap().xml_table().stats().unwrap();
        assert!(records >= 1);
        assert!(entries >= records, "every record has >= 1 interval entry");
    }
}

#[test]
fn index_and_scan_agree_on_generated_catalog() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("c", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index(
        "c",
        "price",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        KeyType::Double,
    )
    .unwrap();
    db.create_value_index("c", "disc", "doc", "//Discount", KeyType::Double)
        .unwrap();
    db.create_value_index("c", "added", "doc", "//Added", KeyType::Date)
        .unwrap();
    let spec = CatalogSpec {
        products: 200,
        ..Default::default()
    };
    for i in 0..spec.products {
        db.insert_row(&t, &[ColValue::Xml(product_doc(&spec, i))])
            .unwrap();
    }
    let col = t.xml_column("doc").unwrap();
    let queries = [
        "/Catalog/Categories/Product[RegPrice > 100]",
        "/Catalog/Categories/Product[RegPrice <= 50]/ProductName",
        "/Catalog/Categories/Product[Discount >= 0.25]",
        "/Catalog/Categories/Product[RegPrice > 100 and Discount > 0.1]",
        "/Catalog/Categories/Product[RegPrice < 30 or RegPrice > 470]",
        "/Catalog/Categories/Product[Added >= '2015-01-01']",
    ];
    for q in queries {
        let path = XPathParser::new().parse(q).unwrap();
        for nodeid in [false, true] {
            let plan = access::plan(&path, col, nodeid);
            let (mut hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
            let (mut scan, _) =
                access::execute(&access::AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
            let key = |h: &access::QueryHit| (h.doc, h.node.clone().map(|n| n.as_bytes().to_vec()));
            hits.sort_by_key(key);
            scan.sort_by_key(key);
            assert_eq!(hits, scan, "query {q}, nodeid={nodeid}");
        }
    }
}

#[test]
fn large_single_document_queries() {
    // One big catalog in one row: NodeID-granularity access shines here.
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("c", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index(
        "c",
        "price",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        KeyType::Double,
    )
    .unwrap();
    let spec = CatalogSpec {
        products: 500,
        categories: 5,
        ..Default::default()
    };
    let doc = db
        .insert_row(&t, &[ColValue::Xml(catalog_xml(&spec))])
        .unwrap();
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 490]")
        .unwrap();
    let plan = access::plan(&path, col, true);
    assert!(plan.explain().contains("NodeID"), "{}", plan.explain());
    let (hits, stats) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
    assert_eq!(hits.len(), spec.expected_above(490.0));
    assert!(hits.iter().all(|h| h.doc == doc));
    // Node-granularity: far fewer records touched than a whole-doc scan.
    let (scan_hits, scan_stats) =
        access::execute(&access::AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
    assert_eq!(hits.len(), scan_hits.len());
    assert!(
        stats.records_fetched < scan_stats.records_fetched,
        "index {} vs scan {}",
        stats.records_fetched,
        scan_stats.records_fetched
    );
}

#[test]
fn deep_documents_survive_storage() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
    let doc = sized_tree(5000, 2, 8, 3);
    let id = db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
    assert_eq!(db.serialize_document(&t, "doc", id).unwrap(), doc);
}

#[test]
fn multiple_xml_columns_per_table() {
    let db = Database::create_in_memory().unwrap();
    let t = db
        .create_table(
            "dual",
            &[("spec", ColumnKind::Xml), ("manual", ColumnKind::Xml)],
        )
        .unwrap();
    let id = db
        .insert_row(
            &t,
            &[
                ColValue::Xml("<spec><v>1</v></spec>".into()),
                ColValue::Xml("<manual><page>intro</page></manual>".into()),
            ],
        )
        .unwrap();
    assert_eq!(
        db.serialize_document(&t, "spec", id).unwrap(),
        "<spec><v>1</v></spec>"
    );
    assert_eq!(
        db.serialize_document(&t, "manual", id).unwrap(),
        "<manual><page>intro</page></manual>"
    );
}

#[test]
fn small_buffer_pool_forces_eviction_through_the_stack() {
    // A 64-page (256 KB) pool with ~1.5 MB of data: every layer must behave
    // under constant eviction and write-back.
    let dir = std::env::temp_dir().join(format!("rx-smallpool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = system_rx::engine::Database::create_with(
        system_rx::engine::Storage::Dir(dir.clone()),
        DbConfig {
            buffer_pages: 64,
            ..Default::default()
        },
    )
    .unwrap();
    let t = db.create_table("big", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index(
        "big",
        "price",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        KeyType::Double,
    )
    .unwrap();
    let spec = CatalogSpec {
        products: 3000,
        categories: 30,
        description_len: 200,
        ..Default::default()
    };
    let doc = catalog_xml(&spec);
    assert!(doc.len() > 1_000_000);
    let id = db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
    // The pool is far smaller than the document.
    assert!(db.pool().resident() <= 64);
    let (_, _, evictions, writebacks) = db.pool().stats.snapshot();
    assert!(evictions > 100, "evictions: {evictions}");
    assert!(writebacks > 50, "writebacks: {writebacks}");
    // Query through the index, then verify a full round trip.
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 495]")
        .unwrap();
    let plan = access::plan(&path, col, true);
    let (hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
    assert_eq!(hits.len(), spec.expected_above(495.0));
    assert_eq!(db.serialize_document(&t, "doc", id).unwrap(), doc);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sub_document_update_maintains_value_indexes() {
    use system_rx::engine::update::{self, InsertPos};
    use system_rx::xml::NodeId;

    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index("p", "price", "doc", "//RegPrice", KeyType::Double)
        .unwrap();
    db.create_fulltext_index("p", "ft", "doc", "//Description")
        .unwrap();
    db.insert_row(
        &t,
        &[ColValue::Xml(
            "<Product><RegPrice>100</RegPrice>\
             <Description>old words here</Description></Product>"
                .into(),
        )],
    )
    .unwrap();
    let col = t.xml_column("doc").unwrap();
    let q = |text: &str| {
        let path = XPathParser::new().parse(text).unwrap();
        let plan = access::plan(&path, col, false);
        let (hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
        hits.len()
    };
    assert_eq!(q("/Product[RegPrice > 150]"), 0);
    assert_eq!(q("/Product[RegPrice > 50]"), 1);

    // Update the price through the maintained path.
    let price_text = NodeId::from_bytes(&[0x02, 0x02, 0x02]).unwrap();
    let txn = db.begin().unwrap();
    db.update_document_txn(&txn, &t, "doc", 1, &price_text, |txn, xml| {
        update::replace_value(txn, xml, 1, &price_text, "200")
    })
    .unwrap();
    txn.commit().unwrap();

    // The value index reflects the new price (these queries PLAN as index
    // access, so stale entries would give wrong answers).
    assert_eq!(q("/Product[RegPrice > 150]"), 1);
    assert_eq!(q("/Product[RegPrice = 100]"), 0);
    // Full-text postings too.
    let ftis = col.fulltext_indexes();
    assert!(ftis[0].search_all_terms("old words").unwrap().len() == 1);
    let desc = NodeId::from_bytes(&[0x02, 0x04]).unwrap();
    let txn = db.begin().unwrap();
    db.update_document_txn(&txn, &t, "doc", 1, &desc, |txn, xml| {
        let stats = update::delete_node(txn, xml, 1, &desc)?;
        update::insert_fragment(
            txn,
            xml,
            1,
            db.dict(),
            &NodeId::from_bytes(&[0x02]).unwrap(),
            InsertPos::Last,
            "<Description>fresh terms</Description>",
        )?;
        Ok(stats)
    })
    .unwrap();
    txn.commit().unwrap();
    assert!(ftis[0].search_all_terms("old words").unwrap().is_empty());
    assert_eq!(ftis[0].search_all_terms("fresh terms").unwrap(), vec![1]);
}
