//! Broader XPath coverage over *stored* documents: namespaces, wildcards,
//! kind tests, operand-chain predicates, and stress shapes — each checked
//! against the DOM reference evaluator.

use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{access, AccessPlan};
use system_rx::xml::dom::DomTree;
use system_rx::xml::NameDict;
use system_rx::xpath::baseline::DomXPath;
use system_rx::xpath::{QueryTree, XPathParser};

/// Evaluate `query` over `doc` through the full storage path AND through the
/// DOM reference; both must agree.
fn check(doc: &str, query: &str, parser: &XPathParser) -> Vec<String> {
    let path = parser.parse(query).unwrap();
    // Stored path (multi-record packing).
    let db = Database::create_in_memory_with(DbConfig {
        target_record_size: 256,
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
    db.insert_row(&t, &[ColValue::Xml(doc.to_string())])
        .unwrap();
    let col = t.xml_column("doc").unwrap();
    let (hits, _) = access::execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
    let stored: Vec<String> = hits.into_iter().map(|h| h.value).collect();
    // DOM reference.
    let dict = NameDict::new();
    let tree = QueryTree::compile(&path).unwrap();
    let dom = DomTree::parse(doc, &dict).unwrap();
    let reference = DomXPath::new(&tree, &dict).eval(&dom);
    assert_eq!(stored, reference, "query {query} over {doc}");
    stored
}

#[test]
fn namespace_qualified_queries() {
    let parser = XPathParser::new()
        .with_namespace("c", "urn:catalog")
        .with_namespace("v", "urn:vendor");
    let doc = r#"<c:cat xmlns:c="urn:catalog" xmlns:v="urn:vendor">
        <c:item><v:price>10</v:price></c:item>
        <c:item><v:price>20</v:price></c:item>
        <other xmlns="urn:other"><v:price>99</v:price></other>
    </c:cat>"#;
    assert_eq!(check(doc, "//v:price", &parser), vec!["10", "20", "99"]);
    assert_eq!(
        check(doc, "/c:cat/c:item/v:price", &parser),
        vec!["10", "20"]
    );
    // Unqualified local-name match crosses namespaces.
    let plain = XPathParser::new();
    assert_eq!(check(doc, "//price", &plain).len(), 3);
    // Wrong namespace yields nothing.
    let wrong = XPathParser::new().with_namespace("v", "urn:nope");
    assert!(check(doc, "//v:price", &wrong).is_empty());
}

#[test]
fn attribute_wildcards_and_kind_tests() {
    let parser = XPathParser::new();
    let doc = r#"<r><p a="1" b="2"/><q c="3"/><!--note--><p/>text</r>"#;
    assert_eq!(check(doc, "/r/p/@*", &parser), vec!["1", "2"]);
    assert_eq!(check(doc, "//@*", &parser).len(), 3);
    assert_eq!(check(doc, "//comment()", &parser), vec!["note"]);
    assert_eq!(check(doc, "/r/text()", &parser), vec!["text"]);
    assert_eq!(check(doc, "/r/*", &parser).len(), 3);
}

#[test]
fn deep_operand_chains() {
    let parser = XPathParser::new();
    let doc = r#"<shop>
        <order><lines><line><sku>A</sku><qty>5</qty></line>
                      <line><sku>B</sku><qty>1</qty></line></lines></order>
        <order><lines><line><sku>C</sku><qty>9</qty></line></lines></order>
    </shop>"#;
    // Predicate path three steps deep.
    assert_eq!(
        check(doc, "/shop/order[lines/line/qty > 4]", &parser).len(),
        2
    );
    assert_eq!(
        check(doc, "/shop/order[lines/line/sku = 'B']", &parser).len(),
        1
    );
    // Descendant operand inside predicate.
    assert_eq!(check(doc, "//order[.//qty = 9]//sku", &parser), vec!["C"]);
    // Nested predicates on the operand chain.
    assert_eq!(
        check(doc, "//order[lines/line[qty > 4]/sku = 'A']", &parser).len(),
        1
    );
}

#[test]
fn mixed_boolean_and_count() {
    let parser = XPathParser::new();
    let doc = r#"<r>
        <g><m/><m/><m/></g>
        <g><m/><n/></g>
        <g><n/></g>
    </r>"#;
    assert_eq!(check(doc, "/r/g[count(m) >= 2]", &parser).len(), 1);
    assert_eq!(check(doc, "/r/g[m and n]", &parser).len(), 1);
    assert_eq!(check(doc, "/r/g[m or n]", &parser).len(), 3);
    assert_eq!(check(doc, "/r/g[not(m) and n]", &parser).len(), 1);
    assert_eq!(check(doc, "/r/g[not(m or n)]", &parser).len(), 0);
    assert_eq!(check(doc, "/r/g[count(m) = count(n)]", &parser).len(), 1);
}

#[test]
fn parent_axis_rewrites_over_storage() {
    let parser = XPathParser::new();
    let doc = "<r><a><b/><c>keep</c></a><a><c>skip</c></a></r>";
    // a/b/.. == a[b]: only the first <a> has a <b>.
    assert_eq!(check(doc, "/r/a/b/../c", &parser), vec!["keep"]);
}

#[test]
fn wide_and_deep_stress() {
    let parser = XPathParser::new();
    // Wide: 300 siblings (forces proxy spill at target 256).
    let wide = format!(
        "<r>{}</r>",
        (0..300)
            .map(|i| format!("<i v=\"{i}\"><x>{}</x></i>", i % 7))
            .collect::<String>()
    );
    assert_eq!(check(&wide, "//i[x = 3]", &parser).len(), 43);
    assert_eq!(check(&wide, "//i/@v", &parser).len(), 300);
    // Deep: 60-level chain.
    let mut deep = String::new();
    for _ in 0..60 {
        deep.push_str("<d>");
    }
    deep.push_str("bottom");
    for _ in 0..60 {
        deep.push_str("</d>");
    }
    assert_eq!(check(&deep, "//d[not(d)]", &parser), vec!["bottom"]);
    assert_eq!(check(&deep, "//d", &parser).len(), 60);
}

#[test]
fn whitespace_and_entities_survive() {
    let parser = XPathParser::new();
    let doc = r#"<r><v>a &amp; b</v><v>&lt;tag&gt;</v></r>"#;
    assert_eq!(check(doc, "/r/v", &parser), vec!["a & b", "<tag>"]);
    assert_eq!(check(doc, "/r/v[. = 'a & b']", &parser).len(), 1);
}

#[test]
fn numeric_comparison_edge_cases() {
    let parser = XPathParser::new();
    let doc = r#"<r><v>10</v><v>9.5</v><v>-3</v><v>abc</v><v>0</v></r>"#;
    assert_eq!(check(doc, "/r/v[. > 9]", &parser).len(), 2);
    assert_eq!(check(doc, "/r/v[. < 0]", &parser), vec!["-3"]);
    // Non-numeric text never satisfies an ordering comparison.
    assert_eq!(check(doc, "/r/v[. >= -1000]", &parser).len(), 4);
    assert_eq!(check(doc, "/r/v[. = 0]", &parser), vec!["0"]);
}
