//! End-to-end exercise of the rx-server service layer over loopback TCP:
//! many client threads doing mixed inserts/queries/deletes with no lost
//! updates, admission control answering `Busy` under overload, and graceful
//! shutdown rolling back abandoned sessions.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use system_rx::engine::{ColValue, ColumnKind, Database};
use system_rx::server::{
    connect_tcp, connect_tcp_multiplexed, Client, ClientError, ConnectOptions, ReqClass, Server,
    ServerConfig,
};

fn start_server(workers: usize, queue_depth: usize) -> (Arc<Server>, std::net::SocketAddr) {
    start_server_with(ServerConfig {
        workers,
        queue_depth,
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> (Arc<Server>, std::net::SocketAddr) {
    let db = Database::create_in_memory().unwrap();
    db.create_table(
        "items",
        &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
    )
    .unwrap();
    let server = Server::start(db, config);
    let addr = server.listen(("127.0.0.1", 0)).unwrap();
    (server, addr)
}

fn item_xml(owner: usize, seq: usize) -> String {
    format!("<item><owner>{owner}</owner><seq>{seq}</seq></item>")
}

#[test]
fn eight_clients_mixed_workload_no_lost_updates() {
    const CLIENTS: usize = 8;
    const ROWS_PER_CLIENT: usize = 12;

    let (server, addr) = start_server(4, 64);
    let mut handles = Vec::new();
    for owner in 0..CLIENTS {
        handles.push(std::thread::spawn(move || {
            let mut c = connect_tcp(addr).unwrap();
            c.ping().unwrap();
            let mut kept = Vec::new();
            for seq in 0..ROWS_PER_CLIENT {
                let doc = c
                    .insert_row(
                        "items",
                        vec![
                            ColValue::Str(format!("sku-{owner}-{seq}")),
                            ColValue::Xml(item_xml(owner, seq)),
                        ],
                    )
                    .unwrap();
                // Delete every third row again; the rest must survive.
                if seq % 3 == 2 {
                    assert!(c.delete_row("items", doc).unwrap());
                } else {
                    kept.push((doc, seq));
                }
                // Interleave reads with the writes.
                let hits = c.query("items", "doc", "/item/owner").unwrap();
                assert!(hits.len() >= kept.len());
            }
            // Everything this client kept must be visible with its own data.
            for &(doc, seq) in &kept {
                let row = c.fetch_row("items", doc).unwrap().expect("kept row lost");
                assert_eq!(row.values[0], format!("sku-{owner}-{seq}"));
            }
            kept.into_iter().map(|(doc, _)| doc).collect::<Vec<u64>>()
        }));
    }

    let mut all_docs = Vec::new();
    for h in handles {
        all_docs.extend(h.join().unwrap());
    }
    // DocIDs are globally unique: no two clients were handed the same row.
    let unique: HashSet<u64> = all_docs.iter().copied().collect();
    assert_eq!(
        unique.len(),
        all_docs.len(),
        "duplicate DocIDs across clients"
    );

    // Final ground truth straight from the engine: kept = inserted - deleted.
    let expected_kept = CLIENTS * (ROWS_PER_CLIENT - ROWS_PER_CLIENT / 3);
    assert_eq!(all_docs.len(), expected_kept);
    let mut verify = connect_tcp(addr).unwrap();
    let hits = verify.query("items", "doc", "/item/seq").unwrap();
    assert_eq!(hits.len(), expected_kept, "lost or resurrected updates");

    // The stats surface saw real traffic.
    let stats = verify.stats().unwrap();
    assert!(stats.requests_total as usize >= CLIENTS * ROWS_PER_CLIENT * 2);
    assert_eq!(stats.requests_rejected, 0, "no overload expected here");
    assert!(stats.sessions_opened as usize >= CLIENTS);
    assert!(stats.latency[ReqClass::Write as usize].count > 0);
    assert!(stats.latency[ReqClass::Read as usize].count > 0);
    assert!(
        stats.db.buffer_hits + stats.db.buffer_misses > 0,
        "buffer pool counters must move"
    );
    assert!(stats.db.wal_records > 0);
    // Group-commit and shard counters flow through the wire snapshot.
    assert!(stats.db.buffer_shards >= 1);
    assert!(
        stats.db.wal_fsyncs > 0,
        "committing work must fsync the WAL"
    );
    assert!(
        stats.db.wal_fsyncs <= stats.db.wal_group_commits,
        "group commit can never fsync more often than commits wait: {} > {}",
        stats.db.wal_fsyncs,
        stats.db.wal_group_commits
    );
    assert!(stats.db.wal_durable_lsn > 0);
    server.shutdown();
}

#[test]
fn overload_gets_server_busy_not_a_hang() {
    // One worker, queue depth one: with two slow requests in the system a
    // third must be turned away immediately.
    let (server, addr) = start_server(1, 1);
    let wait_for = |pred: &dyn Fn(&system_rx::server::StatsSnapshot) -> bool| {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !pred(&server.stats()) {
            assert!(
                std::time::Instant::now() < deadline,
                "server never reached expected state"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    let mut slow: Vec<std::thread::JoinHandle<Result<(), ClientError>>> = Vec::new();
    let mut c1 = connect_tcp(addr).unwrap();
    slow.push(std::thread::spawn(move || c1.sleep_ms(500)));
    wait_for(&|s| s.requests_in_flight == 1);
    let mut c2 = connect_tcp(addr).unwrap();
    slow.push(std::thread::spawn(move || c2.sleep_ms(500)));
    wait_for(&|s| s.requests_queued == 1);

    let mut probe = connect_tcp(addr).unwrap();
    let started = std::time::Instant::now();
    let err = probe.sleep_ms(1).unwrap_err();
    assert!(err.is_busy(), "expected Busy, got: {err}");
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "Busy must be immediate, not queued"
    );
    for h in slow {
        h.join().unwrap().unwrap();
    }
    // After the burst drains the server accepts work again.
    probe.ping().unwrap();
    assert!(server.stats().requests_rejected >= 1);
    server.shutdown();
}

#[test]
fn shutdown_rolls_back_abandoned_sessions() {
    let (server, addr) = start_server(2, 16);
    let mut c: Client<std::net::TcpStream> = connect_tcp(addr).unwrap();
    c.begin().unwrap();
    c.insert_row(
        "items",
        vec![
            ColValue::Str("orphan".into()),
            ColValue::Xml("<item/>".into()),
        ],
    )
    .unwrap();
    assert_eq!(server.db().txns().active_count(), 1);

    server.shutdown();

    // The open transaction died with the server — no lock or txn leaks.
    assert_eq!(server.db().txns().active_count(), 0);
    // And the connection is really gone.
    assert!(c.ping().is_err());
    // The uncommitted insert is invisible to a direct engine read.
    let db = server.db();
    let table = db.table("items").unwrap();
    let txn = db.begin().unwrap();
    drop(txn);
    let hits = {
        let t = db.begin().unwrap();
        let col = table.xml_column("doc").unwrap();
        let path = system_rx::xpath::XPathParser::new().parse("/item").unwrap();
        let (hits, _) =
            system_rx::engine::access::run_query_locked(&t, &table, col, db.dict(), &path, false)
                .unwrap();
        t.commit().unwrap();
        hits
    };
    assert!(hits.is_empty(), "rolled-back insert leaked: {hits:?}");
}

#[test]
fn interleaved_streams_on_one_connection() {
    // Many sessions multiplexed over ONE TCP connection, each running its
    // own explicit transaction concurrently. Per-stream transaction state
    // must never bleed between sessions sharing the socket.
    const SESSIONS: usize = 6;
    const ROWS_PER_SESSION: usize = 8;

    let (server, addr) = start_server(4, 64);
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).unwrap();
    let mut handles = Vec::new();
    for owner in 0..SESSIONS {
        let mut s = conn.session();
        handles.push(std::thread::spawn(move || {
            s.begin().unwrap();
            let mut docs = Vec::new();
            for seq in 0..ROWS_PER_SESSION {
                let doc = s
                    .insert_row(
                        "items",
                        vec![
                            ColValue::Str(format!("mux-{owner}-{seq}")),
                            ColValue::Xml(item_xml(owner, seq)),
                        ],
                    )
                    .unwrap();
                docs.push((doc, seq));
            }
            // Uncommitted rows are visible inside this session's txn...
            for &(doc, seq) in &docs {
                let row = s.fetch_row("items", doc).unwrap().expect("own write lost");
                assert_eq!(row.values[0], format!("mux-{owner}-{seq}"));
            }
            s.commit().unwrap();
            docs.into_iter().map(|(d, _)| d).collect::<Vec<u64>>()
        }));
    }
    let mut all_docs = Vec::new();
    for h in handles {
        all_docs.extend(h.join().unwrap());
    }
    let unique: HashSet<u64> = all_docs.iter().copied().collect();
    assert_eq!(
        unique.len(),
        all_docs.len(),
        "duplicate DocIDs across streams"
    );
    assert_eq!(all_docs.len(), SESSIONS * ROWS_PER_SESSION);

    let mut verify = conn.session();
    let hits = verify.query("items", "doc", "/item/seq").unwrap();
    assert_eq!(hits.len(), SESSIONS * ROWS_PER_SESSION);
    let stats = verify.stats().unwrap();
    assert_eq!(stats.connections_v2, 1, "all traffic rode one connection");
    assert!(
        stats.streams_opened as usize >= SESSIONS,
        "each session is its own stream: {} < {SESSIONS}",
        stats.streams_opened
    );
    server.shutdown();
}

#[test]
fn pipelined_sleeps_complete_out_of_order() {
    // One slow and several fast requests on sibling streams: the fast ones
    // must overtake the slow one, which the server counts as out-of-order
    // completions.
    let (server, addr) = start_server(4, 64);
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).unwrap();
    let mut slow = conn.session();
    let slow_h = std::thread::spawn(move || slow.sleep_ms(300));
    // Give the slow request time to get dispatched first.
    std::thread::sleep(Duration::from_millis(50));
    let mut fast = conn.session();
    let started = std::time::Instant::now();
    fast.ping().unwrap();
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "fast stream must not wait behind the slow one"
    );
    slow_h.join().unwrap().unwrap();
    let stats = conn.session().stats().unwrap();
    assert!(
        stats.ooo_completions >= 1,
        "overtaking must be counted: {}",
        stats.ooo_completions
    );
    server.shutdown();
}

#[test]
fn stream_budget_answers_busy_per_stream() {
    // Server grants at most 2 concurrent in-flight requests per connection:
    // with two sleeps holding the budget, a third stream gets Busy while a
    // second *connection* still proceeds.
    let (server, addr) = start_server_with(ServerConfig {
        workers: 4,
        queue_depth: 64,
        idle_timeout: Duration::from_secs(30),
        max_streams: 2,
        ..ServerConfig::default()
    });
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).unwrap();
    assert_eq!(
        conn.max_streams(),
        2,
        "server must clamp the granted budget"
    );
    let mut s1 = conn.session();
    let mut s2 = conn.session();
    let h1 = std::thread::spawn(move || s1.sleep_ms(400));
    let h2 = std::thread::spawn(move || s2.sleep_ms(400));
    // Wait until both sleeps are in flight on the connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if server.stats().requests_in_flight >= 2 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "sleeps never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut probe = conn.session();
    let err = probe.ping().unwrap_err();
    assert!(err.is_busy(), "expected per-stream Busy, got: {err}");
    // A fresh connection has its own budget and sails through.
    let mut other = connect_tcp(addr).unwrap();
    other.ping().unwrap();
    h1.join().unwrap().unwrap();
    h2.join().unwrap().unwrap();
    // Budget released: the same connection works again.
    probe.ping().unwrap();
    server.shutdown();
}

#[test]
fn multiplexing_stress() {
    // Scaled by RX_STRESS_THREADS (CI's contended-storage job sets it);
    // defaults small enough for a laptop test run.
    let sessions: usize = std::env::var("RX_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (server, addr) = start_server(4, 256);
    let conn = connect_tcp_multiplexed(
        addr,
        ConnectOptions {
            max_streams: sessions as u32,
            ..ConnectOptions::default()
        },
    )
    .unwrap();
    let mut handles = Vec::new();
    for owner in 0..sessions {
        let mut s = conn.session();
        handles.push(std::thread::spawn(move || {
            for seq in 0..20 {
                loop {
                    match s.insert_row(
                        "items",
                        vec![
                            ColValue::Str(format!("stress-{owner}-{seq}")),
                            ColValue::Xml(item_xml(owner, seq)),
                        ],
                    ) {
                        Ok(_) => break,
                        Err(e) if e.is_busy() => std::thread::sleep(Duration::from_millis(1)),
                        Err(e) => panic!("stream {owner} failed: {e}"),
                    }
                }
                if seq % 4 == 3 {
                    s.query("items", "doc", "/item/owner").unwrap();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut verify = conn.session();
    let hits = verify.query("items", "doc", "/item/seq").unwrap();
    assert_eq!(hits.len(), sessions * 20, "lost inserts under multiplexing");
    server.shutdown();
}
