//! Parallel query execution (the query-side twin of the PR-2 storage
//! concurrency work): serial/parallel equivalence as a property over
//! generated documents and query shapes, §5.1 lock semantics under fan-out,
//! and a many-client stress run sized by `RX_STRESS_THREADS`.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::gen::{product_doc, CatalogSpec};
use system_rx::xml::value::KeyType;
use system_rx::xpath::XPathParser;

fn db_with_workers(workers: usize) -> Arc<Database> {
    Database::create_in_memory_with(DbConfig {
        query_workers: workers,
        ..DbConfig::default()
    })
    .unwrap()
}

/// An arbitrary small XML document over a tiny vocabulary.
fn arb_xml() -> impl Strategy<Value = String> {
    fn node(depth: u32) -> BoxedStrategy<String> {
        let name = prop_oneof![Just("a"), Just("b"), Just("c")];
        if depth == 0 {
            (name, "[a-z0-9]{0,8}")
                .prop_map(|(n, t)| format!("<{n}>{t}</{n}>"))
                .boxed()
        } else {
            (
                name,
                prop::collection::vec(node(depth - 1), 0..3),
                "[a-z]{0,6}",
            )
                .prop_map(|(n, kids, t)| format!("<{n}>{t}{}</{n}>", kids.concat()))
                .boxed()
        }
    }
    node(2).prop_map(|inner| format!("<root>{inner}</root>"))
}

fn arb_query() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("/root".to_string()),
        Just("/root/a".to_string()),
        Just("//a".to_string()),
        Just("//a/b".to_string()),
        Just("//a[b]".to_string()),
        Just("/root//c".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `query_workers = 1` and `query_workers = N` return identical ordered
    /// hits and identical merged stats on arbitrary documents and queries.
    #[test]
    fn parallel_equals_serial_on_arbitrary_docs(
        docs in prop::collection::vec(arb_xml(), 1..10),
        query in arb_query(),
    ) {
        let serial = db_with_workers(1);
        let par = db_with_workers(4);
        for db in [&serial, &par] {
            let t = db.create_table("d", &[("doc", ColumnKind::Xml)]).unwrap();
            for doc in &docs {
                db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
            }
        }
        let path = XPathParser::new().parse(&query).unwrap();
        let ts = serial.table("d").unwrap();
        let tp = par.table("d").unwrap();
        for prefer_nodeid in [false, true] {
            let (hs, ss, _) = serial
                .query(&ts, ts.xml_column("doc").unwrap(), &path, prefer_nodeid)
                .unwrap();
            let (hp, sp, _) = par
                .query(&tp, tp.xml_column("doc").unwrap(), &path, prefer_nodeid)
                .unwrap();
            prop_assert_eq!(&hp, &hs, "query {} nodeid={}", query, prefer_nodeid);
            prop_assert_eq!(sp, ss, "query {} nodeid={}", query, prefer_nodeid);
        }
    }

    /// Same property through value-index plans (DocID and NodeID lists,
    /// verify filtering) rather than full scans.
    #[test]
    fn parallel_equals_serial_through_indexes(
        prices in prop::collection::vec(0u32..400, 2..16),
        threshold in 0u32..400,
    ) {
        let serial = db_with_workers(1);
        let par = db_with_workers(3);
        for db in [&serial, &par] {
            let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
            db.create_value_index("p", "v_idx", "doc", "/r/v", KeyType::Double)
                .unwrap();
            for (i, p) in prices.iter().enumerate() {
                db.insert_row(
                    &t,
                    &[ColValue::Xml(format!("<r><v>{p}</v><tag>t{i}</tag></r>"))],
                )
                .unwrap();
            }
        }
        let path = XPathParser::new()
            .parse(&format!("/r[v > {threshold}]/tag"))
            .unwrap();
        let ts = serial.table("p").unwrap();
        let tp = par.table("p").unwrap();
        for prefer_nodeid in [false, true] {
            let (hs, ss, explain) = serial
                .query(&ts, ts.xml_column("doc").unwrap(), &path, prefer_nodeid)
                .unwrap();
            let (hp, sp, _) = par
                .query(&tp, tp.xml_column("doc").unwrap(), &path, prefer_nodeid)
                .unwrap();
            prop_assert!(explain.contains("list access"), "expected index plan: {}", explain);
            prop_assert_eq!(&hp, &hs, "threshold {} nodeid={}", threshold, prefer_nodeid);
            prop_assert_eq!(sp, ss, "threshold {} nodeid={}", threshold, prefer_nodeid);
            let expected = prices.iter().filter(|&&p| p > threshold).count();
            prop_assert_eq!(hs.len(), expected);
        }
    }
}

/// A worker-side lock timeout aborts the whole parallel query, exactly as the
/// serial path does: the reader never returns a partial hit list.
#[test]
fn lock_timeout_aborts_parallel_query() {
    let db = Database::create_in_memory_with(DbConfig {
        query_workers: 4,
        lock_timeout: Duration::from_millis(150),
        ..DbConfig::default()
    })
    .unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    for i in 0..6 {
        db.insert_row(&t, &[ColValue::Xml(format!("<r><v>{i}</v></r>"))])
            .unwrap();
    }
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new().parse("/r/v").unwrap();

    let writer_holding = Arc::new(AtomicBool::new(false));
    let release_writer = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let db = &db;
            let t = &t;
            let writer_holding = Arc::clone(&writer_holding);
            let release_writer = Arc::clone(&release_writer);
            s.spawn(move || {
                let txn = db.begin().unwrap();
                db.insert_row_txn(&txn, t, &[ColValue::Xml("<r><v>99</v></r>".into())])
                    .unwrap();
                writer_holding.store(true, Ordering::SeqCst);
                while !release_writer.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                txn.rollback().unwrap();
            });
        }
        while !writer_holding.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        // The uncommitted document is a candidate; its S lock times out and
        // the whole query errors before any fan-out result is returned.
        let txn = db.begin().unwrap();
        assert!(db.query_locked(&txn, &t, col, &path, false).is_err());
        txn.rollback().unwrap();
        release_writer.store(true, Ordering::SeqCst);
    });
}

/// A candidate that vanishes between gather and lock grant (here: the
/// inserting transaction rolls back while the locked reader waits) is
/// skipped with `NotFound` under parallel evaluation, exactly as serially.
#[test]
fn rolled_back_candidate_is_skipped_under_parallel_evaluation() {
    let db = Database::create_in_memory_with(DbConfig {
        query_workers: 4,
        lock_timeout: Duration::from_secs(5),
        ..DbConfig::default()
    })
    .unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    for i in 0..6 {
        db.insert_row(&t, &[ColValue::Xml(format!("<r><v>{i}</v></r>"))])
            .unwrap();
    }
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new().parse("/r/v").unwrap();

    let writer_holding = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let db = &db;
            let t = &t;
            let writer_holding = Arc::clone(&writer_holding);
            s.spawn(move || {
                let txn = db.begin().unwrap();
                db.insert_row_txn(&txn, t, &[ColValue::Xml("<r><v>99</v></r>".into())])
                    .unwrap();
                writer_holding.store(true, Ordering::SeqCst);
                // Let the reader gather the candidate and block on its lock,
                // then undo the insert.
                std::thread::sleep(Duration::from_millis(200));
                txn.rollback().unwrap();
            });
        }
        while !writer_holding.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(5));
        }
        let txn = db.begin().unwrap();
        let (hits, _) = db.query_locked(&txn, &t, col, &path, false).unwrap();
        txn.commit().unwrap();
        // Only the six committed documents; the rolled-back one was gathered
        // (or not — timing) but never surfaced.
        assert_eq!(hits.len(), 6);
        assert!(hits.iter().all(|h| h.value != "99"));
    });
}

/// Many clients hammer the same database concurrently through the shared
/// worker pool and plan cache. Sized by `RX_STRESS_THREADS` (CI runs 16).
#[test]
fn concurrent_clients_share_pool_and_plan_cache() {
    let threads: usize = std::env::var("RX_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let db = db_with_workers(4);
    let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index(
        "p",
        "price",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        KeyType::Double,
    )
    .unwrap();
    let spec = CatalogSpec {
        products: 48,
        ..Default::default()
    };
    for i in 0..spec.products {
        db.insert_row(&t, &[ColValue::Xml(product_doc(&spec, i))])
            .unwrap();
    }
    let scan = XPathParser::new()
        .parse("/Catalog/Categories/Product/ProductName")
        .unwrap();
    let indexed = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 250]")
        .unwrap();
    let expected_indexed = spec.expected_above(250.0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            let db = &db;
            let t = &t;
            let scan = &scan;
            let indexed = &indexed;
            s.spawn(move || {
                let col = t.xml_column("doc").unwrap();
                for round in 0..10 {
                    let (hits, _, _) = db.query(t, col, scan, false).unwrap();
                    assert_eq!(hits.len(), spec.products);
                    let (hits, _, _) = db.query(t, col, indexed, round % 2 == 0).unwrap();
                    assert_eq!(hits.len(), expected_indexed);
                }
            });
        }
    });
    let stats = db.stats();
    assert!(stats.parallel_queries > 0, "fan-out never happened");
    // Each (path, prefer_nodeid) pair compiles at most once; everything else
    // is served from the cache.
    assert!(stats.plan_cache_misses <= 3, "stats: {stats:?}");
    assert!(stats.plan_cache_hits >= (threads as u64) * 20 - 3);
}
