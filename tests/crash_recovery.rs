//! Crash-recovery integration tests: committed work survives a crash without
//! a checkpoint; uncommitted work disappears; indexes stay consistent with
//! the data after recovery.

use std::path::PathBuf;
use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{access, update};
use system_rx::gen::{product_doc, CatalogSpec};
use system_rx::xml::value::KeyType;
use system_rx::xml::NodeId;
use system_rx::xpath::XPathParser;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rx-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn committed_inserts_survive_without_checkpoint() {
    let dir = tmpdir("commit");
    let spec = CatalogSpec {
        products: 30,
        ..Default::default()
    };
    {
        let db = Database::create_dir(&dir).unwrap();
        let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
        db.create_value_index(
            "p",
            "price",
            "doc",
            "/Catalog/Categories/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        for i in 0..spec.products {
            db.insert_row(&t, &[ColValue::Xml(product_doc(&spec, i))])
                .unwrap();
        }
        // Simulated crash: drop without flushing dirty pages.
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("p").unwrap();
    let col = t.xml_column("doc").unwrap();
    // All documents readable.
    for doc in 1..=spec.products as u64 {
        let xml = db.serialize_document(&t, "doc", doc).unwrap();
        assert!(xml.starts_with("<Catalog>"), "doc {doc}");
    }
    // Value index consistent: index results == scan results.
    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 250]")
        .unwrap();
    let plan = access::plan(&path, col, false);
    assert!(plan.explain().contains("DocID"), "{}", plan.explain());
    let (hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
    assert_eq!(hits.len(), spec.expected_above(250.0));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uncommitted_transaction_rolls_back_at_recovery() {
    let dir = tmpdir("loser");
    {
        let db = Database::create_dir(&dir).unwrap();
        let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
        db.insert_row(&t, &[ColValue::Xml("<a><v>keep</v></a>".into())])
            .unwrap();
        // An in-flight transaction that never commits: its WAL records exist
        // (Begin + ops, no Commit).
        let txn = db.begin().unwrap();
        db.insert_row_txn(&txn, &t, &[ColValue::Xml("<a><v>drop</v></a>".into())])
            .unwrap();
        // Force the WAL so the loser's records are on disk, then "crash" by
        // leaking the txn (no commit, no rollback).
        db.txns().wal().force().unwrap();
        std::mem::forget(txn);
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("p").unwrap();
    assert!(db
        .serialize_document(&t, "doc", 1)
        .unwrap()
        .contains("keep"));
    // Doc 2 must be gone (loser undone).
    assert!(db.serialize_document(&t, "doc", 2).is_err());
    assert!(db.fetch_row(&t, 2).unwrap().is_none());
    // And a fresh insert must not collide with the rolled-back DocID space.
    let d = db
        .insert_row(&t, &[ColValue::Xml("<a><v>after</v></a>".into())])
        .unwrap();
    assert!(d > 1);
    assert!(db
        .serialize_document(&t, "doc", d)
        .unwrap()
        .contains("after"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn updates_survive_crash() {
    let dir = tmpdir("update");
    {
        let db = Database::create_dir(&dir).unwrap();
        let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
        db.insert_row(&t, &[ColValue::Xml("<a><v>one</v><w>two</w></a>".into())])
            .unwrap();
        db.checkpoint().unwrap();
        // Post-checkpoint committed update + delete of a node.
        let col = t.xml_column("doc").unwrap();
        let txn = db.begin().unwrap();
        update::replace_value(
            &txn,
            col.xml_table(),
            1,
            &NodeId::from_bytes(&[0x02, 0x02, 0x02]).unwrap(),
            "ONE",
        )
        .unwrap();
        update::delete_node(
            &txn,
            col.xml_table(),
            1,
            &NodeId::from_bytes(&[0x02, 0x04]).unwrap(),
        )
        .unwrap();
        txn.commit().unwrap();
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("p").unwrap();
    assert_eq!(
        db.serialize_document(&t, "doc", 1).unwrap(),
        "<a><v>ONE</v></a>"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn repeated_crash_recover_cycles_are_stable() {
    let dir = tmpdir("cycles");
    let mut expected: Vec<u64> = Vec::new();
    {
        let db = Database::create_dir(&dir).unwrap();
        db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
        db.checkpoint().unwrap();
    }
    for round in 0..4 {
        let db = Database::open_dir(&dir).unwrap();
        let t = db.table("p").unwrap();
        // Everything from earlier rounds is still there.
        for &doc in &expected {
            assert!(
                db.serialize_document(&t, "doc", doc).is_ok(),
                "round {round}, doc {doc}"
            );
        }
        let d = db
            .insert_row(
                &t,
                &[ColValue::Xml(format!("<r><round>{round}</round></r>"))],
            )
            .unwrap();
        expected.push(d);
        // Crash again (no checkpoint).
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("p").unwrap();
    assert_eq!(expected.len(), 4);
    for (round, doc) in expected.iter().enumerate() {
        let xml = db.serialize_document(&t, "doc", *doc).unwrap();
        assert!(xml.contains(&format!("<round>{round}</round>")));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_crash_is_equivalent_to_clean_shutdown() {
    let dir = tmpdir("ckpt");
    let spec = CatalogSpec {
        products: 10,
        ..Default::default()
    };
    {
        let db = Database::create_with(
            system_rx::engine::Storage::Dir(dir.clone()),
            DbConfig::default(),
        )
        .unwrap();
        let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
        for i in 0..spec.products {
            db.insert_row(&t, &[ColValue::Xml(product_doc(&spec, i))])
                .unwrap();
        }
        db.checkpoint().unwrap();
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("p").unwrap();
    for doc in 1..=spec.products as u64 {
        assert!(db.serialize_document(&t, "doc", doc).is_ok());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fulltext_postings_survive_recovery() {
    let dir = tmpdir("ft");
    {
        let db = Database::create_dir(&dir).unwrap();
        let t = db.create_table("d", &[("doc", ColumnKind::Xml)]).unwrap();
        db.create_fulltext_index("d", "ft", "doc", "//Description")
            .unwrap();
        db.insert_row(
            &t,
            &[ColValue::Xml(
                "<p><Description>resilient indexed words</Description></p>".into(),
            )],
        )
        .unwrap();
        // Crash without checkpoint.
    }
    let db = Database::open_dir(&dir).unwrap();
    let t = db.table("d").unwrap();
    let col = t.xml_column("doc").unwrap();
    let ftis = col.fulltext_indexes();
    assert_eq!(ftis.len(), 1, "index definition reloaded from the catalog");
    let docs = ftis[0].search_all_terms("resilient words").unwrap();
    assert_eq!(docs, vec![1], "postings replayed from the WAL");
    std::fs::remove_dir_all(&dir).unwrap();
}
