//! The hot-document record cache, end to end: byte-identical results with
//! the cache on vs off across interleaved updates, deletes, and rollbacks;
//! rollback leaving no stale entry; and a reader/writer stress run sized by
//! `RX_STRESS_THREADS`.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{update, BaseTable, DocId};
use system_rx::xml::value::KeyType;
use system_rx::xml::{NodeId, RelId};
use system_rx::xpath::XPathParser;

fn db_cached(doc_cache_bytes: usize) -> Arc<Database> {
    Database::create_in_memory_with(DbConfig {
        doc_cache_bytes,
        ..DbConfig::default()
    })
    .unwrap()
}

/// NodeIds of the fixed `<r><v>N</v><tag>tI</tag></r>` shape.
fn v_element() -> NodeId {
    NodeId::root().child(&RelId::first()).child(&RelId::first())
}

fn v_text() -> NodeId {
    v_element().child(&RelId::first())
}

fn load_docs(db: &Arc<Database>, n: usize) -> Arc<BaseTable> {
    let t = db.create_table("d", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index("d", "v_idx", "doc", "/r/v", KeyType::Double)
        .unwrap();
    for i in 0..n {
        db.insert_row(
            &t,
            &[ColValue::Xml(format!(
                "<r><v>{}</v><tag>t{i}</tag></r>",
                (i * 37) % 400
            ))],
        )
        .unwrap();
    }
    t
}

fn replace_v(db: &Arc<Database>, t: &Arc<BaseTable>, doc: DocId, value: &str, commit: bool) {
    let txn = db.begin().unwrap();
    db.update_document_txn(&txn, t, "doc", doc, &v_element(), |txn, xml| {
        update::replace_value(txn, xml, doc, &v_text(), value)
    })
    .unwrap();
    if commit {
        txn.commit().unwrap();
    } else {
        txn.rollback().unwrap();
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Run both query shapes and compare hit lists across the databases.
    Query,
    /// Committed `/r/v` text replacement on the selected document.
    Replace(usize, u32),
    /// The same replacement, rolled back — semantically a no-op.
    RollbackReplace(usize, u32),
    /// Delete the selected document's row.
    DeleteRow(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Query),
        3 => (any::<usize>(), 0u32..400).prop_map(|(d, v)| Op::Replace(d, v)),
        2 => (any::<usize>(), 0u32..400).prop_map(|(d, v)| Op::RollbackReplace(d, v)),
        1 => any::<usize>().prop_map(Op::DeleteRow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A database with the cache on returns byte-identical query results and
    /// serialized documents to one with the cache off, across arbitrary
    /// interleavings of reads, committed updates, rollbacks, and deletes —
    /// and never exceeds its byte budget.
    #[test]
    fn cache_on_equals_cache_off(ops in prop::collection::vec(arb_op(), 1..20)) {
        const NDOCS: usize = 8;
        const BUDGET: usize = 1 << 20;
        let db_off = db_cached(0);
        let db_on = db_cached(BUDGET);
        let t_off = load_docs(&db_off, NDOCS);
        let t_on = load_docs(&db_on, NDOCS);
        let mut alive = [true; NDOCS];

        let scan = XPathParser::new().parse("/r/v").unwrap();
        let indexed = XPathParser::new().parse("/r[v > 200]/tag").unwrap();
        let compare_queries = |label: &str| {
            for (name, path) in [("scan", &scan), ("indexed", &indexed)] {
                for prefer_nodeid in [false, true] {
                    let (h_off, _, _) = db_off
                        .query(&t_off, t_off.xml_column("doc").unwrap(), path, prefer_nodeid)
                        .unwrap();
                    let (h_on, _, _) = db_on
                        .query(&t_on, t_on.xml_column("doc").unwrap(), path, prefer_nodeid)
                        .unwrap();
                    assert_eq!(h_on, h_off, "{label}: {name} nodeid={prefer_nodeid}");
                }
            }
        };

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Query => compare_queries(&format!("op {i}")),
                Op::Replace(d, v) => {
                    let doc = (d % NDOCS) as DocId + 1;
                    if alive[(doc - 1) as usize] {
                        replace_v(&db_off, &t_off, doc, &v.to_string(), true);
                        replace_v(&db_on, &t_on, doc, &v.to_string(), true);
                    }
                }
                Op::RollbackReplace(d, v) => {
                    let doc = (d % NDOCS) as DocId + 1;
                    if alive[(doc - 1) as usize] {
                        replace_v(&db_off, &t_off, doc, &v.to_string(), false);
                        replace_v(&db_on, &t_on, doc, &v.to_string(), false);
                    }
                }
                Op::DeleteRow(d) => {
                    let doc = (d % NDOCS) as DocId + 1;
                    let a = db_off.delete_row(&t_off, doc).unwrap();
                    let b = db_on.delete_row(&t_on, doc).unwrap();
                    assert_eq!(a, b);
                    alive[(doc - 1) as usize] = false;
                }
            }
            prop_assert!(
                db_on.stats().doc_cache_bytes <= BUDGET as u64,
                "budget exceeded after op {i}"
            );
        }
        compare_queries("final");
        for doc in 1..=NDOCS as DocId {
            if alive[(doc - 1) as usize] {
                let a = db_off.serialize_document(&t_off, "doc", doc).unwrap();
                let b = db_on.serialize_document(&t_on, "doc", doc).unwrap();
                prop_assert_eq!(a, b, "serialized doc {} differs", doc);
            }
        }
    }
}

/// A rolled-back update leaves no stale cache entry: the touch evicts the
/// pre-image, the open writer blocks any publish of the dirty heap state,
/// and the first read after rollback re-populates from committed bytes.
#[test]
fn rollback_leaves_no_stale_entry() {
    let db = db_cached(1 << 20);
    let t = db.create_table("d", &[("doc", ColumnKind::Xml)]).unwrap();
    db.insert_row(&t, &[ColValue::Xml("<r><v>alpha</v></r>".into())])
        .unwrap();
    let path = XPathParser::new().parse("/r/v").unwrap();
    let query = |label: &str| -> String {
        let (hits, _, _) = db
            .query(&t, t.xml_column("doc").unwrap(), &path, false)
            .unwrap();
        assert_eq!(hits.len(), 1, "{label}");
        hits[0].value.clone()
    };

    // Populate through the read path, then take a warm hit.
    assert_eq!(query("populate"), "alpha");
    assert_eq!(query("warm"), "alpha");
    assert!(db.stats().doc_cache_hits >= 1);

    // An uncommitted update: this single-version store shows the dirty value
    // to unlocked readers, but the open writer must keep it OUT of the cache.
    let txn = db.begin().unwrap();
    db.update_document_txn(&txn, &t, "doc", 1, &v_element(), |txn, xml| {
        update::replace_value(txn, xml, 1, &v_text(), "zzz")
    })
    .unwrap();
    assert_eq!(query("mid-txn dirty read"), "zzz");
    txn.rollback().unwrap();

    // After rollback every read sees the committed value again — had the
    // dirty snapshot been published, this warm hit would still say "zzz".
    assert_eq!(query("after rollback"), "alpha");
    assert_eq!(query("warm after rollback"), "alpha");
    assert_eq!(
        db.serialize_document(&t, "doc", 1).unwrap(),
        "<r><v>alpha</v></r>"
    );
}

/// Readers hammer warm traversals while writers update and roll back the
/// same documents. Afterwards every document reads back exactly its last
/// committed value and the cache is still within budget. Sized by
/// `RX_STRESS_THREADS` (CI runs 16).
#[test]
fn readers_and_writers_stress() {
    let threads: usize = std::env::var("RX_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    const NDOCS: usize = 32;
    const ROUNDS: usize = 20;
    const BUDGET: usize = 256 << 10;
    let db = db_cached(BUDGET);
    let t = db.create_table("d", &[("doc", ColumnKind::Xml)]).unwrap();
    let mut committed: Vec<String> = Vec::new();
    for i in 0..NDOCS {
        let v = format!("{i}");
        db.insert_row(&t, &[ColValue::Xml(format!("<r><v>{v}</v></r>"))])
            .unwrap();
        committed.push(v);
    }
    // One mutex per document serializes writers on that document so "last
    // committed value" is well-defined; readers run unlocked.
    let doc_locks: Vec<Mutex<()>> = (0..NDOCS).map(|_| Mutex::new(())).collect();
    let last_committed: Mutex<HashMap<DocId, String>> = Mutex::new(HashMap::new());
    let path = XPathParser::new().parse("/r/v").unwrap();

    std::thread::scope(|s| {
        for w in 0..threads {
            let db = &db;
            let t = &t;
            let doc_locks = &doc_locks;
            let last_committed = &last_committed;
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let slot = (w * 7 + round * 3) % NDOCS;
                    let doc = slot as DocId + 1;
                    let value = format!("{}", w * 10_000 + round);
                    let commit = (w + round) % 3 != 0;
                    let _g = doc_locks[slot].lock().unwrap();
                    replace_v(db, t, doc, &value, commit);
                    if commit {
                        last_committed.lock().unwrap().insert(doc, value);
                    }
                }
            });
        }
        for _ in 0..threads {
            let db = &db;
            let t = &t;
            let path = &path;
            s.spawn(move || {
                for _ in 0..ROUNDS * 2 {
                    let (hits, _, _) = db
                        .query(t, t.xml_column("doc").unwrap(), path, false)
                        .unwrap();
                    assert_eq!(hits.len(), NDOCS);
                    for h in &hits {
                        assert!(
                            h.value.parse::<u64>().is_ok(),
                            "torn value {:?} for doc {}",
                            h.value,
                            h.doc
                        );
                    }
                }
            });
        }
    });

    let last = last_committed.into_inner().unwrap();
    for doc in 1..=NDOCS as DocId {
        let expected = last
            .get(&doc)
            .cloned()
            .unwrap_or_else(|| format!("{}", doc - 1));
        // Warm read and fresh serialization must both report the last commit.
        let got = system_rx::engine::traverse::string_value(
            t.xml_column("doc").unwrap().xml_table(),
            doc,
            &v_text(),
        )
        .unwrap();
        assert_eq!(got, expected, "doc {doc} lost its last committed value");
    }
    let stats = db.stats();
    assert!(stats.doc_cache_bytes <= BUDGET as u64, "stats: {stats:?}");
}
