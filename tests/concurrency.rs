//! Concurrency integration tests over the full engine (§5): parallel
//! loaders, reader/writer isolation at document granularity, disjoint
//! subtree writers, and snapshot readers over MVCC under write pressure.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use system_rx::engine::db::{ColValue, ColumnKind, Database};
use system_rx::engine::mvcc::{pack_for_mvcc, MvccXmlStore};
use system_rx::engine::{access, conc, update};
use system_rx::gen::{order_doc, product_doc, CatalogSpec};
use system_rx::storage::{BufferPool, MemBackend, TableSpace};
use system_rx::xml::{NameDict, NodeId};
use system_rx::xpath::XPathParser;

#[test]
fn parallel_loaders_do_not_corrupt() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index(
        "p",
        "price",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        system_rx::xml::value::KeyType::Double,
    )
    .unwrap();
    let spec = CatalogSpec {
        products: 120,
        ..Default::default()
    };
    let loaded = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for w in 0..4usize {
            let db = &db;
            let t = &t;
            let spec = &spec;
            let loaded = &loaded;
            s.spawn(move || {
                for i in (w..spec.products).step_by(4) {
                    db.insert_row(t, &[ColValue::Xml(product_doc(spec, i))])
                        .unwrap();
                    loaded.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(loaded.load(Ordering::Relaxed), 120);
    // Every document round-trips; index agrees with scan.
    let col = t.xml_column("doc").unwrap();
    assert_eq!(access::all_docids(&t).unwrap().len(), 120);
    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 250]")
        .unwrap();
    let plan = access::plan(&path, col, false);
    let (hits, _) = access::execute(&plan, &t, col, db.dict(), &path).unwrap();
    assert_eq!(hits.len(), spec.expected_above(250.0));
}

#[test]
fn document_lock_serializes_reader_and_writer() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    let doc = db
        .insert_row(&t, &[ColValue::Xml(order_doc(1, 4))])
        .unwrap();
    let table_id = t.def.id;

    let w = db.begin().unwrap();
    conc::lock_document_exclusive(&w, table_id, doc).unwrap();
    // A reader cannot get S while the writer holds X (times out quickly).
    let r = db.begin().unwrap();
    assert!(conc::lock_document_shared(&r, table_id, doc).is_err());
    w.commit().unwrap();
    let r2 = db.begin().unwrap();
    conc::lock_document_shared(&r2, table_id, doc).unwrap();
    r2.commit().unwrap();
    r.commit().unwrap();
}

#[test]
fn disjoint_subtree_writers_produce_all_updates() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    let items = 16usize;
    let doc = db
        .insert_row(&t, &[ColValue::Xml(order_doc(1, items))])
        .unwrap();
    let table_id = t.def.id;
    let col = t.xml_column("doc").unwrap();

    // Item i's node id: Order(02) / child (06 + 2i) — @id:02, Customer:04.
    let item_node =
        |i: usize| -> NodeId { NodeId::from_bytes(&[0x02, 0x06 + 2 * i as u8]).unwrap() };
    std::thread::scope(|s| {
        for w in 0..4usize {
            let db = &db;
            let item_node = &item_node;
            s.spawn(move || {
                for i in (w..16).step_by(4) {
                    let item = item_node(i);
                    let txn = db.begin().unwrap();
                    conc::lock_subtree_exclusive(&txn, table_id, doc, &item).unwrap();
                    let qty_text =
                        NodeId::from_bytes(&[item.as_bytes(), &[0x04, 0x02]].concat()).unwrap();
                    update::replace_value(&txn, col.xml_table(), doc, &qty_text, "99").unwrap();
                    txn.commit().unwrap();
                }
            });
        }
    });
    let xml = db.serialize_document(&t, "doc", doc).unwrap();
    assert_eq!(
        xml.matches("<Qty>99</Qty>").count(),
        items,
        "every item updated exactly once: {xml}"
    );
}

#[test]
fn mvcc_snapshot_isolation_under_writes() {
    let pool = BufferPool::new(4096);
    let space = TableSpace::create(pool, 77, Arc::new(MemBackend::new())).unwrap();
    let store = Arc::new(MvccXmlStore::create(space).unwrap());
    let dict = NameDict::new();
    store
        .commit_version(
            1,
            &pack_for_mvcc("<o><v>0</v></o>", &dict, 3500).unwrap(),
            &[],
        )
        .unwrap();
    let anomalies = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        {
            let store = Arc::clone(&store);
            let dict = &dict;
            s.spawn(move || {
                for v in 1..=100 {
                    let recs = pack_for_mvcc(&format!("<o><v>{v}</v></o>"), dict, 3500).unwrap();
                    store.commit_version(1, &recs, &[]).unwrap();
                }
            });
        }
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let anomalies = Arc::clone(&anomalies);
            s.spawn(move || {
                let root = NodeId::from_bytes(&[0x02]).unwrap();
                for _ in 0..500 {
                    let snap = store.snapshot();
                    // Two reads under one snapshot must agree (repeatable).
                    let a = store.visible_version(1, snap).unwrap();
                    let rid1 = store.locate(1, &root, snap).unwrap();
                    let b = store.visible_version(1, snap).unwrap();
                    let rid2 = store.locate(1, &root, snap).unwrap();
                    if a != b || rid1 != rid2 {
                        anomalies.fetch_add(1, Ordering::Relaxed);
                    }
                    store.close_snapshot(snap);
                }
            });
        }
    });
    assert_eq!(anomalies.load(Ordering::Relaxed), 0);
}

#[test]
fn deadlock_victim_lets_other_proceed() {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    let d1 = db.insert_row(&t, &[ColValue::Xml("<a/>".into())]).unwrap();
    let d2 = db.insert_row(&t, &[ColValue::Xml("<b/>".into())]).unwrap();
    let table_id = t.def.id;

    let t1 = db.begin().unwrap();
    let t2 = db.begin().unwrap();
    conc::lock_document_exclusive(&t1, table_id, d1).unwrap();
    conc::lock_document_exclusive(&t2, table_id, d2).unwrap();
    let db2 = Arc::clone(&db);
    let h = std::thread::spawn(move || {
        // t1 wants d2 — will wait on t2.
        conc::lock_document_exclusive(&t1, table_id, d2).map(|()| t1)
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    // t2 wants d1 — closes the cycle; one of the two must fail fast.
    let r2 = conc::lock_document_exclusive(&t2, table_id, d1);
    if r2.is_err() {
        // t2 is the victim: release it so t1 proceeds.
        t2.rollback().unwrap();
        let t1 = h.join().unwrap().expect("t1 proceeds after victim aborts");
        t1.commit().unwrap();
    } else {
        // t1 must have been the victim.
        assert!(h.join().unwrap().is_err());
        t2.commit().unwrap();
    }
    let _ = db2;
}

#[test]
fn locked_reader_never_sees_partial_insert_via_index() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use system_rx::xml::value::KeyType;

    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("p", &[("doc", ColumnKind::Xml)]).unwrap();
    db.create_value_index("p", "v", "doc", "/r/v", KeyType::Double)
        .unwrap();
    // One committed document.
    db.insert_row(
        &t,
        &[ColValue::Xml("<r><v>1</v><tag>done</tag></r>".into())],
    )
    .unwrap();
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new().parse("/r[v >= 1]/tag").unwrap();

    let writer_holding = Arc::new(AtomicBool::new(false));
    let release_writer = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        // Writer: inserts a document and stalls before commit — its index
        // entries exist but the document is half-visible.
        {
            let db = &db;
            let t = &t;
            let writer_holding = Arc::clone(&writer_holding);
            let release_writer = Arc::clone(&release_writer);
            s.spawn(move || {
                let txn = db.begin().unwrap();
                db.insert_row_txn(
                    &txn,
                    t,
                    &[ColValue::Xml("<r><v>2</v><tag>pending</tag></r>".into())],
                )
                .unwrap();
                writer_holding.store(true, Ordering::SeqCst);
                while !release_writer.load(Ordering::SeqCst) {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                txn.commit().unwrap();
            });
        }
        while !writer_holding.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        // Unlocked read (MVCC-free, lock-free): would touch the in-flight
        // document's index entries — the hazard §5.1 warns about. The LOCKED
        // reader instead blocks on the doc lock; with the short default
        // timeout it errors rather than returning a partial document.
        let txn = db.begin().unwrap();
        let locked = access::run_query_locked(&txn, &t, col, db.dict(), &path, false);
        assert!(
            locked.is_err(),
            "locked reader must not read the uncommitted document"
        );
        txn.rollback().unwrap();
        release_writer.store(true, Ordering::SeqCst);
    });
    // After commit, the locked reader sees both documents.
    let txn = db.begin().unwrap();
    let (hits, _) = access::run_query_locked(&txn, &t, col, db.dict(), &path, false).unwrap();
    txn.commit().unwrap();
    let mut values: Vec<String> = hits.into_iter().map(|h| h.value).collect();
    values.sort();
    assert_eq!(values, vec!["done", "pending"]);
}

#[test]
fn locked_scan_without_indexes() {
    // run_query_locked falls back to a full scan and still S-locks every
    // document it reads.
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("u", &[("doc", ColumnKind::Xml)]).unwrap();
    for i in 0..5 {
        db.insert_row(&t, &[ColValue::Xml(format!("<r><v>{i}</v></r>"))])
            .unwrap();
    }
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new().parse("/r/v").unwrap();
    let txn = db.begin().unwrap();
    let (hits, stats) = access::run_query_locked(&txn, &t, col, db.dict(), &path, false).unwrap();
    assert_eq!(hits.len(), 5);
    assert_eq!(stats.candidates, 5);
    // All five document locks are held until commit.
    assert!(db.txns().locks().held_count(txn.id()) >= 6); // table IS + 5 docs
    txn.commit().unwrap();
}
