//! Table 1 (§4.2): the four propagation scenarios for sequence-valued
//! attributes, verified end-to-end through the *stored-data* path (parse →
//! pack → store → traverse → QuickXScan), not just in-memory streams.
//! Each scenario checks completeness (every expected node appears) and the
//! duplicate-freedom the upward/sideways rules guarantee.

use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::{access, AccessPlan};
use system_rx::xpath::XPathParser;

fn run_stored(doc: &str, query: &str) -> Vec<String> {
    // A tiny packing target forces multi-record storage, so propagation also
    // crosses record boundaries.
    let db = Database::create_in_memory_with(DbConfig {
        target_record_size: 192,
        ..Default::default()
    })
    .unwrap();
    let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
    db.insert_row(&t, &[ColValue::Xml(doc.to_string())])
        .unwrap();
    let col = t.xml_column("doc").unwrap();
    let path = XPathParser::new().parse(query).unwrap();
    let (hits, _) = access::execute(&AccessPlan::FullScan, &t, col, db.dict(), &path).unwrap();
    hits.into_iter().map(|h| h.value).collect()
}

/// Table 1 row 1 — path `a/b`, single `a`: `s1 := s1 ∪ {b}` upward on each
/// b's end.
#[test]
fn row1_child_axis_single_a() {
    let doc = "<r><a><b>1</b><x/><b>2</b><b>3</b></a></r>";
    assert_eq!(run_stored(doc, "//a/b"), vec!["1", "2", "3"]);
    // The sequence drives the parent's predicate exactly once per value.
    assert_eq!(run_stored(doc, "/r/a[count(b) = 3]").len(), 1);
}

/// Table 1 row 2 — path `a/b` with nested `a` instances: each instance
/// accumulates only its own children ("no sideways propagation for s").
#[test]
fn row2_child_axis_nested_as() {
    let doc = "<r><a><b>outer</b><a><b>inner1</b><b>inner2</b></a></a></r>";
    // Both a's match //a/b; values must not leak across instances.
    assert_eq!(run_stored(doc, "//a/b"), vec!["outer", "inner1", "inner2"]);
    assert_eq!(
        run_stored(doc, "//a[count(b) = 2]/b"),
        vec!["inner1", "inner2"]
    );
    assert_eq!(run_stored(doc, "//a[count(b) = 1]/b"), vec!["outer"]);
    // The outer a must NOT see the inner b's as its own children.
    assert!(run_stored(doc, "//a[count(b) = 3]").is_empty());
}

/// Table 1 row 3 — path `a//b`, single `a`, nested `b`s: descendant-or-self
/// sequences merge sideways between nested b instances, then upward into a.
#[test]
fn row3_descendant_axis_nested_bs() {
    let doc = "<r><a><b>o<b>i1</b></b><b>s</b></a></r>";
    // All three b's are descendants of a, each exactly once.
    let got = run_stored(doc, "//a//b");
    assert_eq!(got.len(), 3, "{got:?}");
    assert_eq!(run_stored(doc, "//a[count(.//b) = 3]").len(), 1);
}

/// Table 1 row 4 — path `a//b` with nested `a`s: the inner a's descendant
/// sequence propagates sideways into the outer a's ("At end of a2:
/// s1 = s1 ∪ s2"), so both instances see the deep b, each exactly once.
#[test]
fn row4_descendant_axis_nested_as() {
    let doc = "<r><a><a><b>deep</b></a></a></r>";
    // Both a instances qualify; the b value reaches each exactly once.
    assert_eq!(run_stored(doc, "//a[.//b = 'deep']").len(), 2);
    assert_eq!(run_stored(doc, "//a[count(.//b) = 1]").len(), 2);
    // The result sequence //a//b is still duplicate-free.
    assert_eq!(run_stored(doc, "//a//b"), vec!["deep"]);
}

/// The combined worst case: deep same-name recursion with both child and
/// descendant predicates, across record boundaries.
#[test]
fn combined_recursion_duplicate_freedom() {
    let mut doc = String::from("<r>");
    for i in 0..8 {
        doc.push_str(&format!("<a><m>{i}</m>"));
    }
    doc.push_str("<b>core</b>");
    for _ in 0..8 {
        doc.push_str("</a>");
    }
    doc.push_str("</r>");
    // Every a sees the single b below it exactly once.
    assert_eq!(run_stored(&doc, "//a[count(.//b) = 1]").len(), 8);
    // //a//b yields exactly one result.
    assert_eq!(run_stored(&doc, "//a//b"), vec!["core"]);
    // //a//m: m_i is a descendant of a_0..a_i (i+1 ancestors), but the
    // result sequence lists each m exactly once.
    let ms = run_stored(&doc, "//a//m");
    assert_eq!(ms.len(), 8, "{ms:?}");
    let mut dedup = ms.clone();
    dedup.dedup();
    assert_eq!(dedup.len(), 8, "no duplicates: {ms:?}");
}

/// The paper's own Fig. 6 query over stored data.
#[test]
fn fig6_query_on_stored_documents() {
    let doc = r#"<r><s><p><t>XML</t></p><f w="400"/><tag>hit</tag></s>
                  <s><t>XML</t><f w="100"/><tag>low-w</tag></s>
                  <s><f w="999"/><tag>no-t</tag></s></r>"#;
    let got = run_stored(doc, r#"//s[.//t = "XML" and f/@w > 300]/tag"#);
    assert_eq!(got, vec!["hit"]);
}
