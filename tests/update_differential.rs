//! Differential testing of sub-document updates: the same random edit
//! sequence applied to two databases with very different packing targets
//! (hence different record/proxy layouts) must produce byte-identical
//! documents, and the NodeID index must stay consistent (every node
//! locatable, no stale entries) throughout.

use proptest::prelude::*;
use std::sync::Arc;
use system_rx::engine::db::{ColValue, ColumnKind, Database, DbConfig};
use system_rx::engine::update::{self, InsertPos};
use system_rx::engine::{access, AccessPlan, BaseTable};
use system_rx::xml::NodeId;
use system_rx::xpath::XPathParser;

#[derive(Debug, Clone)]
enum Edit {
    /// Replace the i-th text node's value.
    ReplaceText(usize, String),
    /// Delete the i-th non-root element.
    DeleteElement(usize),
    /// Insert a fragment at a position relative to the i-th element.
    Insert(usize, u8, String),
}

fn arb_edit() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (any::<usize>(), "[a-z]{1,20}").prop_map(|(i, s)| Edit::ReplaceText(i, s)),
        any::<usize>().prop_map(Edit::DeleteElement),
        (any::<usize>(), 0u8..4, "[a-z]{1,6}").prop_map(|(i, p, n)| Edit::Insert(
            i,
            p,
            format!("<{n}>{n}</{n}>")
        )),
    ]
}

struct Db {
    db: Arc<Database>,
    table: Arc<BaseTable>,
}

impl Db {
    fn new(target: usize, doc: &str) -> Db {
        let db = Database::create_in_memory_with(DbConfig {
            target_record_size: target,
            ..Default::default()
        })
        .unwrap();
        let table = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        db.insert_row(&table, &[ColValue::Xml(doc.to_string())])
            .unwrap();
        Db { db, table }
    }

    fn nodes(&self, query: &str) -> Vec<NodeId> {
        let col = self.table.xml_column("doc").unwrap();
        let path = XPathParser::new().parse(query).unwrap();
        let (hits, _) = access::execute(
            &AccessPlan::FullScan,
            &self.table,
            col,
            self.db.dict(),
            &path,
        )
        .unwrap();
        hits.into_iter().filter_map(|h| h.node).collect()
    }

    fn serialize(&self) -> String {
        self.db.serialize_document(&self.table, "doc", 1).unwrap()
    }

    /// Apply one edit; returns false when the edit was a no-op (no valid
    /// target). Node selection is deterministic given the same document, so
    /// both databases pick the same logical node.
    fn apply(&self, edit: &Edit) -> bool {
        let col = self.table.xml_column("doc").unwrap();
        let xml = col.xml_table();
        match edit {
            Edit::ReplaceText(i, value) => {
                let texts = self.nodes("//text()");
                if texts.is_empty() {
                    return false;
                }
                let node = &texts[i % texts.len()];
                let txn = self.db.begin().unwrap();
                update::replace_value(&txn, xml, 1, node, value).unwrap();
                txn.commit().unwrap();
                true
            }
            Edit::DeleteElement(i) => {
                // Deletable: any element except the document root element.
                let elems: Vec<NodeId> = self
                    .nodes("//*")
                    .into_iter()
                    .filter(|n| n.depth() > 1)
                    .collect();
                if elems.is_empty() {
                    return false;
                }
                let node = &elems[i % elems.len()];
                let txn = self.db.begin().unwrap();
                update::delete_node(&txn, xml, 1, node).unwrap();
                txn.commit().unwrap();
                true
            }
            Edit::Insert(i, pos, frag) => {
                let elems = self.nodes("//*");
                if elems.is_empty() {
                    return false;
                }
                let node = &elems[i % elems.len()];
                let pos = match pos % 2 {
                    0 => InsertPos::First,
                    _ => InsertPos::Last,
                };
                let txn = self.db.begin().unwrap();
                update::insert_fragment(&txn, xml, 1, self.db.dict(), node, pos, frag).unwrap();
                txn.commit().unwrap();
                true
            }
        }
    }

    /// Every node reported by a full scan must be locatable through the
    /// NodeID index, and its string value must be readable.
    fn check_index_consistency(&self) {
        let col = self.table.xml_column("doc").unwrap();
        let xml = col.xml_table();
        for node in self.nodes("//*") {
            assert!(
                xml.locate(1, &node).unwrap().is_some(),
                "element {node} not locatable"
            );
            let _ = system_rx::engine::traverse::string_value(xml, 1, &node).unwrap();
        }
    }
}

const SEED_DOC: &str = "<root><a><x>one</x><y>two</y></a><b>three</b>\
                        <c><d><e>four</e></d></c></root>";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_edits_agree_across_packing_targets(
        edits in prop::collection::vec(arb_edit(), 1..15)
    ) {
        let small = Db::new(160, SEED_DOC);
        let large = Db::new(3500, SEED_DOC);
        prop_assert_eq!(small.serialize(), large.serialize());
        for edit in &edits {
            let a = small.apply(edit);
            let b = large.apply(edit);
            prop_assert_eq!(a, b, "edit applicability must agree: {:?}", edit);
            prop_assert_eq!(
                small.serialize(),
                large.serialize(),
                "divergence after {:?}",
                edit
            );
        }
        small.check_index_consistency();
        large.check_index_consistency();
    }
}

#[test]
fn targeted_edit_sequence() {
    // A deterministic mixed sequence exercising spill + delete + midpoints.
    let small = Db::new(160, SEED_DOC);
    let large = Db::new(3500, SEED_DOC);
    let edits = [
        Edit::Insert(0, 1, format!("<big>{}</big>", "z".repeat(500))),
        Edit::ReplaceText(2, "changed".into()),
        Edit::Insert(3, 0, "<tiny>t</tiny>".into()),
        Edit::DeleteElement(1),
        Edit::Insert(5, 1, format!("<big2>{}</big2>", "w".repeat(800))),
        Edit::DeleteElement(4),
        Edit::ReplaceText(0, "final".into()),
    ];
    for e in &edits {
        assert_eq!(small.apply(e), large.apply(e));
        assert_eq!(small.serialize(), large.serialize(), "after {e:?}");
    }
    small.check_index_consistency();
    large.check_index_consistency();
}
