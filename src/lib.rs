//! # System R/X — a native XML database engine on relational infrastructure
//!
//! A production-quality Rust reproduction of *"Building a Scalable Native XML
//! Database Engine on Infrastructure for a Relational Database"* (Guogen
//! Zhang, IBM Silicon Valley Lab, 2005).
//!
//! This façade crate re-exports the whole system:
//!
//! * [`storage`] — the relational data-management substrate (slotted pages,
//!   buffer pool, heaps, B+trees, WAL + recovery, multi-granularity locking);
//! * [`xml`] — the XML layer (name dictionary, Dewey node IDs, buffered token
//!   streams, parser, schema compiler + validation VM, serializer);
//! * [`xpath`] — the XPath compiler and the QuickXScan streaming evaluator;
//! * [`engine`] — the native XML engine itself (tree-packed storage, NodeID
//!   index, XPath value indexes, access methods, constructors, the virtual-
//!   SAX runtime, concurrency control, and the SQL/XML session layer);
//! * [`gen`] — deterministic workload generators for the experiments;
//! * [`server`] — the concurrent service layer (wire protocol, sessions,
//!   admission control, stats) over TCP or in-process channels.
//!
//! ## Quickstart
//!
//! ```
//! use system_rx::engine::{Database, Session, Output};
//!
//! let db = Database::create_in_memory().unwrap();
//! let session = Session::new(db);
//! session.execute("CREATE TABLE products (sku VARCHAR, doc XML)").unwrap();
//! session.execute(
//!     "CREATE INDEX price_idx ON products (doc) \
//!      USING XPATH '/Catalog/Product/RegPrice' AS DOUBLE").unwrap();
//! session.execute(
//!     "INSERT INTO products VALUES ('SKU-1', \
//!      XML('<Catalog><Product><RegPrice>19.99</RegPrice></Product></Catalog>'))").unwrap();
//! let out = session.execute(
//!     "SELECT XMLQUERY('/Catalog/Product[RegPrice > 10]') FROM products").unwrap();
//! match out {
//!     Output::Sequence(hits) => assert_eq!(hits.len(), 1),
//!     _ => unreachable!(),
//! }
//! ```

pub use rx_engine as engine;
pub use rx_gen as gen;
pub use rx_server as server;
pub use rx_storage as storage;
pub use rx_xml as xml;
pub use rx_xpath as xpath;
