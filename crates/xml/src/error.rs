//! Error types for XML parsing, validation and the data model.

use std::fmt;

/// Result alias for the XML crate.
pub type Result<T> = std::result::Result<T, XmlError>;

/// Errors raised by XML parsing, validation, node-ID arithmetic and
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-descriptive
pub enum XmlError {
    /// The document is not well-formed.
    Parse { offset: usize, message: String },
    /// The document does not conform to its registered schema.
    Validation { message: String },
    /// A schema definition itself is malformed.
    Schema { message: String },
    /// A token stream or packed record is structurally invalid.
    Stream { message: String },
    /// Node-ID arithmetic failure (malformed Dewey bytes).
    NodeId { message: String },
    /// A value could not be cast to the requested type.
    Cast { value: String, target: &'static str },
}

impl XmlError {
    /// Shorthand for a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        XmlError::Parse {
            offset,
            message: message.into(),
        }
    }

    /// Shorthand for a stream error.
    pub fn stream(message: impl Into<String>) -> Self {
        XmlError::Stream {
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse { offset, message } => {
                write!(f, "XML parse error at byte {offset}: {message}")
            }
            XmlError::Validation { message } => write!(f, "validation error: {message}"),
            XmlError::Schema { message } => write!(f, "schema error: {message}"),
            XmlError::Stream { message } => write!(f, "token stream error: {message}"),
            XmlError::NodeId { message } => write!(f, "node id error: {message}"),
            XmlError::Cast { value, target } => {
                write!(f, "cannot cast {value:?} to {target}")
            }
        }
    }
}

impl std::error::Error for XmlError {}
