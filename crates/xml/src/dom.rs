//! An in-memory DOM tree.
//!
//! This is a **baseline**, not part of the engine's data path: §3.2 dismisses
//! "in-memory construction of intermediate data structures" as overhead, and
//! §4.2 reports QuickXScan "orders of magnitude better than some DOM-based
//! algorithm". The arena tree here is what the E4 (construction cost) and E5c
//! (DOM-based XPath) experiments compare against. It is also reused as the
//! reference evaluator when differential-testing QuickXScan.

use crate::error::Result;
use crate::event::{Event, EventSink};
use crate::name::{NameDict, QNameId};
use crate::parser::Parser;

/// Index of a node in the arena.
pub type DomId = usize;

/// Node payload.
#[derive(Debug, Clone, PartialEq)]
pub enum DomKind {
    /// The document node (arena index 0).
    Document,
    /// An element with its attributes (attribute *nodes* are stored inline).
    Element {
        /// Interned name.
        name: QNameId,
        /// Attributes in stream order.
        attrs: Vec<(QNameId, String)>,
    },
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
    /// A processing instruction.
    Pi {
        /// Interned target.
        target: QNameId,
        /// Data string.
        data: String,
    },
}

/// One arena node.
#[derive(Debug, Clone)]
pub struct DomNode {
    /// Payload.
    pub kind: DomKind,
    /// Parent id (self for the document node).
    pub parent: DomId,
    /// Child ids in document order.
    pub children: Vec<DomId>,
}

/// An arena-allocated DOM tree.
#[derive(Debug, Clone, Default)]
pub struct DomTree {
    nodes: Vec<DomNode>,
}

impl DomTree {
    /// The document node id.
    pub const ROOT: DomId = 0;

    /// Parse text into a DOM (baseline construction path for E4).
    pub fn parse(input: &str, dict: &NameDict) -> Result<DomTree> {
        let mut b = DomBuilder::new();
        Parser::new(dict).parse(input, &mut b)?;
        Ok(b.finish())
    }

    /// Node accessor.
    pub fn node(&self, id: DomId) -> &DomNode {
        &self.nodes[id]
    }

    /// Number of nodes (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree holds only the document node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Children of `id` in document order.
    pub fn children(&self, id: DomId) -> &[DomId] {
        &self.nodes[id].children
    }

    /// Parent of `id` (`None` for the document node).
    pub fn parent(&self, id: DomId) -> Option<DomId> {
        if id == Self::ROOT {
            None
        } else {
            Some(self.nodes[id].parent)
        }
    }

    /// The root element, if any.
    pub fn root_element(&self) -> Option<DomId> {
        self.nodes[Self::ROOT]
            .children
            .iter()
            .copied()
            .find(|&c| matches!(self.nodes[c].kind, DomKind::Element { .. }))
    }

    /// XPath string value: for comments and processing instructions, their
    /// own content; otherwise the concatenation of all descendant text.
    pub fn string_value(&self, id: DomId) -> String {
        match &self.nodes[id].kind {
            DomKind::Comment(c) => return c.clone(),
            DomKind::Pi { data, .. } => return data.clone(),
            _ => {}
        }
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: DomId, out: &mut String) {
        match &self.nodes[id].kind {
            DomKind::Text(t) => out.push_str(t),
            DomKind::Comment(_) | DomKind::Pi { .. } => {}
            _ => {
                for &c in &self.nodes[id].children {
                    self.collect_text(c, out);
                }
            }
        }
    }

    /// Pre-order traversal visiting every node id.
    pub fn walk(&self, mut visit: impl FnMut(DomId)) {
        let mut stack = vec![Self::ROOT];
        while let Some(id) = stack.pop() {
            visit(id);
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
    }

    /// Replay the tree as virtual SAX events (lets the DOM participate in the
    /// shared §4.4 runtime, e.g. for serialization in E8).
    pub fn replay(&self, sink: &mut dyn EventSink) -> Result<()> {
        sink.event(Event::StartDocument)?;
        self.replay_node(Self::ROOT, sink)?;
        sink.event(Event::EndDocument)
    }

    fn replay_node(&self, id: DomId, sink: &mut dyn EventSink) -> Result<()> {
        match &self.nodes[id].kind {
            DomKind::Document => {
                for &c in &self.nodes[id].children {
                    self.replay_node(c, sink)?;
                }
            }
            DomKind::Element { name, attrs } => {
                sink.event(Event::StartElement { name: *name })?;
                for (aname, value) in attrs {
                    sink.event(Event::Attribute {
                        name: *aname,
                        value,
                        ann: Default::default(),
                    })?;
                }
                for &c in &self.nodes[id].children {
                    self.replay_node(c, sink)?;
                }
                sink.event(Event::EndElement)?;
            }
            DomKind::Text(t) => sink.event(Event::Text {
                value: t,
                ann: Default::default(),
            })?,
            DomKind::Comment(c) => sink.event(Event::Comment { value: c })?,
            DomKind::Pi { target, data } => sink.event(Event::Pi {
                target: *target,
                data,
            })?,
        }
        Ok(())
    }

    /// Rough heap footprint in bytes (for the E5 memory comparison).
    pub fn approx_bytes(&self) -> usize {
        let mut total = self.nodes.capacity() * std::mem::size_of::<DomNode>();
        for n in &self.nodes {
            total += n.children.capacity() * std::mem::size_of::<DomId>();
            match &n.kind {
                DomKind::Text(t) | DomKind::Comment(t) => total += t.capacity(),
                DomKind::Element { attrs, .. } => {
                    for (_, v) in attrs {
                        total += v.capacity() + std::mem::size_of::<(QNameId, String)>();
                    }
                }
                DomKind::Pi { data, .. } => total += data.capacity(),
                DomKind::Document => {}
            }
        }
        total
    }
}

/// Builds a [`DomTree`] from virtual SAX events.
pub struct DomBuilder {
    tree: DomTree,
    stack: Vec<DomId>,
}

impl Default for DomBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DomBuilder {
    /// Fresh builder with an empty document node.
    pub fn new() -> Self {
        DomBuilder {
            tree: DomTree {
                nodes: vec![DomNode {
                    kind: DomKind::Document,
                    parent: 0,
                    children: Vec::new(),
                }],
            },
            stack: vec![DomTree::ROOT],
        }
    }

    /// Finish and return the tree.
    pub fn finish(self) -> DomTree {
        self.tree
    }

    fn push_child(&mut self, kind: DomKind) -> DomId {
        let parent = *self.stack.last().unwrap();
        let id = self.tree.nodes.len();
        self.tree.nodes.push(DomNode {
            kind,
            parent,
            children: Vec::new(),
        });
        self.tree.nodes[parent].children.push(id);
        id
    }
}

impl EventSink for DomBuilder {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartDocument | Event::EndDocument | Event::NamespaceDecl { .. } => {}
            Event::StartElement { name } => {
                let id = self.push_child(DomKind::Element {
                    name,
                    attrs: Vec::new(),
                });
                self.stack.push(id);
            }
            Event::Attribute { name, value, .. } => {
                let cur = *self.stack.last().unwrap();
                if let DomKind::Element { attrs, .. } = &mut self.tree.nodes[cur].kind {
                    attrs.push((name, value.to_string()));
                }
            }
            Event::Text { value, .. } => {
                self.push_child(DomKind::Text(value.to_string()));
            }
            Event::Comment { value } => {
                self.push_child(DomKind::Comment(value.to_string()));
            }
            Event::Pi { target, data } => {
                self.push_child(DomKind::Pi {
                    target,
                    data: data.to_string(),
                });
            }
            Event::EndElement => {
                self.stack.pop();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::Serializer;

    #[test]
    fn build_and_navigate() {
        let dict = NameDict::new();
        let t = DomTree::parse(r#"<a x="1"><b>hi</b><c>there</c></a>"#, &dict).unwrap();
        let root = t.root_element().unwrap();
        assert_eq!(t.children(root).len(), 2);
        assert_eq!(t.string_value(root), "hithere");
        let b = t.children(root)[0];
        assert_eq!(t.string_value(b), "hi");
        assert_eq!(t.parent(b), Some(root));
        assert_eq!(t.parent(DomTree::ROOT), None);
        if let DomKind::Element { attrs, .. } = &t.node(root).kind {
            assert_eq!(attrs.len(), 1);
        } else {
            panic!("root is an element");
        }
    }

    #[test]
    fn walk_counts_all_nodes() {
        let dict = NameDict::new();
        let t = DomTree::parse("<a><b/><c><d/></c></a>", &dict).unwrap();
        let mut n = 0;
        t.walk(|_| n += 1);
        assert_eq!(n, 5); // document + 4 elements
    }

    #[test]
    fn replay_matches_serializer() {
        let dict = NameDict::new();
        let input = r#"<cat><p price="9.99">W</p><!-- c --><?pi d?></cat>"#;
        let t = DomTree::parse(input, &dict).unwrap();
        let mut s = Serializer::new(&dict);
        t.replay(&mut s).unwrap();
        assert_eq!(s.finish(), input);
    }

    #[test]
    fn memory_estimate_positive() {
        let dict = NameDict::new();
        let t = DomTree::parse("<a><b>some text content here</b></a>", &dict).unwrap();
        assert!(t.approx_bytes() > 100);
    }
}
