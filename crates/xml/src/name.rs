//! The database-wide name dictionary.
//!
//! §3.1: "In the stored XML data, all the names for elements, attributes, and
//! namespaces are encoded using integers across the entire database." This
//! module interns strings (namespace URIs, prefixes, local names) as
//! [`StrId`]s and qualified names as [`QNameId`]s. Both directions are O(1);
//! the dictionary is thread-safe and can be exported/imported for persistence
//! in the catalog.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Interned string id.
pub type StrId = u32;
/// Interned qualified-name id (the paper's integer name encoding).
pub type QNameId = u32;

/// The reserved [`StrId`] for the empty string ("no namespace", "no prefix").
pub const EMPTY_STR: StrId = 0;

/// A resolved qualified name: namespace URI, original prefix, local name —
/// each as an interned string.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct QName {
    /// Namespace URI ([`EMPTY_STR`] = no namespace).
    pub uri: StrId,
    /// Original lexical prefix ([`EMPTY_STR`] = none); kept for faithful
    /// serialization, ignored for name equality.
    pub prefix: StrId,
    /// Local name.
    pub local: StrId,
}

#[derive(Default)]
struct Inner {
    strings: Vec<Arc<str>>,
    by_string: HashMap<Arc<str>, StrId>,
    qnames: Vec<QName>,
    by_qname: HashMap<QName, QNameId>,
    /// (uri, local) → representative QNameId, for prefix-insensitive lookup.
    by_expanded: HashMap<(StrId, StrId), QNameId>,
}

/// Thread-safe interning dictionary for names.
pub struct NameDict {
    inner: RwLock<Inner>,
}

impl Default for NameDict {
    fn default() -> Self {
        Self::new()
    }
}

impl NameDict {
    /// Create a dictionary with the empty string pre-interned as id 0.
    pub fn new() -> Self {
        let mut inner = Inner::default();
        let empty: Arc<str> = Arc::from("");
        inner.strings.push(empty.clone());
        inner.by_string.insert(empty, EMPTY_STR);
        NameDict {
            inner: RwLock::new(inner),
        }
    }

    /// Intern a string.
    pub fn intern_str(&self, s: &str) -> StrId {
        if s.is_empty() {
            return EMPTY_STR;
        }
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_string.get(s) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_string.get(s) {
            return id;
        }
        let id = inner.strings.len() as StrId;
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(arc.clone());
        inner.by_string.insert(arc, id);
        id
    }

    /// Resolve an interned string.
    pub fn str(&self, id: StrId) -> Arc<str> {
        self.inner.read().strings[id as usize].clone()
    }

    /// Intern a qualified name from its lexical parts.
    pub fn intern(&self, uri: &str, prefix: &str, local: &str) -> QNameId {
        let q = QName {
            uri: self.intern_str(uri),
            prefix: self.intern_str(prefix),
            local: self.intern_str(local),
        };
        self.intern_qname(q)
    }

    /// Intern an already-resolved [`QName`].
    pub fn intern_qname(&self, q: QName) -> QNameId {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.by_qname.get(&q) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_qname.get(&q) {
            return id;
        }
        let id = inner.qnames.len() as QNameId;
        inner.qnames.push(q);
        inner.by_qname.insert(q, id);
        inner.by_expanded.entry((q.uri, q.local)).or_insert(id);
        id
    }

    /// Resolve a [`QNameId`] to its parts.
    pub fn qname(&self, id: QNameId) -> QName {
        self.inner.read().qnames[id as usize]
    }

    /// The local name of a qname as a string.
    pub fn local_of(&self, id: QNameId) -> Arc<str> {
        let q = self.qname(id);
        self.str(q.local)
    }

    /// The namespace URI of a qname as a string.
    pub fn uri_of(&self, id: QNameId) -> Arc<str> {
        let q = self.qname(id);
        self.str(q.uri)
    }

    /// Do two qname ids denote the same *expanded* name (uri + local),
    /// regardless of prefix? This is XPath/XQuery name equality.
    pub fn same_name(&self, a: QNameId, b: QNameId) -> bool {
        if a == b {
            return true;
        }
        let inner = self.inner.read();
        let (qa, qb) = (inner.qnames[a as usize], inner.qnames[b as usize]);
        qa.uri == qb.uri && qa.local == qb.local
    }

    /// Does qname `id` expand to `(uri, local)` given as strings? Used by
    /// XPath name tests.
    pub fn matches(&self, id: QNameId, uri: &str, local: &str) -> bool {
        let inner = self.inner.read();
        let q = inner.qnames[id as usize];
        inner.strings[q.local as usize].as_ref() == local
            && inner.strings[q.uri as usize].as_ref() == uri
    }

    /// Does qname `id` have local name `local` (any namespace)?
    pub fn matches_local(&self, id: QNameId, local: &str) -> bool {
        let inner = self.inner.read();
        let q = inner.qnames[id as usize];
        inner.strings[q.local as usize].as_ref() == local
    }

    /// Number of interned strings (for persistence and tests).
    pub fn string_count(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// Number of interned qnames.
    pub fn qname_count(&self) -> usize {
        self.inner.read().qnames.len()
    }

    /// Export the dictionary contents for persistence: all strings in id
    /// order, then all qnames in id order.
    pub fn export(&self) -> (Vec<Arc<str>>, Vec<QName>) {
        let inner = self.inner.read();
        (inner.strings.clone(), inner.qnames.clone())
    }

    /// Rebuild a dictionary from exported contents (ids are preserved).
    pub fn import(strings: &[String], qnames: &[QName]) -> Self {
        let mut inner = Inner::default();
        for s in strings {
            let arc: Arc<str> = Arc::from(s.as_str());
            let id = inner.strings.len() as StrId;
            inner.strings.push(arc.clone());
            inner.by_string.insert(arc, id);
        }
        for &q in qnames {
            let id = inner.qnames.len() as QNameId;
            inner.qnames.push(q);
            inner.by_qname.insert(q, id);
            inner.by_expanded.entry((q.uri, q.local)).or_insert(id);
        }
        if inner.strings.is_empty() {
            let empty: Arc<str> = Arc::from("");
            inner.strings.push(empty.clone());
            inner.by_string.insert(empty, EMPTY_STR);
        }
        NameDict {
            inner: RwLock::new(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let d = NameDict::new();
        let a = d.intern_str("product");
        let b = d.intern_str("product");
        assert_eq!(a, b);
        assert_eq!(d.str(a).as_ref(), "product");
        assert_ne!(d.intern_str("catalog"), a);
    }

    #[test]
    fn empty_string_is_zero() {
        let d = NameDict::new();
        assert_eq!(d.intern_str(""), EMPTY_STR);
        assert_eq!(d.str(EMPTY_STR).as_ref(), "");
    }

    #[test]
    fn qname_equality_ignores_prefix() {
        let d = NameDict::new();
        let a = d.intern("urn:cat", "c", "Product");
        let b = d.intern("urn:cat", "cat", "Product");
        let c = d.intern("urn:other", "c", "Product");
        assert_ne!(a, b, "different prefixes are distinct qname ids");
        assert!(d.same_name(a, b), "...but the same expanded name");
        assert!(!d.same_name(a, c));
        assert!(d.matches(a, "urn:cat", "Product"));
        assert!(!d.matches(a, "", "Product"));
        assert!(d.matches_local(c, "Product"));
    }

    #[test]
    fn export_import_roundtrip() {
        let d = NameDict::new();
        let q1 = d.intern("urn:x", "", "a");
        let q2 = d.intern("", "", "b");
        let (strings, qnames) = d.export();
        let strings: Vec<String> = strings.iter().map(|s| s.to_string()).collect();
        let d2 = NameDict::import(&strings, &qnames);
        assert_eq!(d2.qname(q1), d.qname(q1));
        assert_eq!(d2.qname(q2), d.qname(q2));
        assert_eq!(d2.intern("urn:x", "", "a"), q1);
    }

    #[test]
    fn concurrent_interning() {
        let d = Arc::new(NameDict::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let d = d.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let id = d.intern_str(&format!("name-{}", i % 50));
                        assert_eq!(d.str(id).as_ref(), format!("name-{}", i % 50));
                    }
                });
            }
        });
        assert_eq!(d.string_count(), 51); // 50 names + ""
    }
}
