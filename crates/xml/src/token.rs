//! The buffered token stream (§3.2).
//!
//! "To reduce the overhead, we use a proprietary parsing and validation
//! interface, which is the buffered token stream. The token stream is a
//! binary stream of tokens with namespace prefixes resolved, namespace and
//! attribute order adjusted, and optionally with type annotation if a
//! document is Schema-validated. … Buffering reduces per-token procedure call
//! cost significantly."
//!
//! A [`TokenWriter`] is an [`EventSink`] that appends compact binary tokens
//! to one growable buffer — the producer (parser, validator, constructor)
//! makes *zero* per-event virtual calls into consumer code. The finished
//! [`TokenStream`] is then replayed into any sink ([`TokenStream::replay`]),
//! amortizing dispatch over the whole buffer. This is the contrast the E4
//! insertion experiment measures against the callback-per-event SAX baseline.

use crate::error::{Result, XmlError};
use crate::event::{Event, EventSink};
use crate::name::{QNameId, StrId};
use crate::value::TypeAnn;

const T_START_DOC: u8 = 1;
const T_END_DOC: u8 = 2;
const T_START_ELEM: u8 = 3;
const T_END_ELEM: u8 = 4;
const T_ATTR: u8 = 5;
const T_TEXT: u8 = 6;
const T_COMMENT: u8 = 7;
const T_PI: u8 = 8;
const T_NSDECL: u8 = 9;

pub(crate) fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            break;
        }
        buf.push(b | 0x80);
    }
}

pub(crate) fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or_else(|| XmlError::stream("truncated varint in token stream"))?;
        *pos += 1;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(XmlError::stream("varint overflow in token stream"));
        }
    }
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn get_str<'a>(buf: &'a [u8], pos: &mut usize) -> Result<&'a str> {
    let n = get_varint(buf, pos)? as usize;
    let s = buf
        .get(*pos..*pos + n)
        .ok_or_else(|| XmlError::stream("truncated string in token stream"))?;
    *pos += n;
    std::str::from_utf8(s).map_err(|_| XmlError::stream("invalid UTF-8 in token stream"))
}

/// Builds a binary token stream from virtual SAX events.
#[derive(Default)]
pub struct TokenWriter {
    buf: Vec<u8>,
    tokens: u64,
}

impl TokenWriter {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writer with pre-allocated capacity (bytes).
    pub fn with_capacity(n: usize) -> Self {
        TokenWriter {
            buf: Vec::with_capacity(n),
            tokens: 0,
        }
    }

    /// Finish, producing the immutable stream.
    pub fn finish(self) -> TokenStream {
        TokenStream {
            buf: self.buf,
            tokens: self.tokens,
        }
    }

    /// Bytes buffered so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no tokens have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl EventSink for TokenWriter {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        self.tokens += 1;
        match ev {
            Event::StartDocument => self.buf.push(T_START_DOC),
            Event::EndDocument => self.buf.push(T_END_DOC),
            Event::StartElement { name } => {
                self.buf.push(T_START_ELEM);
                put_varint(&mut self.buf, u64::from(name));
            }
            Event::EndElement => self.buf.push(T_END_ELEM),
            Event::Attribute { name, value, ann } => {
                self.buf.push(T_ATTR);
                put_varint(&mut self.buf, u64::from(name));
                self.buf.push(ann as u8);
                put_str(&mut self.buf, value);
            }
            Event::Text { value, ann } => {
                self.buf.push(T_TEXT);
                self.buf.push(ann as u8);
                put_str(&mut self.buf, value);
            }
            Event::Comment { value } => {
                self.buf.push(T_COMMENT);
                put_str(&mut self.buf, value);
            }
            Event::Pi { target, data } => {
                self.buf.push(T_PI);
                put_varint(&mut self.buf, u64::from(target));
                put_str(&mut self.buf, data);
            }
            Event::NamespaceDecl { prefix, uri } => {
                self.buf.push(T_NSDECL);
                put_varint(&mut self.buf, u64::from(prefix));
                put_varint(&mut self.buf, u64::from(uri));
            }
        }
        Ok(())
    }
}

/// An immutable binary token stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenStream {
    buf: Vec<u8>,
    tokens: u64,
}

impl TokenStream {
    /// Wrap raw stream bytes (token count recomputed lazily as `0`).
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        TokenStream { buf, tokens: 0 }
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of tokens (as counted at write time).
    pub fn token_count(&self) -> u64 {
        self.tokens
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the stream holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Replay the whole stream into a sink — the virtual-SAX bridge of §4.4.
    pub fn replay(&self, sink: &mut dyn EventSink) -> Result<()> {
        let buf = &self.buf;
        let mut pos = 0usize;
        while pos < buf.len() {
            let tag = buf[pos];
            pos += 1;
            let ev = match tag {
                T_START_DOC => Event::StartDocument,
                T_END_DOC => Event::EndDocument,
                T_START_ELEM => Event::StartElement {
                    name: get_varint(buf, &mut pos)? as QNameId,
                },
                T_END_ELEM => Event::EndElement,
                T_ATTR => {
                    let name = get_varint(buf, &mut pos)? as QNameId;
                    let ann = TypeAnn::from_u8(buf[pos])?;
                    pos += 1;
                    let value = get_str(buf, &mut pos)?;
                    Event::Attribute { name, value, ann }
                }
                T_TEXT => {
                    let ann = TypeAnn::from_u8(
                        *buf.get(pos)
                            .ok_or_else(|| XmlError::stream("truncated text token"))?,
                    )?;
                    pos += 1;
                    let value = get_str(buf, &mut pos)?;
                    Event::Text { value, ann }
                }
                T_COMMENT => Event::Comment {
                    value: get_str(buf, &mut pos)?,
                },
                T_PI => {
                    let target = get_varint(buf, &mut pos)? as QNameId;
                    let data = get_str(buf, &mut pos)?;
                    Event::Pi { target, data }
                }
                T_NSDECL => {
                    let prefix = get_varint(buf, &mut pos)? as StrId;
                    let uri = get_varint(buf, &mut pos)? as StrId;
                    Event::NamespaceDecl { prefix, uri }
                }
                other => return Err(XmlError::stream(format!("unknown token tag {other}"))),
            };
            sink.event(ev)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCounter;

    #[test]
    fn write_and_replay() {
        let mut w = TokenWriter::new();
        w.event(Event::StartDocument).unwrap();
        w.event(Event::StartElement { name: 3 }).unwrap();
        w.event(Event::NamespaceDecl { prefix: 1, uri: 2 }).unwrap();
        w.event(Event::Attribute {
            name: 4,
            value: "199.99",
            ann: TypeAnn::Decimal,
        })
        .unwrap();
        w.event(Event::Text {
            value: "hello world",
            ann: TypeAnn::Untyped,
        })
        .unwrap();
        w.event(Event::Comment { value: "c" }).unwrap();
        w.event(Event::Pi {
            target: 9,
            data: "d",
        })
        .unwrap();
        w.event(Event::EndElement).unwrap();
        w.event(Event::EndDocument).unwrap();
        let stream = w.finish();
        assert_eq!(stream.token_count(), 9);

        // Replay into a collecting writer: streams must be identical.
        let mut w2 = TokenWriter::new();
        stream.replay(&mut w2).unwrap();
        assert_eq!(w2.finish().as_bytes(), stream.as_bytes());

        let mut c = EventCounter::default();
        stream.replay(&mut c).unwrap();
        assert_eq!(c.elements, 1);
        assert_eq!(c.attributes, 1);
        assert_eq!(c.texts, 1);
        assert_eq!(c.comments, 1);
        assert_eq!(c.pis, 1);
        assert_eq!(c.namespaces, 1);
    }

    #[test]
    fn corrupt_stream_errors() {
        let s = TokenStream::from_bytes(vec![0xEE]);
        let mut c = EventCounter::default();
        assert!(s.replay(&mut c).is_err());
        // Truncated string length.
        let s = TokenStream::from_bytes(vec![T_TEXT, 0, 50, b'a']);
        assert!(s.replay(&mut c).is_err());
    }

    #[test]
    fn compactness() {
        // A text-heavy stream should cost ~2 bytes of framing per token.
        let mut w = TokenWriter::new();
        w.event(Event::StartDocument).unwrap();
        for _ in 0..100 {
            w.event(Event::StartElement { name: 1 }).unwrap();
            w.event(Event::Text {
                value: "xxxxxxxxxx",
                ann: TypeAnn::Untyped,
            })
            .unwrap();
            w.event(Event::EndElement).unwrap();
        }
        w.event(Event::EndDocument).unwrap();
        let s = w.finish();
        // 100 * (2 elem + 13 text + 1 end) + 2 = ~1602
        assert!(s.len() < 1700, "stream is {} bytes", s.len());
    }
}
