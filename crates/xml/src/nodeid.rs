//! Dewey prefix-encoded node IDs (§3.1).
//!
//! "Node IDs are prefix encoded as Dewey IDs in such a way that they are
//! stable upon update. Basically, a relative node ID ends with an
//! even-numbered byte; and any odd-numbered byte means that the relative ID is
//! extended to the next byte. The absolute node ID of a node is the
//! concatenation of relative node IDs along the path from the root to the
//! node. The root node ID is an exception, which is always 00, so it is
//! implicit in the absolute node IDs. String comparison on the node IDs
//! provides document order. And there is always space for insertion in the
//! middle by extending the node ID length when necessary."
//!
//! Consequences of the encoding, all relied on elsewhere:
//!
//! * relative IDs are **self-delimiting** (odd byte ⇒ continue, even ⇒ stop),
//!   so no sibling's relative ID is a byte prefix of another's;
//! * therefore **byte-prefix testing on absolute IDs is the ancestor test**,
//!   which §5.2 exploits for subtree locking;
//! * plain byte comparison of absolute IDs is **document order**;
//! * between any two sibling IDs a fresh sibling ID can be generated without
//!   renumbering ([`RelId::between`]), which makes sub-document insertion
//!   stable.

use crate::error::{Result, XmlError};
use std::fmt;

/// First relative ID handed to the first child of any node.
pub const FIRST_CHILD: u8 = 0x02;

/// A relative node ID: zero or more odd bytes followed by exactly one even
/// byte.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(Vec<u8>);

impl RelId {
    /// The canonical first-sibling ID, `[0x02]`.
    pub fn first() -> Self {
        RelId(vec![FIRST_CHILD])
    }

    /// Wrap raw bytes, validating well-formedness.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.is_empty() {
            return Err(XmlError::NodeId {
                message: "relative node ID cannot be empty".into(),
            });
        }
        let (last, init) = bytes.split_last().unwrap();
        if last % 2 != 0 {
            return Err(XmlError::NodeId {
                message: format!("relative node ID must end on an even byte, got {last:#04x}"),
            });
        }
        if let Some(b) = init.iter().find(|b| *b % 2 == 0) {
            return Err(XmlError::NodeId {
                message: format!("interior byte {b:#04x} of a relative node ID must be odd"),
            });
        }
        if bytes.contains(&0x00) {
            return Err(XmlError::NodeId {
                message: "byte 0x00 is reserved for the implicit root ID".into(),
            });
        }
        Ok(RelId(bytes.to_vec()))
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Generate the conventional next sibling ID *after* `self` (used when
    /// appending during initial document construction: 02, 04, …, FC, FE,
    /// FF 02, FF 04, …).
    pub fn next_sibling(&self) -> RelId {
        let mut b = self.0.clone();
        let last = *b.last().unwrap();
        if last <= 0xFC {
            *b.last_mut().unwrap() = last + 2;
        } else {
            // 0xFE: extend — replace the final even byte with odd 0xFF and a
            // fresh final byte.
            *b.last_mut().unwrap() = 0xFF;
            b.push(FIRST_CHILD);
        }
        RelId(b)
    }

    /// Generate an ID strictly *before* `self` (insert as new first sibling).
    pub fn before(&self) -> RelId {
        let c = self.0[0];
        if c >= 0x04 {
            // An even byte two below the first byte always sorts earlier.
            let v = if c.is_multiple_of(2) { c - 2 } else { c - 1 };
            RelId(vec![v])
        } else if c == 0x02 {
            // Whole ID is [0x02]: descend below it with an odd 0x01 extension.
            RelId(vec![0x01, FIRST_CHILD])
        } else {
            // c is odd 0x01 or 0x03 and the ID continues: keep the byte and
            // recurse into the suffix (always terminates: suffixes shrink).
            let suffix = RelId(self.0[1..].to_vec());
            let mut v = vec![c];
            v.extend_from_slice(&suffix.before().0);
            RelId(v)
        }
    }

    /// Generate an ID strictly *after* `self` (insert as new last sibling;
    /// unlike [`RelId::next_sibling`] this never skips conventional slots, it
    /// just guarantees order).
    pub fn after(&self) -> RelId {
        self.next_sibling()
    }

    /// Generate an ID strictly between `a` and `b` (`a < b` required). The
    /// result is well-formed and never equal to either bound — this is the
    /// paper's "always space for insertion in the middle by extending the
    /// node ID length when necessary".
    pub fn between(a: &RelId, b: &RelId) -> Result<RelId> {
        if a >= b {
            return Err(XmlError::NodeId {
                message: format!("between() requires a < b, got {a:?} >= {b:?}"),
            });
        }
        let (ab, bb) = (&a.0, &b.0);
        // Well-formed sibling IDs are never prefixes of each other, so the
        // first differing byte exists in both.
        let i = ab
            .iter()
            .zip(bb.iter())
            .position(|(x, y)| x != y)
            .expect("well-formed relative IDs are prefix-free");
        let (ca, cb) = (ab[i], bb[i]);
        let prefix = &ab[..i];
        let d = cb - ca;
        if d >= 2 {
            // Room for a byte strictly between: prefer an even byte (ends the
            // ID); otherwise take the odd midpoint and extend.
            let lo = ca + 1;
            let even = if lo % 2 == 0 { lo } else { lo + 1 };
            if even < cb {
                let mut v = prefix.to_vec();
                v.push(even);
                return Ok(RelId(v));
            }
            let mut v = prefix.to_vec();
            v.push(lo); // odd, since even == lo+1 >= cb
            v.push(FIRST_CHILD);
            return Ok(RelId(v));
        }
        // d == 1: no byte fits between ca and cb at position i.
        if cb % 2 == 1 {
            // b continues after i: slide in just below b's continuation.
            let suffix = RelId::from_bytes(&bb[i + 1..])?;
            let below = suffix.before();
            let mut v = prefix.to_vec();
            v.push(cb);
            v.extend_from_slice(&below.0);
            Ok(RelId(v))
        } else {
            // cb is even, so ca = cb-1 is odd and a continues after i: slide
            // in just above a's continuation.
            let suffix = RelId::from_bytes(&ab[i + 1..])?;
            let above = suffix.after();
            let mut v = prefix.to_vec();
            v.push(ca);
            v.extend_from_slice(&above.0);
            Ok(RelId(v))
        }
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelId(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

/// An absolute node ID: the concatenation of relative IDs from the root down
/// to the node. The document root itself is the empty ID (the paper's
/// implicit `00`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(Vec<u8>);

impl NodeId {
    /// The document root's ID.
    pub fn root() -> Self {
        NodeId(Vec::new())
    }

    /// Wrap raw absolute-ID bytes, validating that they parse into a whole
    /// number of well-formed relative IDs.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let id = NodeId(bytes.to_vec());
        id.levels()?; // validates
        Ok(id)
    }

    /// Wrap raw bytes without validation (hot paths reading trusted storage).
    pub fn from_bytes_unchecked(bytes: Vec<u8>) -> Self {
        NodeId(bytes)
    }

    /// The raw bytes. Byte order = document order; byte prefix = ancestry.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// True for the document root.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }

    /// Extend with one more level.
    pub fn child(&self, rel: &RelId) -> NodeId {
        let mut v = Vec::with_capacity(self.0.len() + rel.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&rel.0);
        NodeId(v)
    }

    /// Split into per-level relative IDs ("the relative node ID of each level
    /// can be recovered from the absolute node ID").
    pub fn levels(&self) -> Result<Vec<RelId>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for (i, b) in self.0.iter().enumerate() {
            if b % 2 == 0 {
                out.push(RelId(self.0[start..=i].to_vec()));
                start = i + 1;
            }
        }
        if start != self.0.len() {
            return Err(XmlError::NodeId {
                message: "absolute node ID has a dangling odd-byte tail".into(),
            });
        }
        Ok(out)
    }

    /// Depth below the root (number of levels).
    pub fn depth(&self) -> usize {
        self.0.iter().filter(|b| *b % 2 == 0).count()
    }

    /// The parent's ID (`None` for the root).
    pub fn parent(&self) -> Option<NodeId> {
        if self.0.is_empty() {
            return None;
        }
        // Drop the final relative ID: scan back past the last even byte to
        // the previous even byte (or the start).
        let mut i = self.0.len() - 1; // final byte, even
        while i > 0 && self.0[i - 1] % 2 == 1 {
            i -= 1;
        }
        Some(NodeId(self.0[..i].to_vec()))
    }

    /// Is `self` a (strict or equal) ancestor-or-self of `other`? Pure byte
    /// prefix test — the property §5.2's subtree locks rely on.
    pub fn is_ancestor_or_self(&self, other: &NodeId) -> bool {
        other.0.starts_with(&self.0)
    }

    /// Is `self` a strict ancestor of `other`?
    pub fn is_ancestor(&self, other: &NodeId) -> bool {
        self.0.len() < other.0.len() && other.0.starts_with(&self.0)
    }

    /// The last relative ID (this node's ID within its parent); `None` for root.
    pub fn last_level(&self) -> Option<RelId> {
        self.levels().ok()?.pop()
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "NodeId(root)");
        }
        write!(f, "NodeId(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "")?;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(bytes: &[u8]) -> RelId {
        RelId::from_bytes(bytes).unwrap()
    }

    #[test]
    fn wellformedness() {
        assert!(RelId::from_bytes(&[0x02]).is_ok());
        assert!(RelId::from_bytes(&[0x03, 0x02]).is_ok());
        assert!(RelId::from_bytes(&[0xFF, 0xFF, 0x04]).is_ok());
        assert!(RelId::from_bytes(&[]).is_err());
        assert!(RelId::from_bytes(&[0x03]).is_err()); // ends odd
        assert!(RelId::from_bytes(&[0x02, 0x04]).is_err()); // interior even
    }

    #[test]
    fn next_sibling_sequence() {
        let mut id = RelId::first();
        let mut prev = id.clone();
        for _ in 0..300 {
            id = id.next_sibling();
            assert!(prev < id, "{prev:?} < {id:?}");
            assert!(RelId::from_bytes(id.as_bytes()).is_ok());
            prev = id.clone();
        }
        // After 0xFE the encoding extends.
        let fe = rel(&[0xFE]);
        assert_eq!(fe.next_sibling(), rel(&[0xFF, 0x02]));
    }

    #[test]
    fn before_is_smaller() {
        for start in [&[0x02][..], &[0x04], &[0x03, 0x02], &[0xFE]] {
            let s = rel(start);
            let b = s.before();
            assert!(b < s, "{b:?} < {s:?}");
            assert!(RelId::from_bytes(b.as_bytes()).is_ok());
        }
        // Repeated prepending always works.
        let mut s = RelId::first();
        for _ in 0..50 {
            let b = s.before();
            assert!(b < s);
            s = b;
        }
    }

    #[test]
    fn between_basic_cases() {
        // Paper-style gap: between 02 and 04 there is 03 02.
        let m = RelId::between(&rel(&[0x02]), &rel(&[0x04])).unwrap();
        assert!(rel(&[0x02]) < m && m < rel(&[0x04]), "{m:?}");
        // Wide gap uses a single even byte.
        let m = RelId::between(&rel(&[0x02]), &rel(&[0x08])).unwrap();
        assert_eq!(m, rel(&[0x04]));
        // Adjacent with b continuing.
        let m = RelId::between(&rel(&[0x02]), &rel(&[0x03, 0x02])).unwrap();
        assert!(rel(&[0x02]) < m && m < rel(&[0x03, 0x02]), "{m:?}");
        // Adjacent with a continuing.
        let m = RelId::between(&rel(&[0x03, 0x02]), &rel(&[0x04])).unwrap();
        assert!(rel(&[0x03, 0x02]) < m && m < rel(&[0x04]), "{m:?}");
        // Error on misuse.
        assert!(RelId::between(&rel(&[0x04]), &rel(&[0x02])).is_err());
    }

    #[test]
    fn between_stress_repeated_bisection() {
        // Keep inserting between the same two neighbours: IDs stay ordered
        // and well-formed, growing in length as the paper describes.
        let mut lo = rel(&[0x02]);
        let hi = rel(&[0x04]);
        for _ in 0..64 {
            let mid = RelId::between(&lo, &hi).unwrap();
            assert!(lo < mid && mid < hi, "{lo:?} < {mid:?} < {hi:?}");
            assert!(RelId::from_bytes(mid.as_bytes()).is_ok());
            lo = mid;
        }
        let mut hi2 = rel(&[0x04]);
        let lo2 = rel(&[0x02]);
        for _ in 0..64 {
            let mid = RelId::between(&lo2, &hi2).unwrap();
            assert!(lo2 < mid && mid < hi2);
            hi2 = mid;
        }
    }

    #[test]
    fn absolute_ids_and_levels() {
        let root = NodeId::root();
        assert!(root.is_root());
        assert_eq!(root.depth(), 0);
        let a = root.child(&rel(&[0x02]));
        let b = a.child(&rel(&[0x03, 0x02]));
        let c = b.child(&rel(&[0x04]));
        assert_eq!(c.as_bytes(), &[0x02, 0x03, 0x02, 0x04]);
        assert_eq!(c.depth(), 3);
        let levels = c.levels().unwrap();
        assert_eq!(levels, vec![rel(&[0x02]), rel(&[0x03, 0x02]), rel(&[0x04])]);
        assert_eq!(c.parent().unwrap(), b);
        assert_eq!(b.parent().unwrap(), a);
        assert_eq!(a.parent().unwrap(), root);
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn ancestry_is_prefix_test() {
        let root = NodeId::root();
        let a = root.child(&rel(&[0x02]));
        let b = a.child(&rel(&[0x04]));
        let sib = root.child(&rel(&[0x04]));
        assert!(root.is_ancestor(&a));
        assert!(a.is_ancestor(&b));
        assert!(a.is_ancestor_or_self(&a));
        assert!(!a.is_ancestor(&a));
        assert!(!a.is_ancestor(&sib));
        assert!(!sib.is_ancestor(&b));
    }

    #[test]
    fn document_order_is_byte_order() {
        // A tree laid out in document order must yield ascending IDs:
        // root, a(02), a/x(02 02), a/y(02 04), b(04), b/z(04 02).
        let ids = [
            NodeId::root(),
            NodeId::from_bytes(&[0x02]).unwrap(),
            NodeId::from_bytes(&[0x02, 0x02]).unwrap(),
            NodeId::from_bytes(&[0x02, 0x04]).unwrap(),
            NodeId::from_bytes(&[0x04]).unwrap(),
            NodeId::from_bytes(&[0x04, 0x02]).unwrap(),
        ];
        for w in ids.windows(2) {
            assert!(w[0] < w[1], "{:?} < {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn inserted_sibling_sorts_before_next_siblings_descendants() {
        // Descendants of node 02 (e.g. 02 06 04) must still sort before an
        // ID inserted between 02 and 04 (e.g. 03 02).
        let deep = NodeId::from_bytes(&[0x02, 0x06, 0x04]).unwrap();
        let mid_rel = RelId::between(&rel(&[0x02]), &rel(&[0x04])).unwrap();
        let inserted = NodeId::root().child(&mid_rel);
        assert!(deep < inserted);
        assert!(inserted < NodeId::from_bytes(&[0x04]).unwrap());
    }

    #[test]
    fn dangling_tail_rejected() {
        assert!(NodeId::from_bytes(&[0x02, 0x03]).is_err());
        assert!(NodeId::from_bytes(&[0x03]).is_err());
        assert!(NodeId::from_bytes(&[0x02, 0x04, 0xFF]).is_err());
    }
}
