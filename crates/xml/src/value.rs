//! XDM atomic values and order-preserving index-key encodings.
//!
//! §3.3: XPath value indexes convert node string values to a typed key —
//! "a few simple types supported, such as double, string, and date" — and
//! §4.3: "we use decimal floating-point number based on the new IEEE 754r for
//! numeric value indexing, which provides precise values within its range."
//!
//! [`Decimal`] is that decimal floating point: an exact sign/coefficient/
//! exponent triple with decimal parsing, exact comparison, and an
//! order-preserving byte encoding so B+tree byte order equals numeric order.

use crate::error::{Result, XmlError};
use std::cmp::Ordering;
use std::fmt;

/// Schema type annotation carried on tokens after validation (§3.2: the token
/// stream is "optionally with type annotation if a document is
/// Schema-validated").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum TypeAnn {
    /// No schema information.
    #[default]
    Untyped = 0,
    /// xs:string.
    String = 1,
    /// xs:double.
    Double = 2,
    /// xs:decimal (IEEE 754r-style decimal float).
    Decimal = 3,
    /// xs:boolean.
    Boolean = 4,
    /// xs:date.
    Date = 5,
    /// xs:integer.
    Integer = 6,
}

impl TypeAnn {
    /// Decode from the byte stored in token streams / packed records.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => TypeAnn::Untyped,
            1 => TypeAnn::String,
            2 => TypeAnn::Double,
            3 => TypeAnn::Decimal,
            4 => TypeAnn::Boolean,
            5 => TypeAnn::Date,
            6 => TypeAnn::Integer,
            other => {
                return Err(XmlError::stream(format!(
                    "bad type annotation byte {other}"
                )))
            }
        })
    }
}

/// The key types an XPath value index can be declared with (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum KeyType {
    /// Lexicographic string keys (SQL VARCHAR equivalent).
    String = 1,
    /// IEEE-754 double keys.
    Double = 2,
    /// Exact decimal keys (the paper's IEEE 754r choice).
    Decimal = 3,
    /// Calendar date keys.
    Date = 4,
}

impl KeyType {
    /// Decode from a stored byte.
    pub fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            1 => KeyType::String,
            2 => KeyType::Double,
            3 => KeyType::Decimal,
            4 => KeyType::Date,
            other => return Err(XmlError::stream(format!("bad key type byte {other}"))),
        })
    }
}

/// An exact decimal floating-point number: `sign * coeff * 10^exp` with
/// `coeff >= 0` normalized to have no trailing zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decimal {
    neg: bool,
    coeff: u128,
    exp: i32,
}

impl Decimal {
    /// Zero.
    pub const ZERO: Decimal = Decimal {
        neg: false,
        coeff: 0,
        exp: 0,
    };

    /// Build from an integer.
    pub fn from_i64(v: i64) -> Self {
        let neg = v < 0;
        Decimal {
            neg,
            coeff: v.unsigned_abs() as u128,
            exp: 0,
        }
        .normalized()
    }

    /// Parse decimal syntax: optional sign, digits, optional fraction,
    /// optional exponent (`-12.50e3`).
    pub fn parse(s: &str) -> Result<Self> {
        let t = s.trim();
        let bytes = t.as_bytes();
        if bytes.is_empty() {
            return Err(XmlError::Cast {
                value: s.to_string(),
                target: "decimal",
            });
        }
        let mut i = 0usize;
        let neg = match bytes[0] {
            b'-' => {
                i = 1;
                true
            }
            b'+' => {
                i = 1;
                false
            }
            _ => false,
        };
        let mut coeff: u128 = 0;
        let mut exp: i32 = 0;
        let mut digits = 0u32;
        let mut seen_dot = false;
        let mut any = false;
        while i < bytes.len() {
            match bytes[i] {
                b'0'..=b'9' => {
                    any = true;
                    digits += 1;
                    if digits > 34 {
                        // 754r decimal128 carries 34 significant digits; drop
                        // further precision (round toward zero).
                        if !seen_dot {
                            exp += 1;
                        }
                    } else {
                        coeff = coeff * 10 + u128::from(bytes[i] - b'0');
                        if seen_dot {
                            exp -= 1;
                        }
                    }
                    i += 1;
                }
                b'.' if !seen_dot => {
                    seen_dot = true;
                    i += 1;
                }
                b'e' | b'E' => {
                    let etail = &t[i + 1..];
                    let e: i32 = etail.parse().map_err(|_| XmlError::Cast {
                        value: s.to_string(),
                        target: "decimal",
                    })?;
                    exp += e;
                    i = bytes.len();
                }
                _ => {
                    return Err(XmlError::Cast {
                        value: s.to_string(),
                        target: "decimal",
                    })
                }
            }
        }
        if !any {
            return Err(XmlError::Cast {
                value: s.to_string(),
                target: "decimal",
            });
        }
        Ok(Decimal { neg, coeff, exp }.normalized())
    }

    fn normalized(mut self) -> Self {
        if self.coeff == 0 {
            return Decimal::ZERO;
        }
        while self.coeff.is_multiple_of(10) {
            self.coeff /= 10;
            self.exp += 1;
        }
        self
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.coeff == 0
    }

    /// Approximate as binary double (lossy, used only for display fallbacks).
    pub fn to_f64(&self) -> f64 {
        let m = self.coeff as f64;
        let v = m * 10f64.powi(self.exp);
        if self.neg {
            -v
        } else {
            v
        }
    }

    fn digit_count(mut c: u128) -> i32 {
        let mut n = 0;
        while c > 0 {
            c /= 10;
            n += 1;
        }
        n
    }

    /// The decimal "adjusted exponent": position of the leading digit, i.e.
    /// the E in `0.d1d2... * 10^E`.
    fn magnitude(&self) -> i32 {
        Self::digit_count(self.coeff) + self.exp
    }

    fn digits(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut c = self.coeff;
        while c > 0 {
            out.push((c % 10) as u8);
            c /= 10;
        }
        out.reverse();
        out
    }

    /// Exact numeric comparison.
    pub fn compare(&self, other: &Decimal) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if other.neg {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, true) => {
                return if self.neg {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            _ => {}
        }
        match (self.neg, other.neg) {
            (false, true) => return Ordering::Greater,
            (true, false) => return Ordering::Less,
            _ => {}
        }
        let mag = self.magnitude().cmp(&other.magnitude());
        let by_abs = if mag != Ordering::Equal {
            mag
        } else {
            // Same magnitude: compare digit strings.
            let (da, db) = (self.digits(), other.digits());
            let n = da.len().max(db.len());
            let mut ord = Ordering::Equal;
            for i in 0..n {
                let x = da.get(i).copied().unwrap_or(0);
                let y = db.get(i).copied().unwrap_or(0);
                match x.cmp(&y) {
                    Ordering::Equal => continue,
                    o => {
                        ord = o;
                        break;
                    }
                }
            }
            ord
        };
        if self.neg {
            by_abs.reverse()
        } else {
            by_abs
        }
    }

    /// Order-preserving byte encoding: byte-lexicographic comparison of
    /// encodings equals [`Decimal::compare`]. Layout:
    /// `[class][magnitude as offset-u32 BE][digit bytes][terminator]`, with
    /// every byte after the class inverted for negatives.
    pub fn sort_key(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0x80];
        }
        let mut tail = Vec::with_capacity(40);
        let mag = (self.magnitude() as i64 + 0x8000_0000) as u32;
        tail.extend_from_slice(&mag.to_be_bytes());
        for d in self.digits() {
            tail.push(d + 1); // 1..=10, keeps 0x00 free as terminator
        }
        tail.push(0x00);
        let mut out = Vec::with_capacity(tail.len() + 1);
        if self.neg {
            out.push(0x40);
            out.extend(tail.iter().map(|b| !b));
        } else {
            out.push(0xC0);
            out.extend_from_slice(&tail);
        }
        out
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        if self.neg {
            write!(f, "-")?;
        }
        let digits = self.digits();
        let point = digits.len() as i32 + self.exp; // digits before the point
        if self.exp >= 0 {
            for d in &digits {
                write!(f, "{d}")?;
            }
            for _ in 0..self.exp {
                write!(f, "0")?;
            }
        } else if point > 0 {
            for (i, d) in digits.iter().enumerate() {
                if i as i32 == point {
                    write!(f, ".")?;
                }
                write!(f, "{d}")?;
            }
        } else {
            write!(f, "0.")?;
            for _ in 0..(-point) {
                write!(f, "0")?;
            }
            for d in &digits {
                write!(f, "{d}")?;
            }
        }
        Ok(())
    }
}

/// A calendar date (xs:date without timezone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
}

impl Date {
    /// Parse `YYYY-MM-DD` (optionally negative years).
    pub fn parse(s: &str) -> Result<Self> {
        let t = s.trim();
        let err = || XmlError::Cast {
            value: s.to_string(),
            target: "date",
        };
        let (ys, rest) = if let Some(stripped) = t.strip_prefix('-') {
            let i = stripped.find('-').ok_or_else(err)?;
            (&t[..i + 1], &stripped[i + 1..])
        } else {
            let i = t.find('-').ok_or_else(err)?;
            (&t[..i], &t[i + 1..])
        };
        let mut parts = rest.split('-');
        let ms = parts.next().ok_or_else(err)?;
        let ds = parts.next().ok_or_else(err)?;
        if parts.next().is_some() {
            return Err(err());
        }
        let year: i32 = ys.parse().map_err(|_| err())?;
        let month: u8 = ms.parse().map_err(|_| err())?;
        let day: u8 = ds.parse().map_err(|_| err())?;
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return Err(err());
        }
        Ok(Date { year, month, day })
    }

    /// Order-preserving byte encoding.
    pub fn sort_key(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6);
        out.extend_from_slice(&((self.year as i64 + 0x8000_0000) as u32).to_be_bytes());
        out.push(self.month);
        out.push(self.day);
        out
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// Order-preserving byte encoding of an IEEE-754 double (total order; NaN
/// sorts above everything).
pub fn double_sort_key(v: f64) -> [u8; 8] {
    let bits = v.to_bits();
    let ordered = if bits & 0x8000_0000_0000_0000 != 0 {
        !bits
    } else {
        bits ^ 0x8000_0000_0000_0000
    };
    ordered.to_be_bytes()
}

/// Convert a node's string value into index-key bytes for the given key type.
/// Returns `None` when the value does not cast (the node simply produces no
/// index entry, as extended indexes allow zero entries per record, §3.3).
pub fn encode_key(ty: KeyType, value: &str) -> Option<Vec<u8>> {
    match ty {
        KeyType::String => Some(value.as_bytes().to_vec()),
        KeyType::Double => {
            let v: f64 = value.trim().parse().ok()?;
            Some(double_sort_key(v).to_vec())
        }
        KeyType::Decimal => Some(Decimal::parse(value).ok()?.sort_key()),
        KeyType::Date => Some(Date::parse(value).ok()?.sort_key()),
    }
}

/// An atomic value as produced by XPath evaluation and constructor arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// A string (also the representation of untyped atomics).
    String(String),
    /// A binary double.
    Double(f64),
    /// An exact decimal.
    Decimal(Decimal),
    /// A boolean.
    Boolean(bool),
    /// A date.
    Date(Date),
    /// A 64-bit integer.
    Integer(i64),
}

impl AtomicValue {
    /// The string value (XPath `string()`).
    pub fn string_value(&self) -> String {
        match self {
            AtomicValue::String(s) => s.clone(),
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::Decimal(d) => d.to_string(),
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Date(d) => d.to_string(),
            AtomicValue::Integer(i) => i.to_string(),
        }
    }

    /// Numeric view (XPath `number()`): strings parse, booleans map to 0/1.
    pub fn to_double(&self) -> Option<f64> {
        match self {
            AtomicValue::String(s) => s.trim().parse().ok(),
            AtomicValue::Double(d) => Some(*d),
            AtomicValue::Decimal(d) => Some(d.to_f64()),
            AtomicValue::Boolean(b) => Some(if *b { 1.0 } else { 0.0 }),
            AtomicValue::Date(_) => None,
            AtomicValue::Integer(i) => Some(*i as f64),
        }
    }

    /// Effective boolean value.
    pub fn to_boolean(&self) -> bool {
        match self {
            AtomicValue::String(s) => !s.is_empty(),
            AtomicValue::Double(d) => *d != 0.0 && !d.is_nan(),
            AtomicValue::Decimal(d) => !d.is_zero(),
            AtomicValue::Boolean(b) => *b,
            AtomicValue::Date(_) => true,
            AtomicValue::Integer(i) => *i != 0,
        }
    }

    /// General comparison with numeric promotion: if either side is numeric,
    /// compare numerically; dates compare as dates; otherwise as strings.
    pub fn compare(&self, other: &AtomicValue) -> Option<Ordering> {
        use AtomicValue::*;
        match (self, other) {
            (Decimal(a), Decimal(b)) => Some(a.compare(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (String(a), String(b)) => Some(a.cmp(b)),
            (Integer(a), Integer(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.to_double()?;
                let b = other.to_double()?;
                a.partial_cmp(&b)
            }
        }
    }
}

/// Format a double the XPath way: integers without a fraction part.
pub fn format_double(d: f64) -> String {
    if d.fract() == 0.0 && d.abs() < 1e15 {
        format!("{}", d as i64)
    } else {
        format!("{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_and_display() {
        for (s, disp) in [
            ("0", "0"),
            ("000", "0"),
            ("42", "42"),
            ("-42", "-42"),
            ("3.14", "3.14"),
            ("-0.5", "-0.5"),
            ("100", "100"),
            ("0.001", "0.001"),
            ("12.50", "12.5"),
            ("1e3", "1000"),
            ("2.5e-2", "0.025"),
            ("-1.5E2", "-150"),
        ] {
            assert_eq!(Decimal::parse(s).unwrap().to_string(), disp, "input {s}");
        }
        assert!(Decimal::parse("abc").is_err());
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse("1.2.3").is_err());
    }

    #[test]
    fn decimal_exactness() {
        // 0.1 + base cases that are inexact in binary are exact here.
        let a = Decimal::parse("0.1").unwrap();
        let b = Decimal::parse("0.10000").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.compare(&b), Ordering::Equal);
    }

    #[test]
    fn decimal_compare() {
        let cases = [
            ("1", "2", Ordering::Less),
            ("2", "1", Ordering::Greater),
            ("-1", "1", Ordering::Less),
            ("-2", "-1", Ordering::Less),
            ("0", "0.0", Ordering::Equal),
            ("0.5", "0.25", Ordering::Greater),
            ("10", "9.999", Ordering::Greater),
            ("-10", "-9.999", Ordering::Less),
            ("123.456", "123.456", Ordering::Equal),
            ("1e10", "9e9", Ordering::Greater),
            ("0.001", "0.0009999", Ordering::Greater),
            ("-0", "0", Ordering::Equal),
        ];
        for (a, b, ord) in cases {
            let (da, db) = (Decimal::parse(a).unwrap(), Decimal::parse(b).unwrap());
            assert_eq!(da.compare(&db), ord, "{a} vs {b}");
        }
    }

    #[test]
    fn decimal_sort_key_preserves_order() {
        let values = [
            "-1e10", "-123.5", "-123.456", "-1", "-0.5", "-0.001", "0", "0.0005", "0.001", "0.25",
            "0.5", "1", "1.5", "2", "9.999", "10", "123.456", "123.5", "1e10",
        ];
        let decs: Vec<Decimal> = values.iter().map(|s| Decimal::parse(s).unwrap()).collect();
        for i in 0..decs.len() {
            for j in 0..decs.len() {
                let byte_ord = decs[i].sort_key().cmp(&decs[j].sort_key());
                assert_eq!(
                    byte_ord,
                    decs[i].compare(&decs[j]),
                    "{} vs {}",
                    values[i],
                    values[j]
                );
            }
        }
    }

    #[test]
    fn date_parse_and_order() {
        let a = Date::parse("2005-06-16").unwrap();
        let b = Date::parse("2005-06-17").unwrap();
        let c = Date::parse("1999-12-31").unwrap();
        assert!(a < b);
        assert!(c < a);
        assert!(a.sort_key() < b.sort_key());
        assert!(c.sort_key() < a.sort_key());
        assert_eq!(a.to_string(), "2005-06-16");
        assert!(Date::parse("2005-13-01").is_err());
        assert!(Date::parse("not-a-date").is_err());
    }

    #[test]
    fn double_key_order() {
        let values = [
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -0.0,
            0.0,
            1e-300,
            1.5,
            1e300,
            f64::INFINITY,
        ];
        for w in values.windows(2) {
            assert!(
                double_sort_key(w[0]) <= double_sort_key(w[1]),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn encode_key_handles_bad_casts() {
        assert!(encode_key(KeyType::Double, "199.99").is_some());
        assert!(encode_key(KeyType::Double, "cheap").is_none());
        assert!(encode_key(KeyType::Date, "2004-02-29").is_some());
        assert!(encode_key(KeyType::Date, "soon").is_none());
        assert!(encode_key(KeyType::String, "anything").is_some());
        assert!(encode_key(KeyType::Decimal, "1.25").is_some());
    }

    #[test]
    fn atomic_comparison_promotes() {
        let s = AtomicValue::String("300".into());
        let d = AtomicValue::Double(250.0);
        assert_eq!(s.compare(&d), Some(Ordering::Greater));
        assert_eq!(
            AtomicValue::String("XML".into()).compare(&AtomicValue::String("XML".into())),
            Some(Ordering::Equal)
        );
        assert_eq!(AtomicValue::String("abc".into()).compare(&d), None);
    }

    #[test]
    fn format_double_xpath_style() {
        assert_eq!(format_double(300.0), "300");
        assert_eq!(format_double(0.5), "0.5");
        assert_eq!(format_double(-2.0), "-2");
    }
}
