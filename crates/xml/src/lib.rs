//! # rx-xml — the XML data model layer of System R/X
//!
//! Everything the paper's "XML services" column (Fig. 1) needs below query
//! processing:
//!
//! * [`name`] — the database-wide integer name dictionary (§3.1);
//! * [`nodeid`] — Dewey prefix-encoded node IDs with the even/odd byte
//!   stability scheme (§3.1);
//! * [`event`] — the virtual SAX event vocabulary shared by every runtime
//!   component (§4.4);
//! * [`token`] — the buffered binary token stream, the parsing/validation
//!   interface (§3.2);
//! * [`parser`] — the custom non-validating parser;
//! * [`schema`] — XML-Schema-subset compiler to a binary table format and the
//!   table-driven validation VM (§3.2, Fig. 4);
//! * [`serialize`] — the shared serializer;
//! * [`value`] — XDM atomic values, IEEE-754r-style decimals, and
//!   order-preserving index-key encodings (§3.3, §4.3);
//! * [`dom`] / [`sax`] — the DOM and per-event-callback SAX **baselines** the
//!   paper compares against.

#![warn(missing_docs)]

pub mod dom;
pub mod error;
pub mod event;
pub mod name;
pub mod nodeid;
pub mod parser;
pub mod sax;
pub mod schema;
pub mod serialize;
pub mod token;
pub mod value;

pub use error::{Result, XmlError};
pub use event::{Event, EventSink};
pub use name::{NameDict, QName, QNameId, StrId};
pub use nodeid::{NodeId, RelId};
pub use parser::{ParseOptions, Parser};
pub use serialize::Serializer;
pub use token::{TokenStream, TokenWriter};
pub use value::{AtomicValue, Date, Decimal, KeyType, TypeAnn};
