//! SAX-style parsing interface — the per-event-callback **baseline**.
//!
//! §3.2: "Application domain interfaces for XML, such as SAX or DOM
//! interface, suffer from significant overhead of excessive procedure calls
//! for event handling or in-memory construction of intermediate data
//! structures."
//!
//! This module reproduces that overhead faithfully for the E4 experiment: a
//! classic [`SaxHandler`] receives one dynamically-dispatched callback per
//! event, with event data *materialized per call* (owned qname strings and a
//! freshly built attribute vector for every start tag), exactly as the
//! DOM/SAX application interfaces the paper measured against behave. The
//! engine's own path (parser → buffered token stream) avoids all of it.

use crate::error::Result;
use crate::event::{Event, EventSink};
use crate::name::NameDict;
use crate::parser::Parser;

/// A materialized SAX attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaxAttribute {
    /// Namespace URI ("" when none).
    pub uri: String,
    /// Local name.
    pub local: String,
    /// Lexical qualified name (prefix:local).
    pub qname: String,
    /// Attribute value.
    pub value: String,
}

/// The classic callback interface. Every method is invoked through dynamic
/// dispatch once per event.
#[allow(unused_variables)]
pub trait SaxHandler {
    /// Document start.
    fn start_document(&mut self) -> Result<()> {
        Ok(())
    }
    /// Document end.
    fn end_document(&mut self) -> Result<()> {
        Ok(())
    }
    /// Element start with materialized names and attributes.
    fn start_element(
        &mut self,
        uri: &str,
        local: &str,
        qname: &str,
        attrs: &[SaxAttribute],
    ) -> Result<()> {
        Ok(())
    }
    /// Element end.
    fn end_element(&mut self, uri: &str, local: &str, qname: &str) -> Result<()> {
        Ok(())
    }
    /// Character data.
    fn characters(&mut self, text: &str) -> Result<()> {
        Ok(())
    }
    /// Comment.
    fn comment(&mut self, text: &str) -> Result<()> {
        Ok(())
    }
    /// Processing instruction.
    fn processing_instruction(&mut self, target: &str, data: &str) -> Result<()> {
        Ok(())
    }
}

struct SaxAdapter<'d, 'h> {
    dict: &'d NameDict,
    handler: &'h mut dyn SaxHandler,
    /// Pending element: SAX delivers attributes *with* startElement, so the
    /// adapter buffers them until the first non-attribute event.
    pending: Option<(String, String, String)>,
    pending_attrs: Vec<SaxAttribute>,
    open: Vec<(String, String, String)>,
}

impl SaxAdapter<'_, '_> {
    fn flush_pending(&mut self) -> Result<()> {
        if let Some((uri, local, qname)) = self.pending.take() {
            self.handler
                .start_element(&uri, &local, &qname, &self.pending_attrs)?;
            self.open.push((uri, local, qname));
            self.pending_attrs.clear();
        }
        Ok(())
    }

    fn materialize(&self, name: crate::name::QNameId) -> (String, String, String) {
        // Per-event string materialization: this allocation cost is the point.
        let q = self.dict.qname(name);
        let uri = self.dict.str(q.uri).to_string();
        let local = self.dict.str(q.local).to_string();
        let prefix = self.dict.str(q.prefix);
        let qname = if prefix.is_empty() {
            local.clone()
        } else {
            format!("{prefix}:{local}")
        };
        (uri, local, qname)
    }
}

impl EventSink for SaxAdapter<'_, '_> {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartDocument => self.handler.start_document(),
            Event::EndDocument => {
                self.flush_pending()?;
                self.handler.end_document()
            }
            Event::StartElement { name } => {
                self.flush_pending()?;
                self.pending = Some(self.materialize(name));
                Ok(())
            }
            Event::NamespaceDecl { .. } => Ok(()),
            Event::Attribute { name, value, .. } => {
                let (uri, local, qname) = self.materialize(name);
                self.pending_attrs.push(SaxAttribute {
                    uri,
                    local,
                    qname,
                    value: value.to_string(),
                });
                Ok(())
            }
            Event::Text { value, .. } => {
                self.flush_pending()?;
                self.handler.characters(value)
            }
            Event::Comment { value } => {
                self.flush_pending()?;
                self.handler.comment(value)
            }
            Event::Pi { target, data } => {
                self.flush_pending()?;
                let (_, local, _) = self.materialize(target);
                self.handler.processing_instruction(&local, data)
            }
            Event::EndElement => {
                self.flush_pending()?;
                let (uri, local, qname) = self.open.pop().unwrap_or_default();
                self.handler.end_element(&uri, &local, &qname)
            }
        }
    }
}

/// Parse `input`, delivering classic SAX callbacks to `handler`.
pub fn parse_sax(input: &str, dict: &NameDict, handler: &mut dyn SaxHandler) -> Result<()> {
    let mut adapter = SaxAdapter {
        dict,
        handler,
        pending: None,
        pending_attrs: Vec::new(),
        open: Vec::new(),
    };
    Parser::new(dict).parse(input, &mut adapter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Trace {
        log: Vec<String>,
    }

    impl SaxHandler for Trace {
        fn start_document(&mut self) -> Result<()> {
            self.log.push("startdoc".into());
            Ok(())
        }
        fn end_document(&mut self) -> Result<()> {
            self.log.push("enddoc".into());
            Ok(())
        }
        fn start_element(
            &mut self,
            uri: &str,
            _local: &str,
            qname: &str,
            attrs: &[SaxAttribute],
        ) -> Result<()> {
            let attr_str: Vec<String> = attrs
                .iter()
                .map(|a| format!("{}={}", a.qname, a.value))
                .collect();
            self.log
                .push(format!("start {uri}|{qname}[{}]", attr_str.join(",")));
            Ok(())
        }
        fn end_element(&mut self, _uri: &str, _local: &str, qname: &str) -> Result<()> {
            self.log.push(format!("end {qname}"));
            Ok(())
        }
        fn characters(&mut self, text: &str) -> Result<()> {
            self.log.push(format!("chars {text}"));
            Ok(())
        }
    }

    #[test]
    fn callbacks_deliver_materialized_events() {
        let dict = NameDict::new();
        let mut h = Trace::default();
        parse_sax(
            r#"<c:a xmlns:c="urn:c" id="1"><b>hi</b></c:a>"#,
            &dict,
            &mut h,
        )
        .unwrap();
        assert_eq!(
            h.log,
            vec![
                "startdoc",
                "start urn:c|c:a[id=1]",
                "start |b[]",
                "chars hi",
                "end b",
                "end c:a",
                "enddoc"
            ]
        );
    }

    #[test]
    fn empty_element_callbacks_balance() {
        let dict = NameDict::new();
        let mut h = Trace::default();
        parse_sax("<a><b/><b/></a>", &dict, &mut h).unwrap();
        let starts = h.log.iter().filter(|l| l.starts_with("start ")).count();
        let ends = h.log.iter().filter(|l| l.starts_with("end ")).count();
        assert_eq!(starts, 3);
        assert_eq!(ends, 3);
    }
}
