//! The non-validating XML parser (§3.2, Fig. 4).
//!
//! "Both validating and non-validating parsers are custom-made for
//! high-performance." This parser scans the document bytes directly and emits
//! virtual SAX events (usually into a [`crate::token::TokenWriter`], forming
//! the buffered token stream). Namespace prefixes are resolved against the
//! in-scope declarations, attribute order is normalized (the stream has
//! "namespace and attribute order adjusted"), entities and CDATA are decoded,
//! and well-formedness is enforced (tag balance, single root element,
//! duplicate attributes, undeclared prefixes).

use crate::error::{Result, XmlError};
use crate::event::{Event, EventSink};
use crate::name::NameDict;
use crate::token::{TokenStream, TokenWriter};
use crate::value::TypeAnn;

/// The `xml` prefix's fixed namespace.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";

/// Parser configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParseOptions {
    /// Keep whitespace-only text nodes between elements. Data-centric
    /// documents (the paper's domain) usually drop them.
    pub preserve_whitespace: bool,
}

/// A streaming, non-validating XML parser bound to a name dictionary.
///
/// ```
/// use rx_xml::{NameDict, Parser};
/// use rx_xml::serialize::serialize_stream;
///
/// let dict = NameDict::new();
/// let stream = Parser::new(&dict)
///     .parse_to_tokens(r#"<a x="1"><b>hi &amp; bye</b></a>"#)
///     .unwrap();
/// assert_eq!(
///     serialize_stream(&stream, &dict).unwrap(),
///     r#"<a x="1"><b>hi &amp; bye</b></a>"#
/// );
/// ```
pub struct Parser<'d> {
    dict: &'d NameDict,
    opts: ParseOptions,
}

struct NsBinding {
    prefix: String,
    uri: String,
}

struct ParseState<'i> {
    input: &'i [u8],
    text: &'i str,
    pos: usize,
    ns: Vec<NsBinding>,
    /// How many bindings each open element pushed.
    ns_marks: Vec<usize>,
    /// Raw open-tag names for end-tag matching.
    open: Vec<&'i str>,
    seen_root: bool,
    scratch: String,
}

impl<'d> Parser<'d> {
    /// Create a parser interning names into `dict`.
    pub fn new(dict: &'d NameDict) -> Self {
        Parser {
            dict,
            opts: ParseOptions::default(),
        }
    }

    /// Create with explicit options.
    pub fn with_options(dict: &'d NameDict, opts: ParseOptions) -> Self {
        Parser { dict, opts }
    }

    /// Parse `input`, pushing events into `sink`.
    pub fn parse(&self, input: &str, sink: &mut dyn EventSink) -> Result<()> {
        let mut st = ParseState {
            input: input.as_bytes(),
            text: input,
            pos: 0,
            ns: vec![NsBinding {
                prefix: "xml".to_string(),
                uri: XML_NS.to_string(),
            }],
            ns_marks: Vec::new(),
            open: Vec::new(),
            seen_root: false,
            scratch: String::new(),
        };
        sink.event(Event::StartDocument)?;
        self.run(&mut st, sink)?;
        if !st.open.is_empty() {
            return Err(XmlError::parse(
                st.pos,
                format!("unclosed element <{}>", st.open.last().unwrap()),
            ));
        }
        if !st.seen_root {
            return Err(XmlError::parse(st.pos, "document has no root element"));
        }
        sink.event(Event::EndDocument)
    }

    /// Parse straight into a buffered token stream.
    pub fn parse_to_tokens(&self, input: &str) -> Result<TokenStream> {
        let mut w = TokenWriter::with_capacity(input.len());
        self.parse(input, &mut w)?;
        Ok(w.finish())
    }

    fn run(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        while st.pos < st.input.len() {
            if st.input[st.pos] == b'<' {
                match st.input.get(st.pos + 1) {
                    Some(b'?') => self.parse_pi(st, sink)?,
                    Some(b'!') => self.parse_bang(st, sink)?,
                    Some(b'/') => self.parse_end_tag(st, sink)?,
                    Some(_) => self.parse_start_tag(st, sink)?,
                    None => return Err(XmlError::parse(st.pos, "dangling '<' at end of input")),
                }
            } else {
                self.parse_text(st, sink)?;
            }
        }
        Ok(())
    }

    fn parse_text(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        let start = st.pos;
        while st.pos < st.input.len() && st.input[st.pos] != b'<' {
            st.pos += 1;
        }
        let raw = &st.text[start..st.pos];
        if st.open.is_empty() {
            // Character data outside the root must be whitespace.
            if !raw.trim().is_empty() {
                return Err(XmlError::parse(
                    start,
                    "character data outside root element",
                ));
            }
            return Ok(());
        }
        if !self.opts.preserve_whitespace && raw.trim().is_empty() {
            return Ok(());
        }
        if raw.contains('&') {
            st.scratch.clear();
            decode_entities(raw, start, &mut st.scratch)?;
            sink.event(Event::Text {
                value: &st.scratch,
                ann: TypeAnn::Untyped,
            })
        } else {
            if raw.contains("]]>") {
                return Err(XmlError::parse(
                    start,
                    "']]>' not allowed in character data",
                ));
            }
            sink.event(Event::Text {
                value: raw,
                ann: TypeAnn::Untyped,
            })
        }
    }

    fn parse_pi(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        // st.pos at '<?'.
        let start = st.pos;
        st.pos += 2;
        let target = scan_name(st)?;

        if target.eq_ignore_ascii_case("xml") {
            // XML declaration: skip to '?>'.
            let end = find(st, b"?>")
                .ok_or_else(|| XmlError::parse(start, "unterminated XML declaration"))?;
            st.pos = end + 2;
            return Ok(());
        }
        skip_ws(st);
        let body_start = st.pos;
        let end = find(st, b"?>")
            .ok_or_else(|| XmlError::parse(start, "unterminated processing instruction"))?;
        let data = &st.text[body_start..end];
        st.pos = end + 2;
        let target_id = self.dict.intern("", "", target);
        sink.event(Event::Pi {
            target: target_id,
            data,
        })
    }

    fn parse_bang(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        let start = st.pos;
        if st.input[st.pos..].starts_with(b"<!--") {
            st.pos += 4;
            let end =
                find(st, b"-->").ok_or_else(|| XmlError::parse(start, "unterminated comment"))?;
            let body = &st.text[st.pos..end];
            if body.contains("--") {
                return Err(XmlError::parse(start, "'--' not allowed inside comment"));
            }
            st.pos = end + 3;
            return sink.event(Event::Comment { value: body });
        }
        if st.input[st.pos..].starts_with(b"<![CDATA[") {
            if st.open.is_empty() {
                return Err(XmlError::parse(start, "CDATA outside root element"));
            }
            st.pos += 9;
            let end = find(st, b"]]>")
                .ok_or_else(|| XmlError::parse(start, "unterminated CDATA section"))?;
            let body = &st.text[st.pos..end];
            st.pos = end + 3;
            return sink.event(Event::Text {
                value: body,
                ann: TypeAnn::Untyped,
            });
        }
        if st.input[st.pos..].starts_with(b"<!DOCTYPE") {
            // Skip the doctype (internal subsets: bracket matching).
            st.pos += 9;
            let mut depth = 0i32;
            while st.pos < st.input.len() {
                match st.input[st.pos] {
                    b'[' => depth += 1,
                    b']' => depth -= 1,
                    b'>' if depth <= 0 => {
                        st.pos += 1;
                        return Ok(());
                    }
                    _ => {}
                }
                st.pos += 1;
            }
            return Err(XmlError::parse(start, "unterminated DOCTYPE"));
        }
        Err(XmlError::parse(start, "unrecognized markup after '<!'"))
    }

    fn parse_end_tag(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        let start = st.pos;
        st.pos += 2; // '</'
        let name = scan_name(st)?;
        skip_ws(st);
        if st.input.get(st.pos) != Some(&b'>') {
            return Err(XmlError::parse(st.pos, "expected '>' in end tag"));
        }
        st.pos += 1;
        match st.open.pop() {
            Some(open) if open == name => {}
            Some(open) => {
                return Err(XmlError::parse(
                    start,
                    format!("end tag </{name}> does not match open <{open}>"),
                ))
            }
            None => {
                return Err(XmlError::parse(
                    start,
                    format!("unexpected end tag </{name}>"),
                ))
            }
        }
        // Pop this element's namespace bindings.
        let mark = st.ns_marks.pop().expect("marks track opens");
        st.ns.truncate(mark);
        sink.event(Event::EndElement)
    }

    fn parse_start_tag(&self, st: &mut ParseState<'_>, sink: &mut dyn EventSink) -> Result<()> {
        let start = st.pos;
        st.pos += 1; // '<'
        let name = scan_name(st)?;
        if st.open.is_empty() && st.seen_root {
            return Err(XmlError::parse(start, "multiple root elements"));
        }

        // Collect raw attributes first; namespace declarations must be in
        // scope before any name resolution.
        let mut raw_attrs: Vec<(&str, String)> = Vec::new();
        let mut self_closing = false;
        loop {
            skip_ws(st);
            match st.input.get(st.pos) {
                Some(b'>') => {
                    st.pos += 1;
                    break;
                }
                Some(b'/') => {
                    if st.input.get(st.pos + 1) != Some(&b'>') {
                        return Err(XmlError::parse(st.pos, "expected '/>'"));
                    }
                    st.pos += 2;
                    self_closing = true;
                    break;
                }
                Some(_) => {
                    let aname = scan_name(st)?;
                    skip_ws(st);
                    if st.input.get(st.pos) != Some(&b'=') {
                        return Err(XmlError::parse(st.pos, "expected '=' after attribute name"));
                    }
                    st.pos += 1;
                    skip_ws(st);
                    let value = scan_attr_value(st)?;
                    if raw_attrs.iter().any(|(n, _)| *n == aname) {
                        return Err(XmlError::parse(
                            st.pos,
                            format!("duplicate attribute {aname}"),
                        ));
                    }
                    raw_attrs.push((aname, value));
                }
                None => return Err(XmlError::parse(start, "unterminated start tag")),
            }
        }

        // Push namespace declarations for this element.
        let mark = st.ns.len();
        let mut ns_events: Vec<(String, String)> = Vec::new();
        for (aname, value) in &raw_attrs {
            if *aname == "xmlns" {
                st.ns.push(NsBinding {
                    prefix: String::new(),
                    uri: value.clone(),
                });
                ns_events.push((String::new(), value.clone()));
            } else if let Some(p) = aname.strip_prefix("xmlns:") {
                st.ns.push(NsBinding {
                    prefix: p.to_string(),
                    uri: value.clone(),
                });
                ns_events.push((p.to_string(), value.clone()));
            }
        }

        // Resolve the element name.
        let (prefix, local) = split_qname(name);
        let uri = resolve(&st.ns, prefix, true)
            .ok_or_else(|| XmlError::parse(start, format!("undeclared prefix '{prefix}'")))?;
        let elem_name = self.dict.intern(&uri, prefix, local);

        sink.event(Event::StartElement { name: elem_name })?;
        // Namespace order adjusted: sorted by prefix.
        ns_events.sort();
        for (p, u) in &ns_events {
            sink.event(Event::NamespaceDecl {
                prefix: self.dict.intern_str(p),
                uri: self.dict.intern_str(u),
            })?;
        }

        // Resolve, order-normalize and emit the ordinary attributes.
        let mut attrs: Vec<(crate::name::QNameId, String)> = Vec::with_capacity(raw_attrs.len());
        for (aname, value) in raw_attrs {
            if aname == "xmlns" || aname.starts_with("xmlns:") {
                continue;
            }
            let (aprefix, alocal) = split_qname(aname);
            // Attributes without a prefix are in no namespace.
            let auri = if aprefix.is_empty() {
                String::new()
            } else {
                resolve(&st.ns, aprefix, false).ok_or_else(|| {
                    XmlError::parse(start, format!("undeclared prefix '{aprefix}'"))
                })?
            };
            attrs.push((self.dict.intern(&auri, aprefix, alocal), value));
        }
        // Attribute order adjusted: canonical (uri, local) order.
        attrs.sort_by(|(a, _), (b, _)| {
            let (qa, qb) = (self.dict.qname(*a), self.dict.qname(*b));
            (qa.uri, qa.local).cmp(&(qb.uri, qb.local))
        });
        for (aname, value) in &attrs {
            sink.event(Event::Attribute {
                name: *aname,
                value,
                ann: TypeAnn::Untyped,
            })?;
        }

        if self_closing {
            st.ns.truncate(mark);
            if st.open.is_empty() {
                st.seen_root = true;
            }
            sink.event(Event::EndElement)?;
        } else {
            st.open.push(name);
            st.ns_marks.push(mark);
            if st.open.len() == 1 {
                st.seen_root = true;
            }
        }
        Ok(())
    }
}

fn skip_ws(st: &mut ParseState<'_>) {
    while st
        .input
        .get(st.pos)
        .is_some_and(|b| b.is_ascii_whitespace())
    {
        st.pos += 1;
    }
}

fn find(st: &ParseState<'_>, needle: &[u8]) -> Option<usize> {
    st.input[st.pos..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| st.pos + i)
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_name_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') || b >= 0x80
}

fn scan_name<'i>(st: &mut ParseState<'i>) -> Result<&'i str> {
    let start = st.pos;
    match st.input.get(st.pos) {
        Some(&b) if is_name_start(b) => st.pos += 1,
        _ => return Err(XmlError::parse(st.pos, "expected a name")),
    }
    while st.pos < st.input.len() && is_name_char(st.input[st.pos]) {
        st.pos += 1;
    }
    Ok(&st.text[start..st.pos])
}

fn scan_attr_value(st: &mut ParseState<'_>) -> Result<String> {
    let quote = match st.input.get(st.pos) {
        Some(&q @ (b'"' | b'\'')) => q,
        _ => return Err(XmlError::parse(st.pos, "attribute value must be quoted")),
    };
    st.pos += 1;
    let start = st.pos;
    while st.pos < st.input.len() && st.input[st.pos] != quote {
        if st.input[st.pos] == b'<' {
            return Err(XmlError::parse(
                st.pos,
                "'<' not allowed in attribute value",
            ));
        }
        st.pos += 1;
    }
    if st.pos >= st.input.len() {
        return Err(XmlError::parse(start, "unterminated attribute value"));
    }
    let raw = &st.text[start..st.pos];
    st.pos += 1;
    if raw.contains('&') {
        let mut out = String::with_capacity(raw.len());
        decode_entities(raw, start, &mut out)?;
        Ok(out)
    } else {
        Ok(raw.to_string())
    }
}

fn split_qname(name: &str) -> (&str, &str) {
    match name.find(':') {
        Some(i) => (&name[..i], &name[i + 1..]),
        None => ("", name),
    }
}

fn resolve(ns: &[NsBinding], prefix: &str, default_applies: bool) -> Option<String> {
    if prefix.is_empty() && !default_applies {
        return Some(String::new());
    }
    for b in ns.iter().rev() {
        if b.prefix == prefix {
            return Some(b.uri.clone());
        }
    }
    if prefix.is_empty() {
        Some(String::new()) // no default declaration ⇒ no namespace
    } else {
        None
    }
}

/// Decode the five predefined entities and numeric character references.
pub fn decode_entities(raw: &str, base_offset: usize, out: &mut String) -> Result<()> {
    let mut rest = raw;
    let mut consumed = 0usize;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        let after = &rest[i + 1..];
        let semi = after.find(';').ok_or_else(|| {
            XmlError::parse(base_offset + consumed + i, "unterminated entity reference")
        })?;
        let ent = &after[..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let code = u32::from_str_radix(&ent[2..], 16).map_err(|_| {
                    XmlError::parse(base_offset + consumed + i, "bad hex character reference")
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::parse(base_offset + consumed + i, "invalid character reference")
                })?);
            }
            _ if ent.starts_with('#') => {
                let code: u32 = ent[1..].parse().map_err(|_| {
                    XmlError::parse(base_offset + consumed + i, "bad character reference")
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::parse(base_offset + consumed + i, "invalid character reference")
                })?);
            }
            other => {
                return Err(XmlError::parse(
                    base_offset + consumed + i,
                    format!("unknown entity &{other};"),
                ))
            }
        }
        consumed += i + 1 + semi + 1;
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventCounter;

    fn events(input: &str) -> Result<Vec<String>> {
        let dict = NameDict::new();
        let parser = Parser::new(&dict);
        struct Collect<'d> {
            dict: &'d NameDict,
            out: Vec<String>,
        }
        impl EventSink for Collect<'_> {
            fn event(&mut self, ev: Event<'_>) -> Result<()> {
                let s = match ev {
                    Event::StartDocument => "startdoc".to_string(),
                    Event::EndDocument => "enddoc".to_string(),
                    Event::StartElement { name } => {
                        let q = self.dict.qname(name);
                        format!("elem {}:{}", self.dict.str(q.uri), self.dict.str(q.local))
                    }
                    Event::EndElement => "end".to_string(),
                    Event::Attribute { name, value, .. } => {
                        format!("attr {}={}", self.dict.local_of(name), value)
                    }
                    Event::Text { value, .. } => format!("text {value}"),
                    Event::Comment { value } => format!("comment {value}"),
                    Event::Pi { target, data } => {
                        format!("pi {} {}", self.dict.local_of(target), data)
                    }
                    Event::NamespaceDecl { prefix, uri } => {
                        format!("ns {}={}", self.dict.str(prefix), self.dict.str(uri))
                    }
                };
                self.out.push(s);
                Ok(())
            }
        }
        let mut c = Collect {
            dict: &dict,
            out: Vec::new(),
        };
        parser.parse(input, &mut c)?;
        Ok(c.out)
    }

    #[test]
    fn simple_document() {
        let evs = events(r#"<a x="1"><b>hi</b></a>"#).unwrap();
        assert_eq!(
            evs,
            vec!["startdoc", "elem :a", "attr x=1", "elem :b", "text hi", "end", "end", "enddoc"]
        );
    }

    #[test]
    fn whitespace_dropped_by_default() {
        let evs = events("<a>\n  <b/>\n</a>").unwrap();
        assert!(!evs.iter().any(|e| e.starts_with("text")));
        let dict = NameDict::new();
        let p = Parser::with_options(
            &dict,
            ParseOptions {
                preserve_whitespace: true,
            },
        );
        let mut c = EventCounter::default();
        p.parse("<a>\n  <b/>\n</a>", &mut c).unwrap();
        assert_eq!(c.texts, 2);
    }

    #[test]
    fn namespaces_resolved() {
        let evs =
            events(r#"<c:cat xmlns:c="urn:c" xmlns="urn:d"><item c:id="7"/></c:cat>"#).unwrap();
        assert!(evs.contains(&"elem urn:c:cat".to_string()));
        assert!(evs.contains(&"elem urn:d:item".to_string()));
        assert!(evs.contains(&"ns c=urn:c".to_string()));
        assert!(evs.contains(&"attr id=7".to_string()));
    }

    #[test]
    fn undeclared_prefix_fails() {
        assert!(events("<p:a/>").is_err());
        assert!(events(r#"<a q:x="1"/>"#).is_err());
    }

    #[test]
    fn attribute_order_normalized() {
        // zebra before apple lexically reversed: stream sorts by interning
        // order of (uri, local), which is first-seen order per database —
        // deterministic for identical documents.
        let a = events(r#"<a zebra="1" apple="2"/>"#).unwrap();
        let b = events(r#"<a zebra="1" apple="2"/>"#).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn entities_and_cdata() {
        let evs = events("<a>&lt;tag&gt; &amp; &#65;&#x42;<![CDATA[<raw>&amp;]]></a>").unwrap();
        assert!(evs.contains(&"text <tag> & AB".to_string()));
        assert!(evs.contains(&"text <raw>&amp;".to_string()));
        assert!(events("<a>&undefined;</a>").is_err());
    }

    #[test]
    fn comments_and_pis() {
        let evs = events("<?xml version=\"1.0\"?><!-- hello --><a><?go fast?></a>").unwrap();
        assert!(evs.contains(&"comment  hello ".to_string()));
        assert!(evs.contains(&"pi go fast".to_string()));
    }

    #[test]
    fn doctype_skipped() {
        let evs = events("<!DOCTYPE a [<!ELEMENT a ANY>]><a/>").unwrap();
        assert!(evs.contains(&"elem :a".to_string()));
    }

    #[test]
    fn well_formedness_errors() {
        assert!(events("<a><b></a></b>").is_err(), "mismatched tags");
        assert!(events("<a>").is_err(), "unclosed");
        assert!(events("<a/><b/>").is_err(), "two roots");
        assert!(events("text<a/>").is_err(), "text before root");
        assert!(events(r#"<a x="1" x="2"/>"#).is_err(), "duplicate attr");
        assert!(events("").is_err(), "empty input");
        assert!(events("<a x=1/>").is_err(), "unquoted attribute");
    }

    #[test]
    fn roundtrip_to_token_stream() {
        let dict = NameDict::new();
        let p = Parser::new(&dict);
        let stream = p
            .parse_to_tokens(r#"<cat><p price="9.99">Widget</p><p price="19.99">Gadget</p></cat>"#)
            .unwrap();
        let mut c = EventCounter::default();
        stream.replay(&mut c).unwrap();
        assert_eq!(c.elements, 3);
        assert_eq!(c.attributes, 2);
        assert_eq!(c.texts, 2);
    }

    #[test]
    fn nested_namespace_scoping() {
        let evs = events(r#"<a xmlns="urn:1"><b xmlns="urn:2"><c/></b><d/></a>"#).unwrap();
        let elems: Vec<&String> = evs.iter().filter(|e| e.starts_with("elem")).collect();
        assert_eq!(
            elems,
            vec![
                "elem urn:1:a",
                "elem urn:2:b",
                "elem urn:2:c",
                "elem urn:1:d"
            ]
        );
    }
}
