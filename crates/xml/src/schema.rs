//! XML Schema subset: compiler and table-driven validation VM (§3.2, Fig. 4).
//!
//! "An XML schema has to be registered before it can be used. During the
//! registration, it is compiled into a binary format like a parsing table and
//! stored in the catalog. At the execution time, the binary schema is loaded
//! and executed by a validation runtime to generate a token stream."
//!
//! The subset covers the data-centric core: global elements, named and
//! anonymous complex types with `sequence`/`choice` content models and
//! `minOccurs`/`maxOccurs`, attributes with `use="required"`, simple types
//! (`xs:string`, `xs:double`, `xs:decimal`, `xs:integer`, `xs:boolean`,
//! `xs:date`), and simple content with attributes (`xs:simpleContent` /
//! `xs:extension`).
//!
//! Compilation lowers every content model to a **DFA transition table** over
//! child-element symbols (Glushkov-style NFA → subset construction) — the
//! "parsing table" of the paper. The [`ValidatorVm`] is then a pure
//! table-walker: one state per open element, O(1)-ish transitions, emitting a
//! *type-annotated* token stream.

use crate::error::{Result, XmlError};
use crate::event::{Event, EventSink};
use crate::name::NameDict;
use crate::parser::Parser;
use crate::token::{get_str, get_varint, put_str, put_varint, TokenStream, TokenWriter};
use crate::value::{Date, Decimal, TypeAnn};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Built-in simple types supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SimpleType {
    /// xs:string (always valid).
    String = 1,
    /// xs:double.
    Double = 2,
    /// xs:decimal.
    Decimal = 3,
    /// xs:boolean.
    Boolean = 4,
    /// xs:date.
    Date = 5,
    /// xs:integer.
    Integer = 6,
}

impl SimpleType {
    fn from_xsd(name: &str) -> Option<SimpleType> {
        Some(match name {
            "string" | "token" | "normalizedString" | "anyURI" => SimpleType::String,
            "double" | "float" => SimpleType::Double,
            "decimal" => SimpleType::Decimal,
            "boolean" => SimpleType::Boolean,
            "date" => SimpleType::Date,
            "integer" | "int" | "long" | "short" | "nonNegativeInteger" | "positiveInteger" => {
                SimpleType::Integer
            }
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Result<SimpleType> {
        Ok(match v {
            1 => SimpleType::String,
            2 => SimpleType::Double,
            3 => SimpleType::Decimal,
            4 => SimpleType::Boolean,
            5 => SimpleType::Date,
            6 => SimpleType::Integer,
            other => {
                return Err(XmlError::Schema {
                    message: format!("bad simple type byte {other}"),
                })
            }
        })
    }

    /// The token annotation this type stamps on validated values.
    pub fn annotation(self) -> TypeAnn {
        match self {
            SimpleType::String => TypeAnn::String,
            SimpleType::Double => TypeAnn::Double,
            SimpleType::Decimal => TypeAnn::Decimal,
            SimpleType::Boolean => TypeAnn::Boolean,
            SimpleType::Date => TypeAnn::Date,
            SimpleType::Integer => TypeAnn::Integer,
        }
    }

    /// Check a lexical value against this type.
    pub fn check(self, value: &str) -> Result<()> {
        let ok = match self {
            SimpleType::String => true,
            SimpleType::Double => value.trim().parse::<f64>().is_ok(),
            SimpleType::Decimal => Decimal::parse(value).is_ok(),
            SimpleType::Boolean => matches!(value.trim(), "true" | "false" | "0" | "1"),
            SimpleType::Date => Date::parse(value).is_ok(),
            SimpleType::Integer => value.trim().parse::<i64>().is_ok(),
        };
        if ok {
            Ok(())
        } else {
            Err(XmlError::Validation {
                message: format!("value {value:?} is not a valid {self:?}"),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Source model (what the .xsd parses into)
// ---------------------------------------------------------------------------

/// Reference to an element's type: a built-in simple type or a complex type
/// by index into [`SchemaDoc::types`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeRef {
    /// A built-in simple type.
    Simple(SimpleType),
    /// Index of a complex type.
    Complex(usize),
}

/// An attribute declaration.
#[derive(Debug, Clone)]
pub struct AttrDecl {
    /// Attribute local name.
    pub name: String,
    /// Value type.
    pub ty: SimpleType,
    /// Whether `use="required"`.
    pub required: bool,
}

/// A content-model particle with occurrence bounds.
#[derive(Debug, Clone)]
pub struct Particle {
    /// The term.
    pub term: Term,
    /// minOccurs.
    pub min: u32,
    /// maxOccurs (`None` = unbounded).
    pub max: Option<u32>,
}

/// A particle term.
#[derive(Debug, Clone)]
pub enum Term {
    /// A local element declaration.
    Element {
        /// Element local name.
        name: String,
        /// Its type.
        ty: TypeRef,
    },
    /// Ordered sequence.
    Seq(Vec<Particle>),
    /// Exclusive choice.
    Choice(Vec<Particle>),
}

/// Content of a complex type.
#[derive(Debug, Clone)]
pub enum Content {
    /// No children, no text.
    Empty,
    /// Text-only content of a simple type (possibly with attributes).
    Simple(SimpleType),
    /// Element-only content governed by a model.
    Model(Particle),
}

/// A complex type definition.
#[derive(Debug, Clone)]
pub struct ComplexType {
    /// Type name ("" for anonymous).
    pub name: String,
    /// Attribute declarations.
    pub attrs: Vec<AttrDecl>,
    /// Content.
    pub content: Content,
}

/// A parsed schema document.
#[derive(Debug, Clone, Default)]
pub struct SchemaDoc {
    /// The schema's target namespace.
    pub target_ns: String,
    /// Global element declarations.
    pub globals: Vec<(String, TypeRef)>,
    /// All complex types (named and anonymous).
    pub types: Vec<ComplexType>,
}

// ---------------------------------------------------------------------------
// .xsd front end
// ---------------------------------------------------------------------------

const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema";

/// Parse an `.xsd` document (our subset) into a [`SchemaDoc`].
pub fn parse_xsd(input: &str) -> Result<SchemaDoc> {
    use crate::dom::{DomKind, DomTree};
    let dict = NameDict::new();
    let dom = DomTree::parse(input, &dict)?;

    struct Ctx<'a> {
        dom: &'a DomTree,
        dict: &'a NameDict,
        doc: SchemaDoc,
        named: HashMap<String, usize>,
        /// (type index, referenced type name) fixups for forward references.
        fixups: Vec<(usize, String)>,
    }

    impl Ctx<'_> {
        fn is_xsd(&self, id: usize, local: &str) -> bool {
            matches!(&self.dom.node(id).kind,
                DomKind::Element { name, .. } if self.dict.matches(*name, XSD_NS, local))
        }

        fn attr(&self, id: usize, name: &str) -> Option<String> {
            if let DomKind::Element { attrs, .. } = &self.dom.node(id).kind {
                attrs
                    .iter()
                    .find(|(n, _)| self.dict.matches_local(*n, name))
                    .map(|(_, v)| v.clone())
            } else {
                None
            }
        }

        fn elem_children(&self, id: usize) -> Vec<usize> {
            self.dom
                .children(id)
                .iter()
                .copied()
                .filter(|&c| matches!(self.dom.node(c).kind, DomKind::Element { .. }))
                .collect()
        }

        fn type_from_name(&mut self, tname: &str) -> Result<TypeRef> {
            let local = tname.rsplit(':').next().unwrap_or(tname);
            if let Some(st) = SimpleType::from_xsd(local) {
                return Ok(TypeRef::Simple(st));
            }
            if let Some(&idx) = self.named.get(local) {
                return Ok(TypeRef::Complex(idx));
            }
            // Forward reference: allocate a placeholder to patch later.
            let idx = self.doc.types.len();
            self.doc.types.push(ComplexType {
                name: format!("\u{0}fwd:{local}"),
                attrs: Vec::new(),
                content: Content::Empty,
            });
            self.fixups.push((idx, local.to_string()));
            Ok(TypeRef::Complex(idx))
        }

        fn occurs(&self, id: usize) -> Result<(u32, Option<u32>)> {
            let min = match self.attr(id, "minOccurs") {
                Some(v) => v.parse().map_err(|_| XmlError::Schema {
                    message: format!("bad minOccurs {v:?}"),
                })?,
                None => 1,
            };
            let max = match self.attr(id, "maxOccurs") {
                Some(v) if v == "unbounded" => None,
                Some(v) => Some(v.parse().map_err(|_| XmlError::Schema {
                    message: format!("bad maxOccurs {v:?}"),
                })?),
                None => Some(1),
            };
            if let Some(m) = max {
                if m < min {
                    return Err(XmlError::Schema {
                        message: format!("maxOccurs {m} < minOccurs {min}"),
                    });
                }
                if m > 64 {
                    return Err(XmlError::Schema {
                        message: "maxOccurs larger than 64 is not supported (use unbounded)".into(),
                    });
                }
            }
            Ok((min, max))
        }

        fn parse_element_decl(&mut self, id: usize) -> Result<(String, TypeRef)> {
            let name = self.attr(id, "name").ok_or_else(|| XmlError::Schema {
                message: "xs:element requires a name".into(),
            })?;
            if let Some(tname) = self.attr(id, "type") {
                return Ok((name, self.type_from_name(&tname)?));
            }
            // Inline complexType?
            for c in self.elem_children(id) {
                if self.is_xsd(c, "complexType") {
                    let idx = self.parse_complex_type(c, "")?;
                    return Ok((name, TypeRef::Complex(idx)));
                }
                if self.is_xsd(c, "simpleType") {
                    // Only restriction of a built-in.
                    for r in self.elem_children(c) {
                        if self.is_xsd(r, "restriction") {
                            if let Some(base) = self.attr(r, "base") {
                                return Ok((name, self.type_from_name(&base)?));
                            }
                        }
                    }
                }
            }
            // No type at all: anything goes — treat as string.
            Ok((name, TypeRef::Simple(SimpleType::String)))
        }

        fn parse_particle(&mut self, id: usize) -> Result<Particle> {
            let (min, max) = self.occurs(id)?;
            if self.is_xsd(id, "element") {
                let (name, ty) = self.parse_element_decl(id)?;
                return Ok(Particle {
                    term: Term::Element { name, ty },
                    min,
                    max,
                });
            }
            if self.is_xsd(id, "sequence") || self.is_xsd(id, "choice") {
                let mut items = Vec::new();
                for c in self.elem_children(id) {
                    items.push(self.parse_particle(c)?);
                }
                let term = if self.is_xsd(id, "sequence") {
                    Term::Seq(items)
                } else {
                    Term::Choice(items)
                };
                return Ok(Particle { term, min, max });
            }
            Err(XmlError::Schema {
                message: "unsupported particle (expected element/sequence/choice)".into(),
            })
        }

        fn parse_attrs(&mut self, id: usize, out: &mut Vec<AttrDecl>) -> Result<()> {
            for c in self.elem_children(id) {
                if self.is_xsd(c, "attribute") {
                    let name = self.attr(c, "name").ok_or_else(|| XmlError::Schema {
                        message: "xs:attribute requires a name".into(),
                    })?;
                    let ty = match self.attr(c, "type") {
                        Some(t) => {
                            let local = t.rsplit(':').next().unwrap_or(&t).to_string();
                            SimpleType::from_xsd(&local).ok_or_else(|| XmlError::Schema {
                                message: format!("attribute type {t:?} must be a built-in"),
                            })?
                        }
                        None => SimpleType::String,
                    };
                    let required = self.attr(c, "use").as_deref() == Some("required");
                    out.push(AttrDecl { name, ty, required });
                }
            }
            Ok(())
        }

        fn parse_complex_type(&mut self, id: usize, name: &str) -> Result<usize> {
            let idx = self.doc.types.len();
            self.doc.types.push(ComplexType {
                name: name.to_string(),
                attrs: Vec::new(),
                content: Content::Empty,
            });
            if !name.is_empty() {
                self.named.insert(name.to_string(), idx);
            }
            let mut attrs = Vec::new();
            let mut content = Content::Empty;
            self.parse_attrs(id, &mut attrs)?;
            for c in self.elem_children(id) {
                if self.is_xsd(c, "sequence") || self.is_xsd(c, "choice") {
                    content = Content::Model(self.parse_particle(c)?);
                } else if self.is_xsd(c, "simpleContent") {
                    for e in self.elem_children(c) {
                        if self.is_xsd(e, "extension") {
                            let base = self.attr(e, "base").ok_or_else(|| XmlError::Schema {
                                message: "xs:extension requires a base".into(),
                            })?;
                            let local = base.rsplit(':').next().unwrap_or(&base);
                            let st =
                                SimpleType::from_xsd(local).ok_or_else(|| XmlError::Schema {
                                    message: format!(
                                        "simpleContent base {base:?} must be built-in"
                                    ),
                                })?;
                            content = Content::Simple(st);
                            self.parse_attrs(e, &mut attrs)?;
                        }
                    }
                }
            }
            self.doc.types[idx] = ComplexType {
                name: name.to_string(),
                attrs,
                content,
            };
            Ok(idx)
        }
    }

    let root = dom.root_element().ok_or_else(|| XmlError::Schema {
        message: "empty schema document".into(),
    })?;
    let mut ctx = Ctx {
        dom: &dom,
        dict: &dict,
        doc: SchemaDoc::default(),
        named: HashMap::new(),
        fixups: Vec::new(),
    };
    if !ctx.is_xsd(root, "schema") {
        return Err(XmlError::Schema {
            message: "root element must be xs:schema".into(),
        });
    }
    ctx.doc.target_ns = ctx.attr(root, "targetNamespace").unwrap_or_default();

    // First pass: named complex types (so references mostly resolve inline).
    for c in ctx.elem_children(root) {
        if ctx.is_xsd(c, "complexType") {
            let name = ctx.attr(c, "name").ok_or_else(|| XmlError::Schema {
                message: "top-level xs:complexType requires a name".into(),
            })?;
            ctx.parse_complex_type(c, &name)?;
        }
    }
    // Second pass: global elements.
    for c in ctx.elem_children(root) {
        if ctx.is_xsd(c, "element") {
            let (name, ty) = ctx.parse_element_decl(c)?;
            ctx.doc.globals.push((name, ty));
        }
    }
    // Patch forward references: redirect placeholder types to the real ones.
    let fixups = std::mem::take(&mut ctx.fixups);
    for (idx, name) in fixups {
        let target = *ctx.named.get(&name).ok_or_else(|| XmlError::Schema {
            message: format!("unresolved type reference {name:?}"),
        })?;
        ctx.doc.types[idx] = ctx.doc.types[target].clone();
    }
    if ctx.doc.globals.is_empty() {
        return Err(XmlError::Schema {
            message: "schema declares no global elements".into(),
        });
    }
    Ok(ctx.doc)
}

// ---------------------------------------------------------------------------
// Compiler: content models → DFA tables → binary format
// ---------------------------------------------------------------------------

/// Symbol id within a compiled schema (an element local name).
pub type SymId = u32;

/// A compiled DFA: state 0 is the start state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dfa {
    /// Per-state transition maps (symbol → next state).
    pub trans: Vec<BTreeMap<SymId, u32>>,
    /// Accepting states.
    pub accepting: Vec<bool>,
}

impl Dfa {
    /// Advance from `state` on `sym`.
    pub fn step(&self, state: u32, sym: SymId) -> Option<u32> {
        self.trans[state as usize].get(&sym).copied()
    }

    /// Is `state` accepting?
    pub fn accepts(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }
}

// Thompson-style NFA with epsilon transitions.
#[derive(Default)]
struct Nfa {
    // (state, sym) -> states, plus epsilon edges.
    trans: Vec<Vec<(SymId, usize)>>,
    eps: Vec<Vec<usize>>,
}

impl Nfa {
    fn add_state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.trans.len() - 1
    }

    /// Build the fragment for `p` between fresh `start`/`end` states.
    fn build(&mut self, p: &Particle, syms: &HashMap<String, SymId>) -> (usize, usize) {
        let (s, e) = self.build_once(&p.term, syms);
        // Apply occurrence bounds by chaining copies.
        let start = self.add_state();
        let end = self.add_state();
        let mut cur = start;
        let min = p.min as usize;
        for _ in 0..min {
            let (cs, ce) = self.clone_fragment(s, e, &p.term, syms);
            self.eps[cur].push(cs);
            cur = ce;
        }
        match p.max {
            None => {
                // Kleene tail: cur -> loop fragment -> cur, cur -> end.
                let (cs, ce) = self.clone_fragment(s, e, &p.term, syms);
                self.eps[cur].push(cs);
                self.eps[ce].push(cur);
                self.eps[cur].push(end);
            }
            Some(max) => {
                let extra = max as usize - min;
                self.eps[cur].push(end);
                for _ in 0..extra {
                    let (cs, ce) = self.clone_fragment(s, e, &p.term, syms);
                    self.eps[cur].push(cs);
                    self.eps[ce].push(end);
                    cur = ce;
                }
            }
        }
        (start, end)
    }

    // The original (s, e) fragment is only used as a template; each use site
    // rebuilds it so copies do not share states.
    fn clone_fragment(
        &mut self,
        _s: usize,
        _e: usize,
        term: &Term,
        syms: &HashMap<String, SymId>,
    ) -> (usize, usize) {
        self.build_once(term, syms)
    }

    fn build_once(&mut self, term: &Term, syms: &HashMap<String, SymId>) -> (usize, usize) {
        match term {
            Term::Element { name, .. } => {
                let s = self.add_state();
                let e = self.add_state();
                let sym = syms[name.as_str()];
                self.trans[s].push((sym, e));
                (s, e)
            }
            Term::Seq(items) => {
                let s = self.add_state();
                let mut cur = s;
                for item in items {
                    let (is, ie) = self.build(item, syms);
                    self.eps[cur].push(is);
                    cur = ie;
                }
                (s, cur)
            }
            Term::Choice(items) => {
                let s = self.add_state();
                let e = self.add_state();
                if items.is_empty() {
                    self.eps[s].push(e);
                }
                for item in items {
                    let (is, ie) = self.build(item, syms);
                    self.eps[s].push(is);
                    self.eps[ie].push(e);
                }
                (s, e)
            }
        }
    }

    fn eps_closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = set.clone();
        let mut stack: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if out.insert(t) {
                    stack.push(t);
                }
            }
        }
        out
    }

    fn to_dfa(&self, start: usize, end: usize) -> Dfa {
        let mut dfa = Dfa::default();
        let start_set = self.eps_closure(&BTreeSet::from([start]));
        let mut ids: HashMap<BTreeSet<usize>, u32> = HashMap::new();
        let mut work = vec![start_set.clone()];
        ids.insert(start_set.clone(), 0);
        dfa.trans.push(BTreeMap::new());
        dfa.accepting.push(start_set.contains(&end));
        while let Some(set) = work.pop() {
            let from = ids[&set];
            let mut by_sym: BTreeMap<SymId, BTreeSet<usize>> = BTreeMap::new();
            for &s in &set {
                for &(sym, t) in &self.trans[s] {
                    by_sym.entry(sym).or_default().insert(t);
                }
            }
            for (sym, targets) in by_sym {
                let closed = self.eps_closure(&targets);
                let to = match ids.get(&closed) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.trans.len() as u32;
                        ids.insert(closed.clone(), id);
                        dfa.trans.push(BTreeMap::new());
                        dfa.accepting.push(closed.contains(&end));
                        work.push(closed);
                        id
                    }
                };
                dfa.trans[from as usize].insert(sym, to);
            }
        }
        dfa
    }
}

/// Encoded type reference: simple types as `0..=5`+1 markers, complex as index.
fn encode_typeref(out: &mut Vec<u8>, t: TypeRef) {
    match t {
        TypeRef::Simple(s) => {
            out.push(0);
            out.push(s as u8);
        }
        TypeRef::Complex(i) => {
            out.push(1);
            put_varint(out, i as u64);
        }
    }
}

fn decode_typeref(buf: &[u8], pos: &mut usize) -> Result<TypeRef> {
    let tag = buf[*pos];
    *pos += 1;
    if tag == 0 {
        let s = SimpleType::from_u8(buf[*pos])?;
        *pos += 1;
        Ok(TypeRef::Simple(s))
    } else {
        Ok(TypeRef::Complex(get_varint(buf, pos)? as usize))
    }
}

/// Compile a parsed schema into the binary format stored in the catalog.
pub fn compile(doc: &SchemaDoc) -> Result<Vec<u8>> {
    // Collect the symbol table (all element names in content models).
    let mut syms: HashMap<String, SymId> = HashMap::new();
    let mut sym_list: Vec<String> = Vec::new();
    fn collect(p: &Particle, syms: &mut HashMap<String, SymId>, list: &mut Vec<String>) {
        match &p.term {
            Term::Element { name, .. } => {
                if !syms.contains_key(name.as_str()) {
                    syms.insert(name.clone(), list.len() as SymId);
                    list.push(name.clone());
                }
            }
            Term::Seq(items) | Term::Choice(items) => {
                for i in items {
                    collect(i, syms, list);
                }
            }
        }
    }
    for t in &doc.types {
        if let Content::Model(p) = &t.content {
            collect(p, &mut syms, &mut sym_list);
        }
    }
    for (name, _) in &doc.globals {
        if !syms.contains_key(name.as_str()) {
            syms.insert(name.clone(), sym_list.len() as SymId);
            sym_list.push(name.clone());
        }
    }

    // Per-type: DFA + child element type map.
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"RXSC\x01"); // magic + version
    put_str(&mut out, &doc.target_ns);
    put_varint(&mut out, sym_list.len() as u64);
    for s in &sym_list {
        put_str(&mut out, s);
    }
    put_varint(&mut out, doc.globals.len() as u64);
    for (name, ty) in &doc.globals {
        put_varint(&mut out, u64::from(syms[name.as_str()]));
        encode_typeref(&mut out, *ty);
    }
    put_varint(&mut out, doc.types.len() as u64);
    for t in &doc.types {
        // Attributes.
        put_varint(&mut out, t.attrs.len() as u64);
        for a in &t.attrs {
            put_str(&mut out, &a.name);
            out.push(a.ty as u8);
            out.push(u8::from(a.required));
        }
        match &t.content {
            Content::Empty => out.push(0),
            Content::Simple(s) => {
                out.push(1);
                out.push(*s as u8);
            }
            Content::Model(p) => {
                out.push(2);
                // Child element type map.
                let mut children: BTreeMap<SymId, TypeRef> = BTreeMap::new();
                fn child_types(
                    p: &Particle,
                    syms: &HashMap<String, SymId>,
                    out: &mut BTreeMap<SymId, TypeRef>,
                ) {
                    match &p.term {
                        Term::Element { name, ty } => {
                            out.insert(syms[name.as_str()], *ty);
                        }
                        Term::Seq(items) | Term::Choice(items) => {
                            for i in items {
                                child_types(i, syms, out);
                            }
                        }
                    }
                }
                child_types(p, &syms, &mut children);
                put_varint(&mut out, children.len() as u64);
                for (sym, ty) in &children {
                    put_varint(&mut out, u64::from(*sym));
                    encode_typeref(&mut out, *ty);
                }
                // The DFA table.
                let mut nfa = Nfa::default();
                let (s, e) = nfa.build(p, &syms);
                let dfa = nfa.to_dfa(s, e);
                put_varint(&mut out, dfa.trans.len() as u64);
                for (state, map) in dfa.trans.iter().enumerate() {
                    out.push(u8::from(dfa.accepting[state]));
                    put_varint(&mut out, map.len() as u64);
                    for (sym, to) in map {
                        put_varint(&mut out, u64::from(*sym));
                        put_varint(&mut out, u64::from(*to));
                    }
                }
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The loaded runtime program
// ---------------------------------------------------------------------------

/// A loaded compiled type.
#[derive(Debug, Clone)]
pub struct LoadedType {
    /// Attribute declarations: (name, type, required).
    pub attrs: Vec<(String, SimpleType, bool)>,
    /// Simple text content type (`None` for empty / element-only).
    pub simple: Option<SimpleType>,
    /// Child element types by symbol.
    pub children: BTreeMap<SymId, TypeRef>,
    /// Content-model DFA (`None` when no element children allowed).
    pub dfa: Option<Dfa>,
}

/// A compiled schema loaded from its binary format — the "virtual machine"
/// program of Fig. 4.
#[derive(Debug, Clone)]
pub struct SchemaProgram {
    /// Target namespace documents must use.
    pub target_ns: String,
    /// Symbol table: element local names.
    pub symbols: Vec<String>,
    /// Global (root-capable) elements: symbol → type.
    pub globals: BTreeMap<SymId, TypeRef>,
    /// All types.
    pub types: Vec<LoadedType>,
    sym_by_name: HashMap<String, SymId>,
}

impl SchemaProgram {
    /// Load a compiled binary schema.
    pub fn load(bin: &[u8]) -> Result<SchemaProgram> {
        if !bin.starts_with(b"RXSC\x01") {
            return Err(XmlError::Schema {
                message: "bad compiled schema magic".into(),
            });
        }
        let mut pos = 5usize;
        let target_ns = get_str(bin, &mut pos)?.to_string();
        let nsyms = get_varint(bin, &mut pos)? as usize;
        let mut symbols = Vec::with_capacity(nsyms);
        for _ in 0..nsyms {
            symbols.push(get_str(bin, &mut pos)?.to_string());
        }
        let nglobals = get_varint(bin, &mut pos)? as usize;
        let mut globals = BTreeMap::new();
        for _ in 0..nglobals {
            let sym = get_varint(bin, &mut pos)? as SymId;
            let ty = decode_typeref(bin, &mut pos)?;
            globals.insert(sym, ty);
        }
        let ntypes = get_varint(bin, &mut pos)? as usize;
        let mut types = Vec::with_capacity(ntypes);
        for _ in 0..ntypes {
            let nattrs = get_varint(bin, &mut pos)? as usize;
            let mut attrs = Vec::with_capacity(nattrs);
            for _ in 0..nattrs {
                let name = get_str(bin, &mut pos)?.to_string();
                let ty = SimpleType::from_u8(bin[pos])?;
                pos += 1;
                let required = bin[pos] != 0;
                pos += 1;
                attrs.push((name, ty, required));
            }
            let kind = bin[pos];
            pos += 1;
            let (simple, children, dfa) = match kind {
                0 => (None, BTreeMap::new(), None),
                1 => {
                    let s = SimpleType::from_u8(bin[pos])?;
                    pos += 1;
                    (Some(s), BTreeMap::new(), None)
                }
                2 => {
                    let nchildren = get_varint(bin, &mut pos)? as usize;
                    let mut children = BTreeMap::new();
                    for _ in 0..nchildren {
                        let sym = get_varint(bin, &mut pos)? as SymId;
                        let ty = decode_typeref(bin, &mut pos)?;
                        children.insert(sym, ty);
                    }
                    let nstates = get_varint(bin, &mut pos)? as usize;
                    let mut dfa = Dfa::default();
                    for _ in 0..nstates {
                        let acc = bin[pos] != 0;
                        pos += 1;
                        dfa.accepting.push(acc);
                        let ntrans = get_varint(bin, &mut pos)? as usize;
                        let mut map = BTreeMap::new();
                        for _ in 0..ntrans {
                            let sym = get_varint(bin, &mut pos)? as SymId;
                            let to = get_varint(bin, &mut pos)? as u32;
                            map.insert(sym, to);
                        }
                        dfa.trans.push(map);
                    }
                    (None, children, Some(dfa))
                }
                other => {
                    return Err(XmlError::Schema {
                        message: format!("bad content kind byte {other}"),
                    })
                }
            };
            types.push(LoadedType {
                attrs,
                simple,
                children,
                dfa,
            });
        }
        let sym_by_name = symbols
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as SymId))
            .collect();
        Ok(SchemaProgram {
            target_ns,
            symbols,
            globals,
            types,
            sym_by_name,
        })
    }

    fn sym(&self, local: &str) -> Option<SymId> {
        self.sym_by_name.get(local).copied()
    }
}

// ---------------------------------------------------------------------------
// The validation VM
// ---------------------------------------------------------------------------

enum Frame {
    Simple { ty: SimpleType, text: String },
    Model { type_idx: usize, state: u32 },
    Empty,
}

/// The table-driven validation runtime: an [`EventSink`] that checks each
/// event against the loaded schema program and re-emits it, with type
/// annotations, into a token stream.
pub struct ValidatorVm<'p, 'd> {
    program: &'p SchemaProgram,
    dict: &'d NameDict,
    out: TokenWriter,
    stack: Vec<Frame>,
    /// Attributes still expected on the current element.
    pending_attrs: Vec<(String, SimpleType, bool)>,
    seen_attrs: Vec<String>,
    attrs_open: bool,
    sym_cache: HashMap<crate::name::QNameId, Option<SymId>>,
}

impl<'p, 'd> ValidatorVm<'p, 'd> {
    /// Create a VM for one document.
    pub fn new(program: &'p SchemaProgram, dict: &'d NameDict) -> Self {
        ValidatorVm {
            program,
            dict,
            out: TokenWriter::new(),
            stack: Vec::new(),
            pending_attrs: Vec::new(),
            seen_attrs: Vec::new(),
            attrs_open: false,
            sym_cache: HashMap::new(),
        }
    }

    /// Finish, returning the annotated token stream.
    pub fn finish(self) -> Result<TokenStream> {
        Ok(self.out.finish())
    }

    fn resolve_sym(&mut self, name: crate::name::QNameId) -> Option<SymId> {
        if let Some(cached) = self.sym_cache.get(&name) {
            return *cached;
        }
        let q = self.dict.qname(name);
        let uri = self.dict.str(q.uri);
        let local = self.dict.str(q.local);
        let sym = if uri.as_ref() == self.program.target_ns {
            self.program.sym(&local)
        } else {
            None
        };
        self.sym_cache.insert(name, sym);
        sym
    }

    fn close_attrs(&mut self) -> Result<()> {
        if !self.attrs_open {
            return Ok(());
        }
        self.attrs_open = false;
        for (name, _, required) in &self.pending_attrs {
            if *required && !self.seen_attrs.contains(name) {
                return Err(XmlError::Validation {
                    message: format!("missing required attribute {name:?}"),
                });
            }
        }
        self.pending_attrs.clear();
        self.seen_attrs.clear();
        Ok(())
    }

    fn enter_type(&mut self, ty: TypeRef) {
        match ty {
            TypeRef::Simple(s) => {
                self.stack.push(Frame::Simple {
                    ty: s,
                    text: String::new(),
                });
                self.pending_attrs.clear();
            }
            TypeRef::Complex(idx) => {
                let lt = &self.program.types[idx];
                self.pending_attrs = lt.attrs.clone();
                if let Some(s) = lt.simple {
                    self.stack.push(Frame::Simple {
                        ty: s,
                        text: String::new(),
                    });
                } else if lt.dfa.is_some() {
                    self.stack.push(Frame::Model {
                        type_idx: idx,
                        state: 0,
                    });
                } else {
                    self.stack.push(Frame::Empty);
                }
            }
        }
        self.attrs_open = true;
        self.seen_attrs.clear();
    }
}

impl EventSink for ValidatorVm<'_, '_> {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartDocument => self.out.event(ev),
            Event::EndDocument => self.out.event(ev),
            Event::StartElement { name } => {
                self.close_attrs()?;
                let sym = self.resolve_sym(name).ok_or_else(|| XmlError::Validation {
                    message: format!(
                        "element {:?} is not declared in the schema",
                        self.dict.local_of(name)
                    ),
                })?;
                let ty = if self.stack.is_empty() {
                    // Root element: must be a global.
                    *self
                        .program
                        .globals
                        .get(&sym)
                        .ok_or_else(|| XmlError::Validation {
                            message: format!(
                                "element {:?} is not a valid document root",
                                self.program.symbols[sym as usize]
                            ),
                        })?
                } else {
                    // Advance the parent's DFA.
                    match self.stack.last_mut() {
                        Some(Frame::Model { type_idx, state }) => {
                            let lt = &self.program.types[*type_idx];
                            let dfa = lt.dfa.as_ref().expect("model frames have a DFA");
                            let next =
                                dfa.step(*state, sym).ok_or_else(|| XmlError::Validation {
                                    message: format!(
                                        "element {:?} not allowed here by the content model",
                                        self.program.symbols[sym as usize]
                                    ),
                                })?;
                            *state = next;
                            *lt.children.get(&sym).ok_or_else(|| XmlError::Validation {
                                message: format!(
                                    "no declaration for child {:?}",
                                    self.program.symbols[sym as usize]
                                ),
                            })?
                        }
                        _ => {
                            return Err(XmlError::Validation {
                                message: format!(
                                    "element {:?} not allowed in simple/empty content",
                                    self.program.symbols[sym as usize]
                                ),
                            })
                        }
                    }
                };
                self.out.event(Event::StartElement { name })?;
                self.enter_type(ty);
                Ok(())
            }
            Event::NamespaceDecl { .. } => self.out.event(ev),
            Event::Attribute { name, value, .. } => {
                if !self.attrs_open {
                    return Err(XmlError::Validation {
                        message: "attribute after element content".into(),
                    });
                }
                let local = self.dict.local_of(name);
                let decl = self
                    .pending_attrs
                    .iter()
                    .find(|(n, _, _)| n.as_str() == local.as_ref());
                match decl {
                    Some((n, ty, _)) => {
                        ty.check(value)?;
                        self.seen_attrs.push(n.clone());
                        self.out.event(Event::Attribute {
                            name,
                            value,
                            ann: ty.annotation(),
                        })
                    }
                    None => Err(XmlError::Validation {
                        message: format!("attribute {local:?} is not declared"),
                    }),
                }
            }
            Event::Text { value, .. } => {
                self.close_attrs()?;
                match self.stack.last_mut() {
                    Some(Frame::Simple { ty, text }) => {
                        text.push_str(value);
                        let ann = ty.annotation();
                        self.out.event(Event::Text { value, ann })
                    }
                    Some(_) if value.trim().is_empty() => Ok(()),
                    Some(_) => Err(XmlError::Validation {
                        message: format!("text {value:?} not allowed in element-only content"),
                    }),
                    None => Err(XmlError::Validation {
                        message: "text outside the document element".into(),
                    }),
                }
            }
            Event::Comment { .. } | Event::Pi { .. } => {
                self.close_attrs()?;
                self.out.event(ev)
            }
            Event::EndElement => {
                self.close_attrs()?;
                match self.stack.pop() {
                    Some(Frame::Simple { ty, text }) => {
                        ty.check(&text)?;
                    }
                    Some(Frame::Model { type_idx, state }) => {
                        let dfa = self.program.types[type_idx]
                            .dfa
                            .as_ref()
                            .expect("model frames have a DFA");
                        if !dfa.accepts(state) {
                            return Err(XmlError::Validation {
                                message: "element ended before its content model completed".into(),
                            });
                        }
                    }
                    Some(Frame::Empty) => {}
                    None => {
                        return Err(XmlError::Validation {
                            message: "unbalanced end element".into(),
                        })
                    }
                }
                self.out.event(ev)
            }
        }
    }
}

/// Parse and validate in one streaming pass (Fig. 4's validating path),
/// producing the annotated token stream.
pub fn validate_to_tokens(
    input: &str,
    program: &SchemaProgram,
    dict: &NameDict,
) -> Result<TokenStream> {
    let mut vm = ValidatorVm::new(program, dict);
    Parser::new(dict).parse(input, &mut vm)?;
    vm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CATALOG_XSD: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog" type="CatalogType"/>
  <xs:complexType name="CatalogType">
    <xs:sequence>
      <xs:element name="Product" type="ProductType" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
  <xs:complexType name="ProductType">
    <xs:sequence>
      <xs:element name="ProductName" type="xs:string"/>
      <xs:element name="RegPrice" type="xs:decimal"/>
      <xs:element name="Discount" type="xs:double" minOccurs="0"/>
      <xs:element name="Added" type="xs:date" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="id" type="xs:integer" use="required"/>
  </xs:complexType>
</xs:schema>"#;

    fn program() -> SchemaProgram {
        let doc = parse_xsd(CATALOG_XSD).unwrap();
        let bin = compile(&doc).unwrap();
        SchemaProgram::load(&bin).unwrap()
    }

    #[test]
    fn parse_compile_load_roundtrip() {
        let p = program();
        assert_eq!(p.target_ns, "");
        assert!(p.symbols.contains(&"Product".to_string()));
        assert_eq!(p.globals.len(), 1);
        // CatalogType, ProductType, plus one forward-reference
        // placeholder (CatalogType references ProductType before its
        // definition in document order).
        assert!(p.types.len() >= 2);
    }

    #[test]
    fn valid_document_annotated() {
        let p = program();
        let dict = NameDict::new();
        let doc = r#"<Catalog>
            <Product id="1"><ProductName>Widget</ProductName><RegPrice>9.99</RegPrice></Product>
            <Product id="2"><ProductName>Gadget</ProductName><RegPrice>120</RegPrice>
              <Discount>0.25</Discount><Added>2005-06-16</Added></Product>
        </Catalog>"#;
        let stream = validate_to_tokens(doc, &p, &dict).unwrap();
        // The annotations must be on the stream.
        use crate::event::{Event, EventSink};
        #[derive(Default)]
        struct Anns(Vec<TypeAnn>);
        impl EventSink for Anns {
            fn event(&mut self, ev: Event<'_>) -> crate::error::Result<()> {
                match ev {
                    Event::Text { ann, .. } | Event::Attribute { ann, .. } => self.0.push(ann),
                    _ => {}
                }
                Ok(())
            }
        }
        let mut a = Anns::default();
        stream.replay(&mut a).unwrap();
        assert!(a.0.contains(&TypeAnn::Decimal));
        assert!(a.0.contains(&TypeAnn::String));
        assert!(a.0.contains(&TypeAnn::Integer));
        assert!(a.0.contains(&TypeAnn::Double));
        assert!(a.0.contains(&TypeAnn::Date));
        assert!(!a.0.contains(&TypeAnn::Untyped));
    }

    #[test]
    fn rejects_wrong_root() {
        let p = program();
        let dict = NameDict::new();
        assert!(validate_to_tokens("<Product/>", &p, &dict).is_err());
        assert!(validate_to_tokens("<Unknown/>", &p, &dict).is_err());
    }

    #[test]
    fn rejects_content_model_violations() {
        let p = program();
        let dict = NameDict::new();
        // Missing required RegPrice.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="1"><ProductName>x</ProductName></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
        // Wrong order.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="1"><RegPrice>1</RegPrice><ProductName>x</ProductName></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
        // Unknown child.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="1"><ProductName>x</ProductName><RegPrice>1</RegPrice><Zap/></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
    }

    #[test]
    fn rejects_bad_values_and_attrs() {
        let p = program();
        let dict = NameDict::new();
        // Non-decimal price.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="1"><ProductName>x</ProductName><RegPrice>cheap</RegPrice></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
        // Missing required id.
        assert!(validate_to_tokens(
            r#"<Catalog><Product><ProductName>x</ProductName><RegPrice>1</RegPrice></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
        // Undeclared attribute.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="1" color="red"><ProductName>x</ProductName><RegPrice>1</RegPrice></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
        // Non-integer id.
        assert!(validate_to_tokens(
            r#"<Catalog><Product id="abc"><ProductName>x</ProductName><RegPrice>1</RegPrice></Product></Catalog>"#,
            &p,
            &dict
        )
        .is_err());
    }

    #[test]
    fn choice_and_occurs() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:complexType>
      <xs:sequence>
        <xs:choice minOccurs="1" maxOccurs="3">
          <xs:element name="a" type="xs:string"/>
          <xs:element name="b" type="xs:string"/>
        </xs:choice>
        <xs:element name="tail" type="xs:string" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
        let doc = parse_xsd(xsd).unwrap();
        let bin = compile(&doc).unwrap();
        let p = SchemaProgram::load(&bin).unwrap();
        let dict = NameDict::new();
        assert!(validate_to_tokens("<r><a/></r>", &p, &dict).is_ok());
        assert!(validate_to_tokens("<r><b/><a/><b/><tail/></r>", &p, &dict).is_ok());
        assert!(
            validate_to_tokens("<r></r>", &p, &dict).is_err(),
            "needs 1+"
        );
        assert!(
            validate_to_tokens("<r><a/><a/><a/><a/></r>", &p, &dict).is_err(),
            "max 3"
        );
        assert!(validate_to_tokens("<r><tail/></r>", &p, &dict).is_err());
    }

    #[test]
    fn simple_content_with_attributes() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="price">
    <xs:complexType>
      <xs:simpleContent>
        <xs:extension base="xs:decimal">
          <xs:attribute name="currency" type="xs:string" use="required"/>
        </xs:extension>
      </xs:simpleContent>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
        let doc = parse_xsd(xsd).unwrap();
        let p = SchemaProgram::load(&compile(&doc).unwrap()).unwrap();
        let dict = NameDict::new();
        assert!(validate_to_tokens(r#"<price currency="USD">19.99</price>"#, &p, &dict).is_ok());
        assert!(validate_to_tokens(r#"<price>19.99</price>"#, &p, &dict).is_err());
        assert!(validate_to_tokens(r#"<price currency="USD">free</price>"#, &p, &dict).is_err());
    }

    #[test]
    fn target_namespace_enforced() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:cat">
  <xs:element name="c" type="xs:string"/>
</xs:schema>"#;
        let doc = parse_xsd(xsd).unwrap();
        assert_eq!(doc.target_ns, "urn:cat");
        let p = SchemaProgram::load(&compile(&doc).unwrap()).unwrap();
        let dict = NameDict::new();
        assert!(validate_to_tokens(r#"<c xmlns="urn:cat">x</c>"#, &p, &dict).is_ok());
        assert!(validate_to_tokens("<c>x</c>", &p, &dict).is_err());
    }

    #[test]
    fn recursive_type_via_forward_reference() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="part" type="PartType"/>
  <xs:complexType name="PartType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="part" type="PartType" minOccurs="0" maxOccurs="unbounded"/>
    </xs:sequence>
  </xs:complexType>
</xs:schema>"#;
        let doc = parse_xsd(xsd).unwrap();
        let p = SchemaProgram::load(&compile(&doc).unwrap()).unwrap();
        let dict = NameDict::new();
        let nested =
            "<part><name>a</name><part><name>b</name></part><part><name>c</name></part></part>";
        assert!(validate_to_tokens(nested, &p, &dict).is_ok());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn load(xsd: &str) -> SchemaProgram {
        SchemaProgram::load(&compile(&parse_xsd(xsd).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn fully_optional_model_accepts_empty() {
        let p = load(
            r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r"><xs:complexType><xs:sequence>
    <xs:element name="a" type="xs:string" minOccurs="0"/>
    <xs:element name="b" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#,
        );
        let dict = NameDict::new();
        assert!(validate_to_tokens("<r/>", &p, &dict).is_ok());
        assert!(validate_to_tokens("<r><b/><b/><b/></r>", &p, &dict).is_ok());
        assert!(validate_to_tokens("<r><a/><b/></r>", &p, &dict).is_ok());
        assert!(
            validate_to_tokens("<r><b/><a/></r>", &p, &dict).is_err(),
            "order"
        );
    }

    #[test]
    fn attribute_only_type() {
        let p = load(
            r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="flag"><xs:complexType>
    <xs:attribute name="on" type="xs:boolean" use="required"/>
    <xs:attribute name="level" type="xs:integer"/>
  </xs:complexType></xs:element>
</xs:schema>"#,
        );
        let dict = NameDict::new();
        assert!(validate_to_tokens(r#"<flag on="true"/>"#, &p, &dict).is_ok());
        assert!(validate_to_tokens(r#"<flag on="1" level="3"/>"#, &p, &dict).is_ok());
        assert!(
            validate_to_tokens("<flag/>", &p, &dict).is_err(),
            "missing required"
        );
        assert!(
            validate_to_tokens(r#"<flag on="maybe"/>"#, &p, &dict).is_err(),
            "bad boolean"
        );
        assert!(
            validate_to_tokens(r#"<flag on="true">text</flag>"#, &p, &dict).is_err(),
            "empty content"
        );
    }

    #[test]
    fn nested_groups() {
        // (a, (b | c)+, d?)
        let p = load(
            r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r"><xs:complexType><xs:sequence>
    <xs:element name="a" type="xs:string"/>
    <xs:choice maxOccurs="unbounded">
      <xs:element name="b" type="xs:string"/>
      <xs:element name="c" type="xs:string"/>
    </xs:choice>
    <xs:element name="d" type="xs:string" minOccurs="0"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#,
        );
        let dict = NameDict::new();
        assert!(validate_to_tokens("<r><a/><b/></r>", &p, &dict).is_ok());
        assert!(validate_to_tokens("<r><a/><c/><b/><c/><d/></r>", &p, &dict).is_ok());
        assert!(
            validate_to_tokens("<r><a/><d/></r>", &p, &dict).is_err(),
            "choice needs 1+"
        );
        assert!(
            validate_to_tokens("<r><b/></r>", &p, &dict).is_err(),
            "a required"
        );
    }

    #[test]
    fn binary_format_is_stable() {
        // Compiling the same schema twice yields identical bytes (the
        // catalog stores them; determinism keeps recovery images stable).
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="x"><xs:complexType><xs:sequence>
    <xs:element name="y" type="xs:decimal" maxOccurs="unbounded"/>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#;
        let a = compile(&parse_xsd(xsd).unwrap()).unwrap();
        let b = compile(&parse_xsd(xsd).unwrap()).unwrap();
        assert_eq!(a, b);
    }
}
