//! XML serialization (§4.4 task 1: "generate a serialized XML string for
//! output to applications").
//!
//! The serializer is an [`EventSink`], so any representation that can push
//! virtual SAX events — token streams, packed records, constructed data —
//! serializes through this one shared routine, exactly the code-sharing
//! argument of Fig. 8.

use crate::error::Result;
use crate::event::{Event, EventSink};
use crate::name::NameDict;
use crate::token::TokenStream;

/// Streaming XML serializer.
pub struct Serializer<'d> {
    dict: &'d NameDict,
    out: String,
    /// Start tag written but not yet closed with `>`.
    tag_open: bool,
    /// Stack of open element display names.
    stack: Vec<String>,
}

impl<'d> Serializer<'d> {
    /// Create a serializer resolving names against `dict`.
    pub fn new(dict: &'d NameDict) -> Self {
        Serializer {
            dict,
            out: String::new(),
            tag_open: false,
            stack: Vec::new(),
        }
    }

    /// Finish and return the XML text.
    pub fn finish(self) -> String {
        self.out
    }

    fn display_name(&self, name: crate::name::QNameId) -> String {
        let q = self.dict.qname(name);
        let prefix = self.dict.str(q.prefix);
        let local = self.dict.str(q.local);
        if prefix.is_empty() {
            local.to_string()
        } else {
            format!("{prefix}:{local}")
        }
    }

    fn close_open_tag(&mut self) {
        if self.tag_open {
            self.out.push('>');
            self.tag_open = false;
        }
    }
}

impl EventSink for Serializer<'_> {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartDocument | Event::EndDocument => {}
            Event::StartElement { name } => {
                self.close_open_tag();
                let disp = self.display_name(name);
                self.out.push('<');
                self.out.push_str(&disp);
                self.stack.push(disp);
                self.tag_open = true;
            }
            Event::NamespaceDecl { prefix, uri } => {
                let p = self.dict.str(prefix);
                self.out.push(' ');
                if p.is_empty() {
                    self.out.push_str("xmlns");
                } else {
                    self.out.push_str("xmlns:");
                    self.out.push_str(&p);
                }
                self.out.push_str("=\"");
                escape_attr(&self.dict.str(uri), &mut self.out);
                self.out.push('"');
            }
            Event::Attribute { name, value, .. } => {
                self.out.push(' ');
                let disp = self.display_name(name);
                self.out.push_str(&disp);
                self.out.push_str("=\"");
                escape_attr(value, &mut self.out);
                self.out.push('"');
            }
            Event::Text { value, .. } => {
                self.close_open_tag();
                escape_text(value, &mut self.out);
            }
            Event::Comment { value } => {
                self.close_open_tag();
                self.out.push_str("<!--");
                self.out.push_str(value);
                self.out.push_str("-->");
            }
            Event::Pi { target, data } => {
                self.close_open_tag();
                self.out.push_str("<?");
                self.out.push_str(&self.dict.local_of(target));
                if !data.is_empty() {
                    self.out.push(' ');
                    self.out.push_str(data);
                }
                self.out.push_str("?>");
            }
            Event::EndElement => {
                let name = self.stack.pop().unwrap_or_default();
                if self.tag_open {
                    self.out.push_str("/>");
                    self.tag_open = false;
                } else {
                    self.out.push_str("</");
                    self.out.push_str(&name);
                    self.out.push('>');
                }
            }
        }
        Ok(())
    }
}

/// Escape character-data content.
pub fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
}

/// Escape an attribute value (double-quote delimited).
pub fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
}

/// Serialize a token stream to XML text.
pub fn serialize_stream(stream: &TokenStream, dict: &NameDict) -> Result<String> {
    let mut s = Serializer::new(dict);
    stream.replay(&mut s)?;
    Ok(s.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    fn roundtrip(input: &str) -> String {
        let dict = NameDict::new();
        let p = Parser::new(&dict);
        let stream = p.parse_to_tokens(input).unwrap();
        serialize_stream(&stream, &dict).unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip("<a><b>hi</b><c/></a>"), "<a><b>hi</b><c/></a>");
    }

    #[test]
    fn attributes_and_namespaces() {
        let out = roundtrip(r#"<c:x xmlns:c="urn:c" a="1"><c:y/></c:x>"#);
        assert_eq!(out, r#"<c:x xmlns:c="urn:c" a="1"><c:y/></c:x>"#);
    }

    #[test]
    fn escaping() {
        let out = roundtrip(r#"<a q="&lt;&quot;&amp;">a &lt; b &amp; c</a>"#);
        assert_eq!(out, r#"<a q="&lt;&quot;&amp;">a &lt; b &amp; c</a>"#);
    }

    #[test]
    fn comments_and_pis_roundtrip() {
        let out = roundtrip("<a><!-- note --><?app do it?></a>");
        assert_eq!(out, "<a><!-- note --><?app do it?></a>");
    }

    #[test]
    fn reparse_stability() {
        // serialize(parse(x)) must be a fixpoint after one pass.
        let once = roundtrip(r#"<cat><p price="9.99">W &amp; G</p></cat>"#);
        let twice = roundtrip(&once);
        assert_eq!(once, twice);
    }
}

#[cfg(test)]
mod ns_tests {
    use super::*;
    use crate::parser::Parser;
    use crate::NameDict;

    fn roundtrip(input: &str) -> String {
        let dict = NameDict::new();
        let stream = Parser::new(&dict).parse_to_tokens(input).unwrap();
        serialize_stream(&stream, &dict).unwrap()
    }

    #[test]
    fn default_namespace() {
        let doc = r#"<cat xmlns="urn:c"><item>x</item></cat>"#;
        assert_eq!(roundtrip(doc), doc);
    }

    #[test]
    fn redeclared_default_namespace() {
        let doc = r#"<a xmlns="urn:1"><b xmlns="urn:2"><c/></b></a>"#;
        assert_eq!(roundtrip(doc), doc);
    }

    #[test]
    fn mixed_prefixes_same_uri() {
        let doc = r#"<x:a xmlns:x="urn:u" xmlns:y="urn:u"><y:b/></x:a>"#;
        // Both prefixes survive (they are distinct qname ids with equal
        // expanded names).
        assert_eq!(roundtrip(doc), doc);
    }

    #[test]
    fn unicode_content() {
        let doc = "<r a=\"héllo\">日本語 ♥</r>";
        assert_eq!(roundtrip(doc), doc);
    }
}
