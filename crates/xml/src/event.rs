//! The virtual-SAX event model (§4.4).
//!
//! "As the iterator traverses through the data, each input data item is
//! converted into a virtual SAX-like event, which is a set of parameters
//! required by the routines performing the task. All the routines are shared."
//!
//! Every XML representation in the system — the parser's token stream, the
//! packed persistent records, constructed (template + arguments) data, and
//! in-memory sequences — can *push* its contents through this one event
//! vocabulary into any [`EventSink`]: the serializer, the tree packer, or the
//! QuickXScan XPath evaluator. Push (rather than pull) keeps the shared
//! routines free of per-source lifetime plumbing and lets sources stream
//! records from the buffer pool without materializing anything.

use crate::error::Result;
use crate::name::QNameId;
use crate::value::TypeAnn;

/// One virtual SAX event. String payloads are borrowed from the source's
/// buffer; sinks that need to keep them copy explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event<'a> {
    /// Document start.
    StartDocument,
    /// Element start. Attribute / namespace events follow immediately.
    StartElement {
        /// Interned qualified name.
        name: QNameId,
    },
    /// A namespace declaration in scope on the current element.
    NamespaceDecl {
        /// Interned prefix ("" for the default namespace).
        prefix: crate::name::StrId,
        /// Interned namespace URI.
        uri: crate::name::StrId,
    },
    /// An attribute of the current element.
    Attribute {
        /// Interned qualified name.
        name: QNameId,
        /// Attribute value (entities already resolved).
        value: &'a str,
        /// Optional schema type annotation.
        ann: TypeAnn,
    },
    /// A text node.
    Text {
        /// Character content.
        value: &'a str,
        /// Optional schema type annotation.
        ann: TypeAnn,
    },
    /// A comment node.
    Comment {
        /// Comment content.
        value: &'a str,
    },
    /// A processing instruction.
    Pi {
        /// Interned target name.
        target: QNameId,
        /// Instruction data.
        data: &'a str,
    },
    /// Element end.
    EndElement,
    /// Document end.
    EndDocument,
}

/// Anything that consumes virtual SAX events.
pub trait EventSink {
    /// Handle one event. Returning an error aborts the producing traversal.
    fn event(&mut self, ev: Event<'_>) -> Result<()>;
}

/// A sink that fans one event stream out to two sinks (used for pipelining,
/// e.g. packing records while simultaneously generating index keys).
pub struct Tee<'a, A: EventSink, B: EventSink> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: EventSink, B: EventSink> EventSink for Tee<'_, A, B> {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        self.a.event(ev)?;
        self.b.event(ev)
    }
}

/// A sink that counts events by kind — handy for tests and benchmarks.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventCounter {
    /// Element starts seen.
    pub elements: u64,
    /// Attributes seen.
    pub attributes: u64,
    /// Text nodes seen.
    pub texts: u64,
    /// Comments seen.
    pub comments: u64,
    /// Processing instructions seen.
    pub pis: u64,
    /// Namespace declarations seen.
    pub namespaces: u64,
}

impl EventCounter {
    /// Total node count (elements + attributes + texts + comments + PIs),
    /// the paper's `k`.
    pub fn nodes(&self) -> u64 {
        self.elements + self.attributes + self.texts + self.comments + self.pis
    }
}

impl EventSink for EventCounter {
    fn event(&mut self, ev: Event<'_>) -> Result<()> {
        match ev {
            Event::StartElement { .. } => self.elements += 1,
            Event::Attribute { .. } => self.attributes += 1,
            Event::Text { .. } => self.texts += 1,
            Event::Comment { .. } => self.comments += 1,
            Event::Pi { .. } => self.pis += 1,
            Event::NamespaceDecl { .. } => self.namespaces += 1,
            _ => {}
        }
        Ok(())
    }
}
