//! The wire protocol: framed binary messages, in two versions.
//!
//! **v1 (lockstep)** frames are a little-endian `u32` payload length
//! followed by the payload — one request in flight per connection.
//!
//! **v2 (multiplexed streams)** frames carry a stream id and a flags byte
//! between the length and the payload: `u32 len · u32 stream_id · u8 flags
//! · payload`. Many logical sessions share one connection, each request is
//! tagged with its stream, and responses may return out of order. A
//! connection opens with a v1-framed [`Hello`] handshake that negotiates
//! the version (and per-connection stream budget), so v1 clients that skip
//! the handshake keep working unchanged.
//!
//! Request payloads start with an opcode byte, response payloads with a
//! status byte; all field encoding reuses the storage layer's
//! [`Enc`]/[`Dec`] codec, so the TCP listener and the in-process channel
//! transport share one byte format by construction. [`FrameCodec`] owns
//! the length/stream framing for both versions and enforces a configurable
//! `max_frame_bytes` so a corrupt length prefix is a protocol error, not
//! an allocation attempt.

use crate::stats::StatsSnapshot;
use rx_engine::{ColValue, Row};
use rx_storage::codec::{Dec, Enc};
use std::io::{self, Read, Write};

/// Default upper bound on a frame payload; anything larger is a protocol
/// error (protects both sides from a bad length prefix). Tune per server /
/// client with [`crate::ServerConfig::max_frame_bytes`] and
/// [`crate::ConnectOptions::max_frame_bytes`].
pub const MAX_FRAME: usize = 64 << 20;

/// Highest protocol version this build speaks.
pub const PROTO_MAX_VERSION: u8 = 2;

/// Frame flag: the sender is done with this stream; the server closes the
/// stream's session (rolling back any open transaction). Carried on an
/// empty payload, answered with nothing.
pub const FLAG_END_STREAM: u8 = 0x01;

// Request opcodes.
const OP_BEGIN: u8 = 1;
const OP_COMMIT: u8 = 2;
const OP_ROLLBACK: u8 = 3;
const OP_INSERT: u8 = 4;
const OP_FETCH: u8 = 5;
const OP_DELETE: u8 = 6;
const OP_QUERY: u8 = 7;
const OP_STATS: u8 = 8;
const OP_PING: u8 = 9;
const OP_SLEEP: u8 = 10;
/// Handshake opcode: the first payload byte of a [`Hello`]. Public so the
/// connection handler can recognise a handshake without decoding twice.
pub const OP_HELLO: u8 = 11;

// Response status bytes.
const ST_UNIT: u8 = 0;
const ST_DOC: u8 = 1;
const ST_ROW: u8 = 2;
const ST_DELETED: u8 = 3;
const ST_HITS: u8 = 4;
const ST_STATS: u8 = 5;
const ST_PONG: u8 = 6;
/// Handshake reply status: the first payload byte of a [`HelloAck`].
pub const ST_HELLO: u8 = 7;
const ST_ERROR: u8 = 255;

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open an explicit transaction on this session.
    Begin,
    /// Commit the session's open transaction.
    Commit,
    /// Roll back the session's open transaction.
    Rollback,
    /// Insert one row (XML columns are parsed/validated server-side).
    InsertRow {
        /// Target table.
        table: String,
        /// One value per column.
        values: Vec<ColValue>,
    },
    /// Fetch a base row by DocID (S-locks the document).
    FetchRow {
        /// Target table.
        table: String,
        /// Document id.
        doc: u64,
    },
    /// Delete a row and its documents by DocID.
    DeleteRow {
        /// Target table.
        table: String,
        /// Document id.
        doc: u64,
    },
    /// Evaluate an XPath over one XML column via the access layer
    /// (index-driven where possible, §5.1 DocID S-locking).
    Query {
        /// Target table.
        table: String,
        /// XML column name.
        column: String,
        /// XPath text.
        path: String,
    },
    /// Admin: snapshot server + engine counters.
    Stats,
    /// Liveness check.
    Ping,
    /// Diagnostic: occupy a worker slot for `millis` (used by the
    /// admission-control tests; cheap to keep in the protocol).
    Sleep {
        /// How long the worker sleeps.
        millis: u32,
    },
}

/// One query match on the wire (node IDs stay server-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Owning document.
    pub doc: u64,
    /// String value of the matched node.
    pub value: String,
}

/// Machine-readable failure class, carried alongside the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The admission queue is full; retry later.
    Busy = 1,
    /// The server is draining; no new work accepted.
    ShuttingDown = 2,
    /// The session was reaped after idling past the timeout.
    SessionExpired = 3,
    /// Named object not found.
    NotFound = 4,
    /// Named object already exists.
    AlreadyExists = 5,
    /// Lock wait timed out.
    LockTimeout = 6,
    /// Chosen as a deadlock victim.
    Deadlock = 7,
    /// Invalid argument or transaction-state misuse.
    Invalid = 8,
    /// Malformed frame or unknown opcode.
    Protocol = 9,
    /// Anything else.
    Internal = 10,
    /// The handshake requested a protocol version this server cannot speak.
    UnsupportedVersion = 11,
}

impl ErrorCode {
    fn from_u8(v: u8) -> ErrorCode {
        use ErrorCode::*;
        match v {
            1 => Busy,
            2 => ShuttingDown,
            3 => SessionExpired,
            4 => NotFound,
            5 => AlreadyExists,
            6 => LockTimeout,
            7 => Deadlock,
            8 => Invalid,
            9 => Protocol,
            11 => UnsupportedVersion,
            _ => Internal,
        }
    }
}

/// An error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success with no payload (begin/commit/rollback/sleep).
    Unit,
    /// DocID of an inserted row.
    Doc(u64),
    /// A fetched row, or `None` when the DocID is unknown.
    Row(Option<Row>),
    /// Whether a delete removed a row.
    Deleted(bool),
    /// Query matches.
    Hits(Vec<Hit>),
    /// Counter snapshot (boxed: it is far larger than the other variants).
    Stats(Box<StatsSnapshot>),
    /// Liveness reply.
    Pong,
    /// Failure.
    Error(WireError),
}

fn enc_col_value(e: &mut Enc, v: &ColValue) {
    match v {
        ColValue::Str(s) => {
            e.u8(0).str(s);
        }
        ColValue::Xml(s) => {
            e.u8(1).str(s);
        }
        ColValue::XmlValidated { text, schema } => {
            e.u8(2).str(text).str(schema);
        }
    }
}

fn dec_col_value(d: &mut Dec) -> Result<ColValue, String> {
    let tag = d.u8().map_err(|e| e.to_string())?;
    let text = d.str().map_err(|e| e.to_string())?.to_string();
    Ok(match tag {
        0 => ColValue::Str(text),
        1 => ColValue::Xml(text),
        2 => ColValue::XmlValidated {
            text,
            schema: d.str().map_err(|e| e.to_string())?.to_string(),
        },
        t => return Err(format!("unknown column value tag {t}")),
    })
}

impl Request {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Begin => {
                e.u8(OP_BEGIN);
            }
            Request::Commit => {
                e.u8(OP_COMMIT);
            }
            Request::Rollback => {
                e.u8(OP_ROLLBACK);
            }
            Request::InsertRow { table, values } => {
                e.u8(OP_INSERT).str(table).varint(values.len() as u64);
                for v in values {
                    enc_col_value(&mut e, v);
                }
            }
            Request::FetchRow { table, doc } => {
                e.u8(OP_FETCH).str(table).u64(*doc);
            }
            Request::DeleteRow { table, doc } => {
                e.u8(OP_DELETE).str(table).u64(*doc);
            }
            Request::Query {
                table,
                column,
                path,
            } => {
                e.u8(OP_QUERY).str(table).str(column).str(path);
            }
            Request::Stats => {
                e.u8(OP_STATS);
            }
            Request::Ping => {
                e.u8(OP_PING);
            }
            Request::Sleep { millis } => {
                e.u8(OP_SLEEP).u32(*millis);
            }
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let mut d = Dec::new(payload);
        let op = d.u8().map_err(|e| e.to_string())?;
        let req = match op {
            OP_BEGIN => Request::Begin,
            OP_COMMIT => Request::Commit,
            OP_ROLLBACK => Request::Rollback,
            OP_INSERT => {
                let table = d.str().map_err(|e| e.to_string())?.to_string();
                let n = d.varint().map_err(|e| e.to_string())? as usize;
                let mut values = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    values.push(dec_col_value(&mut d)?);
                }
                Request::InsertRow { table, values }
            }
            OP_FETCH => Request::FetchRow {
                table: d.str().map_err(|e| e.to_string())?.to_string(),
                doc: d.u64().map_err(|e| e.to_string())?,
            },
            OP_DELETE => Request::DeleteRow {
                table: d.str().map_err(|e| e.to_string())?.to_string(),
                doc: d.u64().map_err(|e| e.to_string())?,
            },
            OP_QUERY => Request::Query {
                table: d.str().map_err(|e| e.to_string())?.to_string(),
                column: d.str().map_err(|e| e.to_string())?.to_string(),
                path: d.str().map_err(|e| e.to_string())?.to_string(),
            },
            OP_STATS => Request::Stats,
            OP_PING => Request::Ping,
            OP_SLEEP => Request::Sleep {
                millis: d.u32().map_err(|e| e.to_string())?,
            },
            op => return Err(format!("unknown request opcode {op}")),
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after request", d.remaining()));
        }
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Response::Unit => {
                e.u8(ST_UNIT);
            }
            Response::Doc(doc) => {
                e.u8(ST_DOC).u64(*doc);
            }
            Response::Row(row) => {
                e.u8(ST_ROW);
                match row {
                    None => {
                        e.u8(0);
                    }
                    Some(r) => {
                        e.u8(1).u64(r.doc).varint(r.values.len() as u64);
                        for v in &r.values {
                            e.str(v);
                        }
                    }
                }
            }
            Response::Deleted(ok) => {
                e.u8(ST_DELETED).u8(u8::from(*ok));
            }
            Response::Hits(hits) => {
                e.u8(ST_HITS).varint(hits.len() as u64);
                for h in hits {
                    e.u64(h.doc).str(&h.value);
                }
            }
            Response::Stats(s) => {
                e.u8(ST_STATS);
                s.encode(&mut e);
            }
            Response::Pong => {
                e.u8(ST_PONG);
            }
            Response::Error(err) => {
                e.u8(ST_ERROR).u8(err.code as u8).str(&err.message);
            }
        }
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let mut d = Dec::new(payload);
        let st = d.u8().map_err(|e| e.to_string())?;
        let resp = match st {
            ST_UNIT => Response::Unit,
            ST_DOC => Response::Doc(d.u64().map_err(|e| e.to_string())?),
            ST_ROW => {
                if d.u8().map_err(|e| e.to_string())? == 0 {
                    Response::Row(None)
                } else {
                    let doc = d.u64().map_err(|e| e.to_string())?;
                    let n = d.varint().map_err(|e| e.to_string())? as usize;
                    let mut values = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        values.push(d.str().map_err(|e| e.to_string())?.to_string());
                    }
                    Response::Row(Some(Row { doc, values }))
                }
            }
            ST_DELETED => Response::Deleted(d.u8().map_err(|e| e.to_string())? != 0),
            ST_HITS => {
                let n = d.varint().map_err(|e| e.to_string())? as usize;
                let mut hits = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    hits.push(Hit {
                        doc: d.u64().map_err(|e| e.to_string())?,
                        value: d.str().map_err(|e| e.to_string())?.to_string(),
                    });
                }
                Response::Hits(hits)
            }
            ST_STATS => Response::Stats(Box::new(StatsSnapshot::decode(&mut d)?)),
            ST_PONG => Response::Pong,
            ST_ERROR => Response::Error(WireError {
                code: ErrorCode::from_u8(d.u8().map_err(|e| e.to_string())?),
                message: d.str().map_err(|e| e.to_string())?.to_string(),
            }),
            st => return Err(format!("unknown response status {st}")),
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after response", d.remaining()));
        }
        Ok(resp)
    }
}

/// Wire protocol versions a connection can speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoVersion {
    /// Length-prefixed lockstep frames, one request in flight.
    V1,
    /// Multiplexed streams: frames carry `(stream_id, flags)`.
    V2,
}

/// One protocol frame. In v1 `stream` and `flags` are always zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The logical stream this frame belongs to (0 in v1).
    pub stream: u32,
    /// Frame flags ([`FLAG_END_STREAM`]); 0 in v1.
    pub flags: u8,
    /// The request/response payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A data frame carrying `payload` on `stream`.
    pub fn data(stream: u32, payload: Vec<u8>) -> Frame {
        Frame {
            stream,
            flags: 0,
            payload,
        }
    }

    /// An empty end-of-stream frame: the sender is done with `stream`.
    pub fn end_stream(stream: u32) -> Frame {
        Frame {
            stream,
            flags: FLAG_END_STREAM,
            payload: Vec::new(),
        }
    }
}

/// Owns the length/stream framing for both protocol versions: length
/// prefixes, the v2 stream header, and the `max_frame_bytes` bound that
/// turns a corrupt length prefix into a protocol error instead of an
/// allocation attempt. Every frame on a connection — TCP handler, channel
/// transport, client — goes through one of these.
#[derive(Debug, Clone)]
pub struct FrameCodec {
    version: ProtoVersion,
    max_frame: usize,
}

impl FrameCodec {
    /// A codec for `version` rejecting payloads larger than `max_frame`.
    pub fn new(version: ProtoVersion, max_frame: usize) -> FrameCodec {
        FrameCodec { version, max_frame }
    }

    /// A v1 (lockstep) codec.
    pub fn v1(max_frame: usize) -> FrameCodec {
        FrameCodec::new(ProtoVersion::V1, max_frame)
    }

    /// A v2 (multiplexed streams) codec.
    pub fn v2(max_frame: usize) -> FrameCodec {
        FrameCodec::new(ProtoVersion::V2, max_frame)
    }

    /// The version this codec frames.
    pub fn version(&self) -> ProtoVersion {
        self.version
    }

    /// The payload size bound enforced on both reads and writes.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Write one frame. v1 cannot carry stream ids or flags; passing a
    /// nonzero one there is an `InvalidInput` error (it would silently drop
    /// routing information).
    pub fn write<W: Write>(&self, w: &mut W, frame: &Frame) -> io::Result<()> {
        if frame.payload.len() > self.max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame of {} bytes exceeds the {} byte limit",
                    frame.payload.len(),
                    self.max_frame
                ),
            ));
        }
        let mut buf = Vec::with_capacity(9 + frame.payload.len());
        buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
        match self.version {
            ProtoVersion::V1 => {
                if frame.stream != 0 || frame.flags != 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        "v1 frames cannot carry a stream id or flags",
                    ));
                }
            }
            ProtoVersion::V2 => {
                buf.extend_from_slice(&frame.stream.to_le_bytes());
                buf.push(frame.flags);
            }
        }
        buf.extend_from_slice(&frame.payload);
        // One write_all so channel transports see whole frames per chunk.
        w.write_all(&buf)?;
        w.flush()
    }

    /// Read one frame. `Ok(None)` on clean EOF at a frame boundary.
    pub fn read<R: Read>(&self, r: &mut R) -> io::Result<Option<Frame>> {
        let mut len = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match r.read(&mut len[filled..]) {
                Ok(0) => {
                    return if filled == 0 {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "EOF inside frame header",
                        ))
                    };
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        let n = u32::from_le_bytes(len) as usize;
        if n > self.max_frame {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "frame of {n} bytes exceeds the {} byte limit",
                    self.max_frame
                ),
            ));
        }
        let (stream, flags) = match self.version {
            ProtoVersion::V1 => (0, 0),
            ProtoVersion::V2 => {
                let mut head = [0u8; 5];
                r.read_exact(&mut head)?;
                (
                    u32::from_le_bytes([head[0], head[1], head[2], head[3]]),
                    head[4],
                )
            }
        };
        let mut payload = vec![0u8; n];
        r.read_exact(&mut payload)?;
        Ok(Some(Frame {
            stream,
            flags,
            payload,
        }))
    }
}

/// The client half of the version handshake, sent v1-framed as the very
/// first message of a connection that wants v2. (v1 clients skip it; their
/// first payload byte is an ordinary request opcode, never [`OP_HELLO`].)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Highest protocol version the client speaks.
    pub version: u8,
    /// How many concurrent streams the client wants on this connection.
    pub max_streams: u32,
    /// The client's frame-payload read bound, advertised so the peer can
    /// avoid writing frames the client would reject.
    pub max_frame: u64,
}

impl Hello {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(OP_HELLO)
            .u8(self.version)
            .u32(self.max_streams)
            .u64(self.max_frame);
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Hello, String> {
        let mut d = Dec::new(payload);
        let op = d.u8().map_err(|e| e.to_string())?;
        if op != OP_HELLO {
            return Err(format!("expected hello opcode {OP_HELLO}, got {op}"));
        }
        let h = Hello {
            version: d.u8().map_err(|e| e.to_string())?,
            max_streams: d.u32().map_err(|e| e.to_string())?,
            max_frame: d.u64().map_err(|e| e.to_string())?,
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after hello", d.remaining()));
        }
        Ok(h)
    }
}

/// The server half of the handshake: the negotiated version (which may be
/// lower than the client asked for — the explicit downgrade path), the
/// granted per-connection stream budget, and the server's frame bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The version the connection will speak from here on.
    pub version: u8,
    /// Concurrent in-flight requests granted to this connection; the
    /// server answers `Busy` per stream beyond it.
    pub max_streams: u32,
    /// The server's frame-payload read bound.
    pub max_frame: u64,
}

impl HelloAck {
    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(ST_HELLO)
            .u8(self.version)
            .u32(self.max_streams)
            .u64(self.max_frame);
        e.into_bytes()
    }

    /// Decode from a frame payload.
    pub fn decode(payload: &[u8]) -> Result<HelloAck, String> {
        let mut d = Dec::new(payload);
        let st = d.u8().map_err(|e| e.to_string())?;
        if st != ST_HELLO {
            return Err(format!("expected hello-ack status {ST_HELLO}, got {st}"));
        }
        let a = HelloAck {
            version: d.u8().map_err(|e| e.to_string())?,
            max_streams: d.u32().map_err(|e| e.to_string())?,
            max_frame: d.u64().map_err(|e| e.to_string())?,
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after hello-ack", d.remaining()));
        }
        Ok(a)
    }
}

/// Write one v1 frame: `u32` little-endian payload length, then the payload.
#[deprecated(note = "use FrameCodec, which owns framing for both versions")]
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    FrameCodec::v1(MAX_FRAME).write(w, &Frame::data(0, payload.to_vec()))
}

/// Read one v1 frame. `Ok(None)` on clean EOF at a frame boundary.
#[deprecated(note = "use FrameCodec, which owns framing for both versions")]
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    Ok(FrameCodec::v1(MAX_FRAME).read(r)?.map(|f| f.payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = vec![
            Request::Begin,
            Request::Commit,
            Request::Rollback,
            Request::InsertRow {
                table: "t".into(),
                values: vec![
                    ColValue::Str("a".into()),
                    ColValue::Xml("<r/>".into()),
                    ColValue::XmlValidated {
                        text: "<r/>".into(),
                        schema: "s".into(),
                    },
                ],
            },
            Request::FetchRow {
                table: "t".into(),
                doc: 7,
            },
            Request::DeleteRow {
                table: "t".into(),
                doc: 9,
            },
            Request::Query {
                table: "t".into(),
                column: "doc".into(),
                path: "/a/b".into(),
            },
            Request::Stats,
            Request::Ping,
            Request::Sleep { millis: 25 },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_round_trips() {
        let resps = vec![
            Response::Unit,
            Response::Doc(42),
            Response::Row(None),
            Response::Row(Some(Row {
                doc: 3,
                values: vec!["x".into(), String::new()],
            })),
            Response::Deleted(true),
            Response::Hits(vec![
                Hit {
                    doc: 1,
                    value: "v1".into(),
                },
                Hit {
                    doc: 2,
                    value: "v2".into(),
                },
            ]),
            Response::Pong,
            Response::Error(WireError {
                code: ErrorCode::Busy,
                message: "queue full".into(),
            }),
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn v1_frames_round_trip_over_a_buffer() {
        let codec = FrameCodec::v1(MAX_FRAME);
        let mut buf = Vec::new();
        codec
            .write(&mut buf, &Frame::data(0, b"hello".to_vec()))
            .unwrap();
        codec.write(&mut buf, &Frame::data(0, Vec::new())).unwrap();
        let mut r = &buf[..];
        assert_eq!(codec.read(&mut r).unwrap().unwrap().payload, b"hello");
        assert_eq!(codec.read(&mut r).unwrap().unwrap().payload, b"");
        assert!(codec.read(&mut r).unwrap().is_none());
    }

    #[test]
    fn v2_frames_carry_stream_and_flags() {
        let codec = FrameCodec::v2(MAX_FRAME);
        let mut buf = Vec::new();
        codec
            .write(&mut buf, &Frame::data(7, b"payload".to_vec()))
            .unwrap();
        codec.write(&mut buf, &Frame::end_stream(9)).unwrap();
        let mut r = &buf[..];
        let f = codec.read(&mut r).unwrap().unwrap();
        assert_eq!((f.stream, f.flags, &f.payload[..]), (7, 0, &b"payload"[..]));
        let f = codec.read(&mut r).unwrap().unwrap();
        assert_eq!(
            (f.stream, f.flags, f.payload.len()),
            (9, FLAG_END_STREAM, 0)
        );
        assert!(codec.read(&mut r).unwrap().is_none());
    }

    #[test]
    fn v1_refuses_stream_ids() {
        let codec = FrameCodec::v1(MAX_FRAME);
        let mut buf = Vec::new();
        assert!(codec.write(&mut buf, &Frame::data(1, Vec::new())).is_err());
    }

    #[test]
    fn oversized_frame_rejected_on_read_and_write() {
        for codec in [FrameCodec::v1(1024), FrameCodec::v2(1024)] {
            // Read side: a corrupt length prefix is a protocol error, not an
            // allocation attempt.
            let mut buf = Vec::new();
            buf.extend_from_slice(&(u32::MAX).to_le_bytes());
            let mut r = &buf[..];
            let err = codec.read(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            // Write side: never emit a frame the configured peer bound
            // would reject.
            let mut out = Vec::new();
            assert!(codec
                .write(&mut out, &Frame::data(0, vec![0u8; 2048]))
                .is_err());
            // At the bound is fine.
            codec
                .write(&mut out, &Frame::data(0, vec![0u8; 1024]))
                .unwrap();
        }
    }

    #[test]
    fn hello_and_ack_round_trip() {
        let h = Hello {
            version: 2,
            max_streams: 16,
            max_frame: 1 << 20,
        };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
        let a = HelloAck {
            version: 2,
            max_streams: 8,
            max_frame: 64 << 20,
        };
        assert_eq!(HelloAck::decode(&a.encode()).unwrap(), a);
        // A hello is never a valid request, and vice versa.
        assert!(Request::decode(&h.encode()).is_err());
        assert!(Hello::decode(&Request::Ping.encode()).is_err());
        // Trailing bytes are a protocol error.
        let mut p = h.encode();
        p.push(0);
        assert!(Hello::decode(&p).is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_frame_helpers_still_speak_v1() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        // Byte-identical to the codec's v1 framing.
        let mut via_codec = Vec::new();
        FrameCodec::v1(MAX_FRAME)
            .write(&mut via_codec, &Frame::data(0, b"hello".to_vec()))
            .unwrap();
        assert_eq!(buf, via_codec);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(&[200]).is_err());
        assert!(Response::decode(&[77]).is_err());
        // Trailing bytes are a protocol error.
        let mut p = Request::Ping.encode();
        p.push(0);
        assert!(Request::decode(&p).is_err());
    }
}
