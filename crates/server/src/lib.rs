//! rx-server: the concurrent service layer for System R/X.
//!
//! Fronts an [`rx_engine::Database`] with a session-oriented request/response
//! protocol (Zhang 2005 §2's "database as a service" deployment shape):
//!
//! - **Wire protocol** ([`proto`]): length-prefixed binary frames over any
//!   byte stream. Protocol v2 multiplexes many streams over one connection
//!   (frames tagged with a stream id); v1 is the legacy lockstep dialect,
//!   negotiated — or simply assumed by old clients — at connection open.
//! - **Sessions** ([`session`]): one session per v1 connection or per v2
//!   stream, owning at most one open transaction, autocommit otherwise,
//!   idle-timeout reaping.
//! - **Admission control** ([`server`]): a fixed worker pool behind a
//!   bounded queue; overload answers `Busy` instead of queueing unboundedly.
//!   v2 adds a per-connection `max_streams` in-flight budget on top.
//! - **Transports** ([`transport`]): a TCP listener and an in-process
//!   channel client that share the frame codec and connection handler by
//!   construction; both split into reader/writer halves for multiplexing.
//! - **Clients** ([`client`]): the pipelined [`Connection`]/[`Session`] API
//!   and the blocking [`Client`], now a single-session wrapper over it.
//! - **Stats** ([`stats`]): request counters and per-class log2 latency
//!   histograms, merged with the engine's [`rx_engine::DbStats`].

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod session;
pub mod stats;
pub mod transport;

pub use client::{Client, ClientError, ConnectOptions, Connection, Session};
pub use proto::{
    ErrorCode, Frame, FrameCodec, Hello, HelloAck, Hit, ProtoVersion, Request, Response, WireError,
};
pub use server::{connect_tcp, connect_tcp_multiplexed, connect_tcp_v1, Server, ServerConfig};
pub use session::{SessionError, SessionManager};
pub use stats::{LatencySnapshot, ReqClass, StatsSnapshot};
pub use transport::{ChannelStream, Closer, Transport};
