//! rx-server: the concurrent service layer for System R/X.
//!
//! Fronts an [`rx_engine::Database`] with a session-oriented request/response
//! protocol (Zhang 2005 §2's "database as a service" deployment shape):
//!
//! - **Wire protocol** ([`proto`]): length-prefixed binary frames over any
//!   `Read + Write` byte stream.
//! - **Sessions** ([`session`]): one session per connection owning at most
//!   one open transaction, autocommit otherwise, idle-timeout reaping.
//! - **Admission control** ([`server`]): a fixed worker pool behind a
//!   bounded queue; overload answers `Busy` instead of queueing unboundedly.
//! - **Transports**: a TCP listener and an in-process channel client that
//!   share the frame codec and connection handler by construction.
//! - **Stats** ([`stats`]): request counters and per-class log2 latency
//!   histograms, merged with the engine's [`rx_engine::DbStats`].

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;
pub mod session;
pub mod stats;

pub use client::{Client, ClientError};
pub use proto::{ErrorCode, Hit, Request, Response, WireError};
pub use server::{connect_tcp, ChannelStream, Server, ServerConfig};
pub use session::{SessionError, SessionManager};
pub use stats::{LatencySnapshot, ReqClass, StatsSnapshot};
