//! The server: a fixed worker pool behind a bounded admission queue,
//! per-connection handler threads that demultiplex protocol-v2 streams, a
//! TCP listener, an in-process channel transport, and graceful shutdown.
//!
//! Life of a connection: the handler reads the first frame v1-framed. A
//! [`Hello`] negotiates protocol v2 (or an explicit downgrade to v1);
//! anything else is a v1 client running today's lockstep loop unchanged.
//!
//! Life of a v2 request: the handler decodes frames off the socket and
//! dispatches each stream's request as an independent job on the worker
//! pool — one session per stream, so per-stream transaction state lives in
//! the [`SessionManager`] like any other session. A writer mutex
//! serializes responses back; completions may return out of order, tagged
//! by stream id. Two backpressure layers answer `Busy` per-stream instead
//! of stalling the socket: the per-connection `max_streams` in-flight
//! budget and the global admission queue.
//!
//! Shutdown: new requests and connections are refused, queued work drains,
//! every connection is force-closed, handler threads exit (closing their
//! sessions), and any session that still holds a transaction is rolled
//! back.

use crate::proto::{
    self, ErrorCode, Frame, FrameCodec, Hello, HelloAck, Hit, Request, Response, WireError,
    FLAG_END_STREAM,
};
use crate::session::{SessionError, SessionManager};
use crate::stats::{ReqClass, ServerCounters, StatsSnapshot};
use crate::transport::{ChannelStream, Transport};
use parking_lot::{Condvar, Mutex};
use rx_engine::{Database, EngineError};
use rx_xpath::XPathParser;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it get `Busy`.
    pub queue_depth: usize,
    /// Sessions idle longer than this are reaped (open txns rolled back).
    pub idle_timeout: Duration,
    /// Upper bound on concurrent in-flight requests per v2 connection;
    /// a `Hello` may ask for less, never more. Requests beyond the budget
    /// are answered `Busy` on their stream.
    pub max_streams: u32,
    /// Frame-payload read bound; larger length prefixes are a protocol
    /// error instead of an allocation attempt.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(30),
            max_streams: 32,
            max_frame_bytes: proto::MAX_FRAME,
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// Why a submission was refused.
enum Refused {
    Busy,
    ShuttingDown,
}

struct Inner {
    db: Arc<Database>,
    sessions: SessionManager,
    counters: ServerCounters,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_depth: usize,
    max_streams: u32,
    max_frame: usize,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    /// One force-close hook per live connection.
    closers: Mutex<Vec<Box<dyn Fn() + Send>>>,
    /// Worker / acceptor / reaper / handler threads, joined on shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn submit(&self, job: Job) -> Result<(), Refused> {
        let mut q = self.queue.lock();
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(Refused::ShuttingDown);
        }
        if q.len() >= self.queue_depth {
            return Err(Refused::Busy);
        }
        q.push_back(job);
        drop(q);
        self.queue_cv.notify_one();
        Ok(())
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    self.queue_cv.wait(&mut q);
                }
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            job();
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaves threads running until process exit; call shutdown for a clean
/// drain.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Start workers and the session reaper. No listener yet — use
    /// [`Server::listen`] for TCP and/or [`Server::connect`] for in-process
    /// clients.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Arc<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_depth >= 1, "need a positive queue depth");
        assert!(config.max_streams >= 1, "need at least one stream");
        assert!(
            config.max_frame_bytes >= 1024,
            "max_frame_bytes below 1 KiB cannot carry real requests"
        );
        let inner = Arc::new(Inner {
            db,
            sessions: SessionManager::new(config.idle_timeout),
            counters: ServerCounters::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth,
            max_streams: config.max_streams,
            max_frame: config.max_frame_bytes,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            closers: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        for i in 0..config.workers {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rx-worker-{i}"))
                    .spawn(move || inner2.worker_loop())
                    .expect("spawn worker"),
            );
        }
        // Session reaper: poll a few times per idle window.
        let reap_every =
            (config.idle_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("rx-reaper".into())
                    .spawn(move || loop {
                        std::thread::sleep(reap_every);
                        if inner2.shutting_down.load(Ordering::SeqCst) {
                            return;
                        }
                        let n = inner2.sessions.expire_idle();
                        if n > 0 {
                            inner2
                                .counters
                                .sessions_expired
                                .fetch_add(n, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn reaper"),
            );
        }
        inner.handles.lock().extend(handles);
        Arc::new(Server { inner })
    }

    /// The database this server fronts.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// Bind a TCP listener and accept connections until shutdown. Returns
    /// the bound address (use port 0 for an ephemeral port).
    pub fn listen(&self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("rx-acceptor".into())
            .spawn(move || loop {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            inner.closers.lock().push(Box::new(move || {
                                let _ = clone.shutdown(std::net::Shutdown::Both);
                            }));
                        }
                        let inner2 = Arc::clone(&inner);
                        let h = std::thread::Builder::new()
                            .name("rx-conn".into())
                            .spawn(move || serve_connection(&inner2, stream))
                            .expect("spawn connection handler");
                        inner.handles.lock().push(h);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })?;
        self.inner.handles.lock().push(handle);
        Ok(local)
    }

    /// Open the in-process byte channel pair and spawn a connection handler
    /// for the server side; returns the client side.
    fn open_channel(&self) -> io::Result<ChannelStream> {
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server is shutting down",
            ));
        }
        let (c2s_tx, c2s_rx) = mpsc::channel::<Vec<u8>>();
        let (s2c_tx, s2c_rx) = mpsc::channel::<Vec<u8>>();
        let closed = Arc::new(AtomicBool::new(false));
        let server_side = ChannelStream::new(s2c_tx, c2s_rx, Arc::clone(&closed));
        let client_side = ChannelStream::new(c2s_tx, s2c_rx, Arc::clone(&closed));
        {
            let closed = Arc::clone(&closed);
            self.inner
                .closers
                .lock()
                .push(Box::new(move || closed.store(true, Ordering::SeqCst)));
        }
        let inner = Arc::clone(&self.inner);
        let h = std::thread::Builder::new()
            .name("rx-conn-inproc".into())
            .spawn(move || serve_connection(&inner, server_side))?;
        self.inner.handles.lock().push(h);
        Ok(client_side)
    }

    /// Open an in-process connection speaking the exact same frame codec as
    /// TCP, over a pair of byte channels. Negotiates protocol v2 and wraps
    /// a single session — the drop-in blocking client.
    pub fn connect(&self) -> io::Result<crate::client::Client<ChannelStream>> {
        let stream = self.open_channel()?;
        crate::client::Client::connect(stream).map_err(client_to_io)
    }

    /// Open an in-process connection on the legacy v1 lockstep path (no
    /// handshake) — the compatibility route old clients take.
    pub fn connect_v1(&self) -> io::Result<crate::client::Client<ChannelStream>> {
        let stream = self.open_channel()?;
        crate::client::Client::v1(stream).map_err(client_to_io)
    }

    /// Open an in-process multiplexed connection: one socket-equivalent,
    /// many concurrent [`crate::client::Session`]s.
    pub fn connect_multiplexed(
        &self,
        opts: crate::client::ConnectOptions,
    ) -> io::Result<crate::client::Connection> {
        let stream = self.open_channel()?;
        crate::client::Connection::establish(stream, opts).map_err(client_to_io)
    }

    /// Current counter snapshot (same data the wire `stats` request
    /// returns).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.inner)
    }

    /// Graceful shutdown: refuse new work, drain queued and in-flight
    /// requests, force-close every connection, join all threads, and roll
    /// back whatever sessions remain. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.queue_cv.notify_all();
        // Drain: workers finish everything already admitted.
        let drain_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let empty = self.inner.queue.lock().is_empty();
            if empty && self.inner.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            if Instant::now() > drain_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Unblock connection handlers so they can exit and close sessions.
        for closer in self.inner.closers.lock().drain(..) {
            closer();
        }
        loop {
            let handle = self.inner.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // Anything still open (e.g. sessions whose connection died earlier)
        // is rolled back so no lock outlives the server.
        self.inner.sessions.rollback_all();
    }
}

/// Map a client-side establishment failure into the `io::Result` the
/// connect helpers promise.
fn client_to_io(e: crate::client::ClientError) -> io::Error {
    io::Error::other(e)
}

fn snapshot(inner: &Inner) -> StatsSnapshot {
    StatsSnapshot {
        requests_total: inner.counters.requests_total.load(Ordering::Relaxed),
        requests_rejected: inner.counters.requests_rejected.load(Ordering::Relaxed),
        requests_errored: inner.counters.requests_errored.load(Ordering::Relaxed),
        requests_in_flight: inner.in_flight.load(Ordering::SeqCst) as u64,
        requests_queued: inner.queue.lock().len() as u64,
        sessions_opened: inner.counters.sessions_opened.load(Ordering::Relaxed),
        sessions_expired: inner.counters.sessions_expired.load(Ordering::Relaxed),
        sessions_active: inner.sessions.active(),
        connections_v1: inner.counters.connections_v1.load(Ordering::Relaxed),
        connections_v2: inner.counters.connections_v2.load(Ordering::Relaxed),
        streams_opened: inner.counters.streams_opened.load(Ordering::Relaxed),
        ooo_completions: inner.counters.ooo_completions.load(Ordering::Relaxed),
        latency: std::array::from_fn(|i| inner.counters.latency[i].snapshot()),
        db: inner.db.stats(),
    }
}

fn class_of(req: &Request) -> ReqClass {
    match req {
        Request::Begin | Request::Commit | Request::Rollback => ReqClass::Txn,
        Request::InsertRow { .. } | Request::DeleteRow { .. } => ReqClass::Write,
        Request::FetchRow { .. } | Request::Query { .. } => ReqClass::Read,
        Request::Stats | Request::Ping | Request::Sleep { .. } => ReqClass::Admin,
    }
}

fn engine_error_response(e: &EngineError) -> Response {
    use rx_storage::StorageError;
    let (code, message) = match e {
        EngineError::NotFound { .. } => (ErrorCode::NotFound, e.to_string()),
        EngineError::AlreadyExists { .. } => (ErrorCode::AlreadyExists, e.to_string()),
        EngineError::Invalid(_) => (ErrorCode::Invalid, e.to_string()),
        EngineError::Storage(StorageError::LockTimeout) => (ErrorCode::LockTimeout, e.to_string()),
        EngineError::Storage(StorageError::Deadlock) => (ErrorCode::Deadlock, e.to_string()),
        EngineError::Xml(_) | EngineError::XPath(_) => (ErrorCode::Invalid, e.to_string()),
        _ => (ErrorCode::Internal, e.to_string()),
    };
    Response::Error(WireError { code, message })
}

fn session_error_response(e: SessionError) -> Response {
    match e {
        SessionError::Expired => Response::Error(WireError {
            code: ErrorCode::SessionExpired,
            message: "session expired (idle timeout) or closed".into(),
        }),
        SessionError::NoTxn => Response::Error(WireError {
            code: ErrorCode::Invalid,
            message: "no open transaction on this session".into(),
        }),
        SessionError::TxnOpen => Response::Error(WireError {
            code: ErrorCode::Invalid,
            message: "a transaction is already open on this session".into(),
        }),
        SessionError::Engine(e) => engine_error_response(&e),
    }
}

fn handle_request(inner: &Inner, session: u64, req: Request) -> Response {
    let db = &inner.db;
    let unit = |r: Result<(), SessionError>| match r {
        Ok(()) => Response::Unit,
        Err(e) => session_error_response(e),
    };
    match req {
        Request::Ping => Response::Pong,
        Request::Sleep { millis } => {
            std::thread::sleep(Duration::from_millis(u64::from(millis)));
            Response::Unit
        }
        Request::Stats => Response::Stats(Box::new(snapshot(inner))),
        Request::Begin => unit(inner.sessions.begin(session, db)),
        Request::Commit => unit(inner.sessions.commit(session)),
        Request::Rollback => unit(inner.sessions.rollback(session)),
        Request::InsertRow { table, values } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                db.insert_row_txn(txn, &t, &values)
            }) {
                Ok(doc) => Response::Doc(doc),
                Err(e) => session_error_response(e),
            }
        }
        Request::FetchRow { table, doc } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                // §5.1: S-lock the document so the fetch never observes a
                // partially written row.
                txn.lock(
                    &rx_storage::LockName::Table(t.def.id),
                    rx_storage::LockMode::IS,
                )?;
                txn.lock(
                    &rx_storage::LockName::Document {
                        table: t.def.id,
                        doc,
                    },
                    rx_storage::LockMode::S,
                )?;
                db.fetch_row(&t, doc)
            }) {
                Ok(row) => Response::Row(row),
                Err(e) => session_error_response(e),
            }
        }
        Request::DeleteRow { table, doc } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                db.delete_row_txn(txn, &t, doc)
            }) {
                Ok(ok) => Response::Deleted(ok),
                Err(e) => session_error_response(e),
            }
        }
        Request::Query {
            table,
            column,
            path,
        } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                let col = t.xml_column(&column)?;
                let p = XPathParser::new().parse(&path)?;
                let (hits, _stats) = db.query_locked(txn, &t, col, &p, false)?;
                Ok(hits
                    .into_iter()
                    .map(|h| Hit {
                        doc: h.doc,
                        value: h.value,
                    })
                    .collect::<Vec<Hit>>())
            }) {
                Ok(hits) => Response::Hits(hits),
                Err(e) => session_error_response(e),
            }
        }
    }
}

/// Serve one connection until EOF or shutdown. Generic over the transport
/// so TCP and the in-process channel run the exact same code path.
///
/// The first frame decides the dialect: a [`Hello`] negotiates v2 (or an
/// explicit downgrade to v1); any other payload is a v1 request from a
/// client that never heard of handshakes, served on the lockstep path with
/// that first request replayed.
fn serve_connection<T: Transport>(inner: &Arc<Inner>, stream: T) {
    let Ok((mut reader, mut writer, _closer)) = stream.into_split() else {
        return;
    };
    let v1 = FrameCodec::v1(inner.max_frame);
    let first = match v1.read(&mut reader) {
        Ok(Some(f)) => f,
        _ => return,
    };
    if first.payload.first() != Some(&proto::OP_HELLO) {
        serve_v1(inner, reader, writer, Some(first.payload));
        return;
    }
    let hello = match Hello::decode(&first.payload) {
        Ok(h) => h,
        Err(msg) => {
            let resp = Response::Error(WireError {
                code: ErrorCode::Protocol,
                message: msg,
            });
            let _ = v1.write(&mut writer, &Frame::data(0, resp.encode()));
            return;
        }
    };
    if hello.version == 0 {
        // Unknown version: refuse cleanly instead of desyncing the codec.
        let resp = Response::Error(WireError {
            code: ErrorCode::UnsupportedVersion,
            message: format!(
                "cannot negotiate protocol version {} (this server speaks 1..={})",
                hello.version,
                proto::PROTO_MAX_VERSION
            ),
        });
        let _ = v1.write(&mut writer, &Frame::data(0, resp.encode()));
        return;
    }
    let version = hello.version.min(proto::PROTO_MAX_VERSION);
    let max_streams = hello.max_streams.clamp(1, inner.max_streams);
    let ack = HelloAck {
        version,
        max_streams,
        max_frame: inner.max_frame as u64,
    };
    if v1
        .write(&mut writer, &Frame::data(0, ack.encode()))
        .is_err()
    {
        return;
    }
    if version == 1 {
        serve_v1(inner, reader, writer, None);
    } else {
        serve_v2(inner, reader, writer, max_streams);
    }
}

/// The legacy lockstep loop: one session per connection, one request in
/// flight, responses written by the handler thread itself. `first` replays
/// a request frame consumed while sniffing for a handshake.
fn serve_v1<R: Read, W: Write>(
    inner: &Arc<Inner>,
    mut reader: R,
    mut writer: W,
    mut first: Option<Vec<u8>>,
) {
    inner
        .counters
        .connections_v1
        .fetch_add(1, Ordering::Relaxed);
    let codec = FrameCodec::v1(inner.max_frame);
    let session = inner.sessions.open();
    inner
        .counters
        .sessions_opened
        .fetch_add(1, Ordering::Relaxed);
    loop {
        let payload = match first.take() {
            Some(p) => p,
            None => match codec.read(&mut reader) {
                Ok(Some(f)) => f.payload,
                _ => break,
            },
        };
        let started = Instant::now();
        inner
            .counters
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(msg) => {
                inner
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error(WireError {
                    code: ErrorCode::Protocol,
                    message: msg,
                });
                if codec
                    .write(&mut writer, &Frame::data(0, resp.encode()))
                    .is_err()
                {
                    break;
                }
                continue;
            }
        };
        let class = class_of(&req);
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        let job_inner = Arc::clone(inner);
        let submit = inner.submit(Box::new(move || {
            let resp = handle_request(&job_inner, session, req);
            let _ = reply_tx.send(resp);
        }));
        let resp = match submit {
            Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                Response::Error(WireError {
                    code: ErrorCode::Internal,
                    message: "worker dropped the request".into(),
                })
            }),
            Err(Refused::Busy) => {
                inner
                    .counters
                    .requests_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Response::Error(WireError {
                    code: ErrorCode::Busy,
                    message: "admission queue full".into(),
                })
            }
            Err(Refused::ShuttingDown) => Response::Error(WireError {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            }),
        };
        if matches!(resp, Response::Error(_)) {
            inner
                .counters
                .requests_errored
                .fetch_add(1, Ordering::Relaxed);
        }
        inner.counters.record_latency(class, started.elapsed());
        if codec
            .write(&mut writer, &Frame::data(0, resp.encode()))
            .is_err()
        {
            break;
        }
    }
    // EOF, IO error, or forced close: the session (and any open txn) dies
    // with the connection.
    inner.sessions.close(session);
}

/// Shared write side of one v2 connection: the writer mutex that
/// serializes responses, and the dispatch-order ledger behind the
/// out-of-order-completion counter and the `max_streams` budget.
struct V2Conn<W: Write> {
    writer: Mutex<W>,
    codec: FrameCodec,
    state: Mutex<V2State>,
}

struct V2State {
    next_seq: u64,
    /// Dispatch sequence → stream, for every admitted-but-unanswered
    /// request on this connection.
    in_flight: BTreeMap<u64, u32>,
}

impl<W: Write> V2Conn<W> {
    /// Serialize one response frame back to the client. Returns whether the
    /// connection is still writable (a dead connection just means the
    /// reader will notice EOF next).
    fn respond(&self, stream: u32, resp: &Response) -> bool {
        let frame = Frame::data(stream, resp.encode());
        self.codec.write(&mut *self.writer.lock(), &frame).is_ok()
    }

    /// Retire `seq` from the in-flight ledger. A retirement while an
    /// earlier-dispatched request is still in flight is an out-of-order
    /// completion (`count_ooo` is false on the Busy/refusal path, where
    /// nothing actually completed).
    fn retire(&self, seq: u64, inner: &Inner, count_ooo: bool) {
        let mut st = self.state.lock();
        let oldest = st.in_flight.keys().next().copied();
        st.in_flight.remove(&seq);
        if count_ooo && oldest.is_some_and(|o| o < seq) {
            inner
                .counters
                .ooo_completions
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The v2 demultiplexer: decode frames off the socket, dispatch each
/// stream's request as an independent job on the worker pool, and let the
/// jobs write their own responses (out of order, tagged by stream id)
/// through the shared writer.
fn serve_v2<R: Read, W: Write + Send + 'static>(
    inner: &Arc<Inner>,
    mut reader: R,
    writer: W,
    max_streams: u32,
) {
    inner
        .counters
        .connections_v2
        .fetch_add(1, Ordering::Relaxed);
    let conn = Arc::new(V2Conn {
        writer: Mutex::new(writer),
        codec: FrameCodec::v2(inner.max_frame),
        state: Mutex::new(V2State {
            next_seq: 0,
            in_flight: BTreeMap::new(),
        }),
    });
    // Stream id → session id; owned by this reader thread alone.
    let mut streams: HashMap<u32, u64> = HashMap::new();
    while let Ok(Some(frame)) = conn.codec.read(&mut reader) {
        let stream = frame.stream;
        if frame.flags & FLAG_END_STREAM != 0 {
            // The client is done with this stream: close its session (and
            // roll back any open transaction). No response.
            if let Some(sid) = streams.remove(&stream) {
                inner.sessions.close(sid);
            }
            continue;
        }
        let started = Instant::now();
        inner
            .counters
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(&frame.payload) {
            Ok(r) => r,
            Err(msg) => {
                inner
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error(WireError {
                    code: ErrorCode::Protocol,
                    message: msg,
                });
                if !conn.respond(stream, &resp) {
                    break;
                }
                continue;
            }
        };
        let session = match streams.get(&stream) {
            Some(&sid) => sid,
            None => {
                let sid = inner.sessions.open();
                inner
                    .counters
                    .sessions_opened
                    .fetch_add(1, Ordering::Relaxed);
                inner
                    .counters
                    .streams_opened
                    .fetch_add(1, Ordering::Relaxed);
                streams.insert(stream, sid);
                sid
            }
        };
        let class = class_of(&req);
        // Per-connection budget: admitting more than `max_streams`
        // concurrent requests answers Busy on the offending stream; the
        // socket itself never stalls and sibling streams proceed.
        let seq = {
            let mut st = conn.state.lock();
            if st.in_flight.len() >= max_streams as usize {
                None
            } else {
                let seq = st.next_seq;
                st.next_seq += 1;
                st.in_flight.insert(seq, stream);
                Some(seq)
            }
        };
        let Some(seq) = seq else {
            inner
                .counters
                .requests_rejected
                .fetch_add(1, Ordering::Relaxed);
            inner
                .counters
                .requests_errored
                .fetch_add(1, Ordering::Relaxed);
            inner.counters.record_latency(class, started.elapsed());
            let resp = Response::Error(WireError {
                code: ErrorCode::Busy,
                message: format!("connection stream budget ({max_streams}) exhausted"),
            });
            if !conn.respond(stream, &resp) {
                break;
            }
            continue;
        };
        let job_inner = Arc::clone(inner);
        let job_conn = Arc::clone(&conn);
        let submit = inner.submit(Box::new(move || {
            let resp = handle_request(&job_inner, session, req);
            if matches!(resp, Response::Error(_)) {
                job_inner
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
            }
            job_inner.counters.record_latency(class, started.elapsed());
            job_conn.retire(seq, &job_inner, true);
            job_conn.respond(stream, &resp);
        }));
        match submit {
            Ok(()) => {}
            Err(refused) => {
                conn.retire(seq, inner, false);
                let resp = match refused {
                    Refused::Busy => {
                        inner
                            .counters
                            .requests_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        Response::Error(WireError {
                            code: ErrorCode::Busy,
                            message: "admission queue full".into(),
                        })
                    }
                    Refused::ShuttingDown => Response::Error(WireError {
                        code: ErrorCode::ShuttingDown,
                        message: "server is shutting down".into(),
                    }),
                };
                inner
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
                inner.counters.record_latency(class, started.elapsed());
                if !conn.respond(stream, &resp) {
                    break;
                }
            }
        }
    }
    // EOF, IO error, or forced close: every stream session (and any open
    // transaction) dies with the connection. In-flight jobs still retire
    // against the shared state and fail their writes harmlessly.
    inner.sessions.close_many(streams.into_values());
}

/// Connect a TCP client to `addr`: negotiate protocol v2 and wrap a single
/// session (the drop-in blocking client).
pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<crate::client::Client<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    crate::client::Client::connect(stream).map_err(client_to_io)
}

/// Connect a TCP client on the legacy v1 lockstep path (no handshake).
pub fn connect_tcp_v1(addr: impl ToSocketAddrs) -> io::Result<crate::client::Client<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    crate::client::Client::v1(stream).map_err(client_to_io)
}

/// Open a multiplexed TCP connection: one socket, many concurrent
/// [`crate::client::Session`]s.
pub fn connect_tcp_multiplexed(
    addr: impl ToSocketAddrs,
    opts: crate::client::ConnectOptions,
) -> io::Result<crate::client::Connection> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    crate::client::Connection::establish(stream, opts).map_err(client_to_io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientError;
    use rx_engine::{ColValue, ColumnKind};

    fn test_server(workers: usize, queue_depth: usize) -> Arc<Server> {
        let db = Database::create_in_memory().unwrap();
        db.create_table(
            "items",
            &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
        )
        .unwrap();
        Server::start(
            db,
            ServerConfig {
                workers,
                queue_depth,
                idle_timeout: Duration::from_secs(30),
                ..ServerConfig::default()
            },
        )
    }

    fn row(sku: &str, xml: &str) -> Vec<ColValue> {
        vec![ColValue::Str(sku.into()), ColValue::Xml(xml.into())]
    }

    #[test]
    fn inproc_autocommit_roundtrip() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.ping().unwrap();
        let doc = c
            .insert_row("items", row("widget", "<item><price>5</price></item>"))
            .unwrap();
        let fetched = c.fetch_row("items", doc).unwrap().unwrap();
        assert_eq!(fetched.values[0], "widget");
        let hits = c.query("items", "doc", "/item/price").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, doc);
        assert_eq!(hits[0].value, "5");
        assert!(c.delete_row("items", doc).unwrap());
        assert!(c.fetch_row("items", doc).unwrap().is_none());
        let stats = c.stats().unwrap();
        assert!(stats.requests_total >= 6);
        assert_eq!(stats.sessions_active, 1);
        assert!(stats.latency[ReqClass::Read as usize].count >= 3);
        assert!(stats.db.wal_records > 0);
        server.shutdown();
    }

    #[test]
    fn inproc_explicit_txn_rollback_discards_insert() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.begin().unwrap();
        let doc = c.insert_row("items", row("a", "<r/>")).unwrap();
        c.rollback().unwrap();
        assert!(c.fetch_row("items", doc).unwrap().is_none());
        server.shutdown();
    }

    #[test]
    fn unknown_table_maps_to_not_found() {
        let server = test_server(1, 16);
        let mut c = server.connect().unwrap();
        let err = c.fetch_row("nope", 1).unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(e) if e.code == ErrorCode::NotFound),
            "{err}"
        );
        server.shutdown();
    }

    fn wait_for(server: &Server, pred: impl Fn(&StatsSnapshot) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if pred(&server.stats()) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server never reached expected state"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn full_queue_answers_busy() {
        let server = test_server(1, 1);
        // One request occupies the single worker, one fills the queue; a
        // third must be refused without blocking.
        let mut slow1 = server.connect().unwrap();
        let t1 = std::thread::spawn(move || slow1.sleep_ms(400));
        wait_for(&server, |s| s.requests_in_flight == 1);
        let mut slow2 = server.connect().unwrap();
        let t2 = std::thread::spawn(move || slow2.sleep_ms(400));
        wait_for(&server, |s| s.requests_queued == 1);
        let mut probe = server.connect().unwrap();
        let started = Instant::now();
        let err = probe.sleep_ms(1).unwrap_err();
        assert!(err.is_busy(), "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "Busy must not block"
        );
        t1.join().unwrap().unwrap();
        t2.join().unwrap().unwrap();
        assert!(server.stats().requests_rejected >= 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_rolls_back_open_sessions() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.begin().unwrap();
        c.insert_row("items", row("orphan", "<r/>")).unwrap();
        assert_eq!(server.db().txns().active_count(), 1);
        server.shutdown();
        assert_eq!(server.db().txns().active_count(), 0);
        assert!(matches!(
            c.ping().unwrap_err(),
            ClientError::Closed | ClientError::Io(_)
        ));
    }

    #[test]
    fn shutdown_is_idempotent_and_refuses_new_connections() {
        let server = test_server(1, 4);
        server.shutdown();
        server.shutdown();
        assert!(server.connect().is_err());
    }
}
