//! The server: a fixed worker pool behind a bounded admission queue,
//! per-connection handler threads, a TCP listener, an in-process channel
//! transport, and graceful shutdown.
//!
//! Life of a request: a connection handler reads one frame, decodes it, and
//! submits a job to the admission queue. If the queue is at capacity the
//! handler answers `Busy` immediately — clients are never parked on an
//! unbounded backlog. A worker picks the job up, runs it against the
//! engine, and hands the response back to the handler, which writes it to
//! the connection. Connections are lockstep (one outstanding request each),
//! so concurrency equals the number of connections, bounded by the worker
//! pool.
//!
//! Shutdown: new requests and connections are refused, queued work drains,
//! every connection is force-closed, handler threads exit (closing their
//! sessions), and any session that still holds a transaction is rolled
//! back.

use crate::proto::{read_frame, write_frame, ErrorCode, Hit, Request, Response, WireError};
use crate::session::{SessionError, SessionManager};
use crate::stats::{ReqClass, ServerCounters, StatsSnapshot};
use parking_lot::{Condvar, Mutex};
use rx_engine::{Database, EngineError};
use rx_xpath::XPathParser;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it get `Busy`.
    pub queue_depth: usize,
    /// Sessions idle longer than this are reaped (open txns rolled back).
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// Why a submission was refused.
enum Refused {
    Busy,
    ShuttingDown,
}

struct Inner {
    db: Arc<Database>,
    sessions: SessionManager,
    counters: ServerCounters,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    queue_depth: usize,
    shutting_down: AtomicBool,
    in_flight: AtomicUsize,
    /// One force-close hook per live connection.
    closers: Mutex<Vec<Box<dyn Fn() + Send>>>,
    /// Worker / acceptor / reaper / handler threads, joined on shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn submit(&self, job: Job) -> Result<(), Refused> {
        let mut q = self.queue.lock();
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(Refused::ShuttingDown);
        }
        if q.len() >= self.queue_depth {
            return Err(Refused::Busy);
        }
        q.push_back(job);
        drop(q);
        self.queue_cv.notify_one();
        Ok(())
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut q = self.queue.lock();
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutting_down.load(Ordering::SeqCst) {
                        return;
                    }
                    self.queue_cv.wait(&mut q);
                }
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            job();
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// leaves threads running until process exit; call shutdown for a clean
/// drain.
pub struct Server {
    inner: Arc<Inner>,
}

impl Server {
    /// Start workers and the session reaper. No listener yet — use
    /// [`Server::listen`] for TCP and/or [`Server::connect`] for in-process
    /// clients.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Arc<Server> {
        assert!(config.workers >= 1, "need at least one worker");
        assert!(config.queue_depth >= 1, "need a positive queue depth");
        let inner = Arc::new(Inner {
            db,
            sessions: SessionManager::new(config.idle_timeout),
            counters: ServerCounters::default(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            queue_depth: config.queue_depth,
            shutting_down: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            closers: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        for i in 0..config.workers {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rx-worker-{i}"))
                    .spawn(move || inner2.worker_loop())
                    .expect("spawn worker"),
            );
        }
        // Session reaper: poll a few times per idle window.
        let reap_every =
            (config.idle_timeout / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
        {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name("rx-reaper".into())
                    .spawn(move || loop {
                        std::thread::sleep(reap_every);
                        if inner2.shutting_down.load(Ordering::SeqCst) {
                            return;
                        }
                        let n = inner2.sessions.expire_idle();
                        if n > 0 {
                            inner2
                                .counters
                                .sessions_expired
                                .fetch_add(n, Ordering::Relaxed);
                        }
                    })
                    .expect("spawn reaper"),
            );
        }
        inner.handles.lock().extend(handles);
        Arc::new(Server { inner })
    }

    /// The database this server fronts.
    pub fn db(&self) -> &Arc<Database> {
        &self.inner.db
    }

    /// Bind a TCP listener and accept connections until shutdown. Returns
    /// the bound address (use port 0 for an ephemeral port).
    pub fn listen(&self, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("rx-acceptor".into())
            .spawn(move || loop {
                if inner.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        let _ = stream.set_nodelay(true);
                        if let Ok(clone) = stream.try_clone() {
                            inner.closers.lock().push(Box::new(move || {
                                let _ = clone.shutdown(std::net::Shutdown::Both);
                            }));
                        }
                        let inner2 = Arc::clone(&inner);
                        let h = std::thread::Builder::new()
                            .name("rx-conn".into())
                            .spawn(move || serve_connection(&inner2, stream))
                            .expect("spawn connection handler");
                        inner.handles.lock().push(h);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })?;
        self.inner.handles.lock().push(handle);
        Ok(local)
    }

    /// Open an in-process connection speaking the exact same frame codec as
    /// TCP, over a pair of byte channels.
    pub fn connect(&self) -> io::Result<crate::client::Client<ChannelStream>> {
        if self.inner.shutting_down.load(Ordering::SeqCst) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "server is shutting down",
            ));
        }
        let (c2s_tx, c2s_rx) = mpsc::channel::<Vec<u8>>();
        let (s2c_tx, s2c_rx) = mpsc::channel::<Vec<u8>>();
        let closed = Arc::new(AtomicBool::new(false));
        let server_side = ChannelStream::new(s2c_tx, c2s_rx, Arc::clone(&closed));
        let client_side = ChannelStream::new(c2s_tx, s2c_rx, Arc::clone(&closed));
        {
            let closed = Arc::clone(&closed);
            self.inner
                .closers
                .lock()
                .push(Box::new(move || closed.store(true, Ordering::SeqCst)));
        }
        let inner = Arc::clone(&self.inner);
        let h = std::thread::Builder::new()
            .name("rx-conn-inproc".into())
            .spawn(move || serve_connection(&inner, server_side))?;
        self.inner.handles.lock().push(h);
        Ok(crate::client::Client::new(client_side))
    }

    /// Current counter snapshot (same data the wire `stats` request
    /// returns).
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.inner)
    }

    /// Graceful shutdown: refuse new work, drain queued and in-flight
    /// requests, force-close every connection, join all threads, and roll
    /// back whatever sessions remain. Idempotent.
    pub fn shutdown(&self) {
        if self.inner.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.queue_cv.notify_all();
        // Drain: workers finish everything already admitted.
        let drain_deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let empty = self.inner.queue.lock().is_empty();
            if empty && self.inner.in_flight.load(Ordering::SeqCst) == 0 {
                break;
            }
            if Instant::now() > drain_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Unblock connection handlers so they can exit and close sessions.
        for closer in self.inner.closers.lock().drain(..) {
            closer();
        }
        loop {
            let handle = self.inner.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // Anything still open (e.g. sessions whose connection died earlier)
        // is rolled back so no lock outlives the server.
        self.inner.sessions.rollback_all();
    }
}

fn snapshot(inner: &Inner) -> StatsSnapshot {
    StatsSnapshot {
        requests_total: inner.counters.requests_total.load(Ordering::Relaxed),
        requests_rejected: inner.counters.requests_rejected.load(Ordering::Relaxed),
        requests_errored: inner.counters.requests_errored.load(Ordering::Relaxed),
        requests_in_flight: inner.in_flight.load(Ordering::SeqCst) as u64,
        requests_queued: inner.queue.lock().len() as u64,
        sessions_opened: inner.counters.sessions_opened.load(Ordering::Relaxed),
        sessions_expired: inner.counters.sessions_expired.load(Ordering::Relaxed),
        sessions_active: inner.sessions.active(),
        latency: std::array::from_fn(|i| inner.counters.latency[i].snapshot()),
        db: inner.db.stats(),
    }
}

fn class_of(req: &Request) -> ReqClass {
    match req {
        Request::Begin | Request::Commit | Request::Rollback => ReqClass::Txn,
        Request::InsertRow { .. } | Request::DeleteRow { .. } => ReqClass::Write,
        Request::FetchRow { .. } | Request::Query { .. } => ReqClass::Read,
        Request::Stats | Request::Ping | Request::Sleep { .. } => ReqClass::Admin,
    }
}

fn engine_error_response(e: &EngineError) -> Response {
    use rx_storage::StorageError;
    let (code, message) = match e {
        EngineError::NotFound { .. } => (ErrorCode::NotFound, e.to_string()),
        EngineError::AlreadyExists { .. } => (ErrorCode::AlreadyExists, e.to_string()),
        EngineError::Invalid(_) => (ErrorCode::Invalid, e.to_string()),
        EngineError::Storage(StorageError::LockTimeout) => (ErrorCode::LockTimeout, e.to_string()),
        EngineError::Storage(StorageError::Deadlock) => (ErrorCode::Deadlock, e.to_string()),
        EngineError::Xml(_) | EngineError::XPath(_) => (ErrorCode::Invalid, e.to_string()),
        _ => (ErrorCode::Internal, e.to_string()),
    };
    Response::Error(WireError { code, message })
}

fn session_error_response(e: SessionError) -> Response {
    match e {
        SessionError::Expired => Response::Error(WireError {
            code: ErrorCode::SessionExpired,
            message: "session expired (idle timeout) or closed".into(),
        }),
        SessionError::NoTxn => Response::Error(WireError {
            code: ErrorCode::Invalid,
            message: "no open transaction on this session".into(),
        }),
        SessionError::TxnOpen => Response::Error(WireError {
            code: ErrorCode::Invalid,
            message: "a transaction is already open on this session".into(),
        }),
        SessionError::Engine(e) => engine_error_response(&e),
    }
}

fn handle_request(inner: &Inner, session: u64, req: Request) -> Response {
    let db = &inner.db;
    let unit = |r: Result<(), SessionError>| match r {
        Ok(()) => Response::Unit,
        Err(e) => session_error_response(e),
    };
    match req {
        Request::Ping => Response::Pong,
        Request::Sleep { millis } => {
            std::thread::sleep(Duration::from_millis(u64::from(millis)));
            Response::Unit
        }
        Request::Stats => Response::Stats(Box::new(snapshot(inner))),
        Request::Begin => unit(inner.sessions.begin(session, db)),
        Request::Commit => unit(inner.sessions.commit(session)),
        Request::Rollback => unit(inner.sessions.rollback(session)),
        Request::InsertRow { table, values } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                db.insert_row_txn(txn, &t, &values)
            }) {
                Ok(doc) => Response::Doc(doc),
                Err(e) => session_error_response(e),
            }
        }
        Request::FetchRow { table, doc } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                // §5.1: S-lock the document so the fetch never observes a
                // partially written row.
                txn.lock(
                    &rx_storage::LockName::Table(t.def.id),
                    rx_storage::LockMode::IS,
                )?;
                txn.lock(
                    &rx_storage::LockName::Document {
                        table: t.def.id,
                        doc,
                    },
                    rx_storage::LockMode::S,
                )?;
                db.fetch_row(&t, doc)
            }) {
                Ok(row) => Response::Row(row),
                Err(e) => session_error_response(e),
            }
        }
        Request::DeleteRow { table, doc } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                db.delete_row_txn(txn, &t, doc)
            }) {
                Ok(ok) => Response::Deleted(ok),
                Err(e) => session_error_response(e),
            }
        }
        Request::Query {
            table,
            column,
            path,
        } => {
            match inner.sessions.with_txn(session, db, |txn| {
                let t = db.table(&table)?;
                let col = t.xml_column(&column)?;
                let p = XPathParser::new().parse(&path)?;
                let (hits, _stats) = db.query_locked(txn, &t, col, &p, false)?;
                Ok(hits
                    .into_iter()
                    .map(|h| Hit {
                        doc: h.doc,
                        value: h.value,
                    })
                    .collect::<Vec<Hit>>())
            }) {
                Ok(hits) => Response::Hits(hits),
                Err(e) => session_error_response(e),
            }
        }
    }
}

/// Serve one connection until EOF or shutdown. Generic over the byte
/// stream so TCP and the in-process channel transport run the exact same
/// code path.
fn serve_connection<S: Read + Write>(inner: &Arc<Inner>, mut stream: S) {
    let session = inner.sessions.open();
    inner
        .counters
        .sessions_opened
        .fetch_add(1, Ordering::Relaxed);
    while let Ok(Some(payload)) = read_frame(&mut stream) {
        let started = Instant::now();
        inner
            .counters
            .requests_total
            .fetch_add(1, Ordering::Relaxed);
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(msg) => {
                inner
                    .counters
                    .requests_errored
                    .fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error(WireError {
                    code: ErrorCode::Protocol,
                    message: msg,
                });
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    break;
                }
                continue;
            }
        };
        let class = class_of(&req);
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        let job_inner = Arc::clone(inner);
        let submit = inner.submit(Box::new(move || {
            let resp = handle_request(&job_inner, session, req);
            let _ = reply_tx.send(resp);
        }));
        let resp = match submit {
            Ok(()) => reply_rx.recv().unwrap_or_else(|_| {
                Response::Error(WireError {
                    code: ErrorCode::Internal,
                    message: "worker dropped the request".into(),
                })
            }),
            Err(Refused::Busy) => {
                inner
                    .counters
                    .requests_rejected
                    .fetch_add(1, Ordering::Relaxed);
                Response::Error(WireError {
                    code: ErrorCode::Busy,
                    message: "admission queue full".into(),
                })
            }
            Err(Refused::ShuttingDown) => Response::Error(WireError {
                code: ErrorCode::ShuttingDown,
                message: "server is shutting down".into(),
            }),
        };
        if matches!(resp, Response::Error(_)) {
            inner
                .counters
                .requests_errored
                .fetch_add(1, Ordering::Relaxed);
        }
        inner.counters.record_latency(class, started.elapsed());
        if write_frame(&mut stream, &resp.encode()).is_err() {
            break;
        }
    }
    // EOF, IO error, or forced close: the session (and any open txn) dies
    // with the connection.
    inner.sessions.close(session);
}

/// One side of an in-process connection: `Write` sends whole buffers as
/// channel messages, `Read` drains them. A shared `closed` flag lets the
/// server force EOF during shutdown.
pub struct ChannelStream {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    closed: Arc<AtomicBool>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelStream {
    fn new(
        tx: mpsc::Sender<Vec<u8>>,
        rx: mpsc::Receiver<Vec<u8>>,
        closed: Arc<AtomicBool>,
    ) -> ChannelStream {
        ChannelStream {
            tx,
            rx,
            closed,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ChannelStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.buf.len() {
                let n = out.len().min(self.buf.len() - self.pos);
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.closed.load(Ordering::SeqCst) {
                return Ok(0); // forced EOF
            }
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(0),
            }
        }
    }
}

impl Write for ChannelStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"));
        }
        self.tx
            .send(data.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Convenience: connect a TCP client to `addr`.
pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<crate::client::Client<TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(crate::client::Client::new(stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientError;
    use rx_engine::{ColValue, ColumnKind};

    fn test_server(workers: usize, queue_depth: usize) -> Arc<Server> {
        let db = Database::create_in_memory().unwrap();
        db.create_table(
            "items",
            &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
        )
        .unwrap();
        Server::start(
            db,
            ServerConfig {
                workers,
                queue_depth,
                idle_timeout: Duration::from_secs(30),
            },
        )
    }

    fn row(sku: &str, xml: &str) -> Vec<ColValue> {
        vec![ColValue::Str(sku.into()), ColValue::Xml(xml.into())]
    }

    #[test]
    fn inproc_autocommit_roundtrip() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.ping().unwrap();
        let doc = c
            .insert_row("items", row("widget", "<item><price>5</price></item>"))
            .unwrap();
        let fetched = c.fetch_row("items", doc).unwrap().unwrap();
        assert_eq!(fetched.values[0], "widget");
        let hits = c.query("items", "doc", "/item/price").unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, doc);
        assert_eq!(hits[0].value, "5");
        assert!(c.delete_row("items", doc).unwrap());
        assert!(c.fetch_row("items", doc).unwrap().is_none());
        let stats = c.stats().unwrap();
        assert!(stats.requests_total >= 6);
        assert_eq!(stats.sessions_active, 1);
        assert!(stats.latency[ReqClass::Read as usize].count >= 3);
        assert!(stats.db.wal_records > 0);
        server.shutdown();
    }

    #[test]
    fn inproc_explicit_txn_rollback_discards_insert() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.begin().unwrap();
        let doc = c.insert_row("items", row("a", "<r/>")).unwrap();
        c.rollback().unwrap();
        assert!(c.fetch_row("items", doc).unwrap().is_none());
        server.shutdown();
    }

    #[test]
    fn unknown_table_maps_to_not_found() {
        let server = test_server(1, 16);
        let mut c = server.connect().unwrap();
        let err = c.fetch_row("nope", 1).unwrap_err();
        assert!(
            matches!(&err, ClientError::Server(e) if e.code == ErrorCode::NotFound),
            "{err}"
        );
        server.shutdown();
    }

    fn wait_for(server: &Server, pred: impl Fn(&StatsSnapshot) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if pred(&server.stats()) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "server never reached expected state"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn full_queue_answers_busy() {
        let server = test_server(1, 1);
        // One request occupies the single worker, one fills the queue; a
        // third must be refused without blocking.
        let mut slow1 = server.connect().unwrap();
        let t1 = std::thread::spawn(move || slow1.sleep_ms(400));
        wait_for(&server, |s| s.requests_in_flight == 1);
        let mut slow2 = server.connect().unwrap();
        let t2 = std::thread::spawn(move || slow2.sleep_ms(400));
        wait_for(&server, |s| s.requests_queued == 1);
        let mut probe = server.connect().unwrap();
        let started = Instant::now();
        let err = probe.sleep_ms(1).unwrap_err();
        assert!(err.is_busy(), "{err}");
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "Busy must not block"
        );
        t1.join().unwrap().unwrap();
        t2.join().unwrap().unwrap();
        assert!(server.stats().requests_rejected >= 1);
        server.shutdown();
    }

    #[test]
    fn shutdown_rolls_back_open_sessions() {
        let server = test_server(2, 16);
        let mut c = server.connect().unwrap();
        c.begin().unwrap();
        c.insert_row("items", row("orphan", "<r/>")).unwrap();
        assert_eq!(server.db().txns().active_count(), 1);
        server.shutdown();
        assert_eq!(server.db().txns().active_count(), 0);
        assert!(matches!(
            c.ping().unwrap_err(),
            ClientError::Closed | ClientError::Io(_)
        ));
    }

    #[test]
    fn shutdown_is_idempotent_and_refuses_new_connections() {
        let server = test_server(1, 4);
        server.shutdown();
        server.shutdown();
        assert!(server.connect().is_err());
    }
}
