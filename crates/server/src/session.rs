//! Session management: one session per v1 connection — or per *stream* of
//! a v2 multiplexed connection — each owning at most one open [`Txn`],
//! with idle-timeout reaping. Transaction state is keyed by session id, so
//! the demultiplexer gets independent per-stream transactions for free.
//!
//! A session with no explicit transaction runs each request in autocommit
//! mode (begin → op → commit, rollback on error). Sessions idle past the
//! timeout are reaped by the server's background thread: any open
//! transaction is rolled back (releasing its locks so it cannot block the
//! whole service forever) and subsequent requests on that session fail with
//! `SessionExpired`.

use parking_lot::Mutex;
use rx_engine::{Database, EngineError};
use rx_storage::Txn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a session operation failed.
#[derive(Debug)]
pub enum SessionError {
    /// The session was reaped (idle timeout) or never existed.
    Expired,
    /// Commit/rollback with no open transaction.
    NoTxn,
    /// Begin while a transaction is already open.
    TxnOpen,
    /// The engine failed underneath.
    Engine(EngineError),
}

impl From<EngineError> for SessionError {
    fn from(e: EngineError) -> SessionError {
        SessionError::Engine(e)
    }
}

struct SessionState {
    txn: Option<Txn>,
    last_active: Instant,
}

/// All live sessions of one server.
pub struct SessionManager {
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionState>>>>,
    next_id: AtomicU64,
    idle_timeout: Duration,
}

impl SessionManager {
    /// Create a manager reaping sessions idle longer than `idle_timeout`.
    pub fn new(idle_timeout: Duration) -> SessionManager {
        SessionManager {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            idle_timeout,
        }
    }

    /// Open a new session; returns its id.
    pub fn open(&self) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().insert(
            id,
            Arc::new(Mutex::new(SessionState {
                txn: None,
                last_active: Instant::now(),
            })),
        );
        id
    }

    /// Close a session, rolling back any open transaction. No-op when the
    /// session was already reaped.
    pub fn close(&self, id: u64) {
        let entry = self.sessions.lock().remove(&id);
        if let Some(entry) = entry {
            let txn = entry.lock().txn.take();
            if let Some(txn) = txn {
                let _ = txn.rollback();
            }
        }
    }

    /// Close a batch of sessions (a multiplexed connection tearing down all
    /// of its stream sessions at once).
    pub fn close_many(&self, ids: impl IntoIterator<Item = u64>) {
        for id in ids {
            self.close(id);
        }
    }

    /// Number of open sessions.
    pub fn active(&self) -> u64 {
        self.sessions.lock().len() as u64
    }

    fn entry(&self, id: u64) -> Result<Arc<Mutex<SessionState>>, SessionError> {
        self.sessions
            .lock()
            .get(&id)
            .cloned()
            .ok_or(SessionError::Expired)
    }

    /// Open an explicit transaction on the session.
    pub fn begin(&self, id: u64, db: &Database) -> Result<(), SessionError> {
        let entry = self.entry(id)?;
        let mut s = entry.lock();
        s.last_active = Instant::now();
        if s.txn.is_some() {
            return Err(SessionError::TxnOpen);
        }
        s.txn = Some(db.begin()?);
        Ok(())
    }

    /// Commit the session's open transaction.
    pub fn commit(&self, id: u64) -> Result<(), SessionError> {
        let entry = self.entry(id)?;
        let mut s = entry.lock();
        s.last_active = Instant::now();
        let txn = s.txn.take().ok_or(SessionError::NoTxn)?;
        txn.commit().map_err(EngineError::from)?;
        Ok(())
    }

    /// Roll back the session's open transaction.
    pub fn rollback(&self, id: u64) -> Result<(), SessionError> {
        let entry = self.entry(id)?;
        let mut s = entry.lock();
        s.last_active = Instant::now();
        let txn = s.txn.take().ok_or(SessionError::NoTxn)?;
        txn.rollback().map_err(EngineError::from)?;
        Ok(())
    }

    /// Run `f` under the session's transaction: inside the open explicit
    /// transaction when there is one (commit stays with the client),
    /// otherwise in autocommit mode.
    pub fn with_txn<R>(
        &self,
        id: u64,
        db: &Database,
        f: impl FnOnce(&Txn) -> Result<R, EngineError>,
    ) -> Result<R, SessionError> {
        let entry = self.entry(id)?;
        let mut s = entry.lock();
        s.last_active = Instant::now();
        let result = if let Some(txn) = &s.txn {
            f(txn).map_err(SessionError::Engine)
        } else {
            let txn = db.begin()?;
            match f(&txn) {
                Ok(r) => {
                    txn.commit().map_err(EngineError::from)?;
                    Ok(r)
                }
                Err(e) => {
                    let _ = txn.rollback();
                    Err(SessionError::Engine(e))
                }
            }
        };
        s.last_active = Instant::now();
        result
    }

    /// Reap sessions idle past the timeout, rolling back their open
    /// transactions. Sessions currently executing a request are skipped
    /// (their session mutex is held, and they are not idle). Returns how
    /// many were reaped.
    pub fn expire_idle(&self) -> u64 {
        let candidates: Vec<(u64, Arc<Mutex<SessionState>>)> = self
            .sessions
            .lock()
            .iter()
            .map(|(id, e)| (*id, Arc::clone(e)))
            .collect();
        let mut reaped = 0;
        for (id, entry) in candidates {
            let Some(mut s) = entry.try_lock() else {
                continue;
            };
            if s.last_active.elapsed() < self.idle_timeout {
                continue;
            }
            if let Some(txn) = s.txn.take() {
                let _ = txn.rollback();
            }
            drop(s);
            self.sessions.lock().remove(&id);
            reaped += 1;
        }
        reaped
    }

    /// Roll back and drop every session (server shutdown).
    pub fn rollback_all(&self) {
        let drained: Vec<Arc<Mutex<SessionState>>> =
            self.sessions.lock().drain().map(|(_, e)| e).collect();
        for entry in drained {
            let txn = entry.lock().txn.take();
            if let Some(txn) = txn {
                let _ = txn.rollback();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_engine::Database;

    #[test]
    fn explicit_txn_lifecycle() {
        let db = Database::create_in_memory().unwrap();
        let sm = SessionManager::new(Duration::from_secs(30));
        let s = sm.open();
        assert!(matches!(sm.commit(s), Err(SessionError::NoTxn)));
        sm.begin(s, &db).unwrap();
        assert!(matches!(sm.begin(s, &db), Err(SessionError::TxnOpen)));
        assert_eq!(db.txns().active_count(), 1);
        sm.commit(s).unwrap();
        assert_eq!(db.txns().active_count(), 0);
        sm.begin(s, &db).unwrap();
        sm.rollback(s).unwrap();
        assert_eq!(db.txns().active_count(), 0);
        sm.close(s);
        assert!(matches!(sm.begin(s, &db), Err(SessionError::Expired)));
    }

    #[test]
    fn close_rolls_back_open_txn() {
        let db = Database::create_in_memory().unwrap();
        let sm = SessionManager::new(Duration::from_secs(30));
        let s = sm.open();
        sm.begin(s, &db).unwrap();
        sm.close(s);
        assert_eq!(db.txns().active_count(), 0);
    }

    #[test]
    fn idle_sessions_reaped() {
        let db = Database::create_in_memory().unwrap();
        let sm = SessionManager::new(Duration::from_millis(20));
        let s = sm.open();
        sm.begin(s, &db).unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(sm.expire_idle(), 1);
        assert_eq!(sm.active(), 0);
        assert_eq!(db.txns().active_count(), 0, "reaping must roll back");
        assert!(matches!(sm.commit(s), Err(SessionError::Expired)));
    }

    #[test]
    fn fresh_sessions_survive_reaper() {
        let db = Database::create_in_memory().unwrap();
        let sm = SessionManager::new(Duration::from_secs(30));
        let s = sm.open();
        sm.begin(s, &db).unwrap();
        assert_eq!(sm.expire_idle(), 0);
        assert_eq!(sm.active(), 1);
        sm.commit(s).unwrap();
        sm.close(s);
    }

    #[test]
    fn rollback_all_sweeps_everything() {
        let db = Database::create_in_memory().unwrap();
        let sm = SessionManager::new(Duration::from_secs(30));
        for _ in 0..3 {
            let s = sm.open();
            sm.begin(s, &db).unwrap();
        }
        assert_eq!(db.txns().active_count(), 3);
        sm.rollback_all();
        assert_eq!(db.txns().active_count(), 0);
        assert_eq!(sm.active(), 0);
    }
}
