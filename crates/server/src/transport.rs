//! Byte-stream transports, and the split that multiplexing requires.
//!
//! Protocol v2 runs a dedicated reader (demultiplexer) concurrently with
//! writers on the same connection, so a transport must come apart into
//! independently owned read/write halves plus a hangup hook that unblocks a
//! reader parked in `read`. [`Transport`] captures that; it is implemented
//! for [`TcpStream`] (via `try_clone`) and for the in-process
//! [`ChannelStream`], so TCP and in-process connections run the exact same
//! framing and demultiplexing code.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// A hangup hook: forces a blocked reader of the same connection to return
/// (EOF or an error), so reader threads can be shut down from outside.
pub type Closer = Box<dyn Fn() + Send + Sync>;

/// A connection byte stream that can be split into independently owned
/// read/write halves.
pub trait Transport: Send + 'static {
    /// The read half.
    type Reader: Read + Send + 'static;
    /// The write half.
    type Writer: Write + Send + 'static;

    /// Split into `(reader, writer, closer)`. The closer unblocks a reader
    /// parked in `read` (connection hangup), idempotently.
    fn into_split(self) -> io::Result<(Self::Reader, Self::Writer, Closer)>;
}

impl Transport for TcpStream {
    type Reader = TcpStream;
    type Writer = TcpStream;

    fn into_split(self) -> io::Result<(TcpStream, TcpStream, Closer)> {
        let writer = self.try_clone()?;
        let hangup = self.try_clone()?;
        Ok((
            self,
            writer,
            Box::new(move || {
                let _ = hangup.shutdown(std::net::Shutdown::Both);
            }),
        ))
    }
}

/// One side of an in-process connection: `Write` sends whole buffers as
/// channel messages, `Read` drains them. A shared `closed` flag lets either
/// side (or the server's shutdown path) force EOF.
pub struct ChannelStream {
    reader: ChannelReader,
    writer: ChannelWriter,
}

/// The read half of a [`ChannelStream`].
pub struct ChannelReader {
    rx: mpsc::Receiver<Vec<u8>>,
    closed: Arc<AtomicBool>,
    buf: Vec<u8>,
    pos: usize,
}

/// The write half of a [`ChannelStream`].
pub struct ChannelWriter {
    tx: mpsc::Sender<Vec<u8>>,
    closed: Arc<AtomicBool>,
}

impl ChannelStream {
    pub(crate) fn new(
        tx: mpsc::Sender<Vec<u8>>,
        rx: mpsc::Receiver<Vec<u8>>,
        closed: Arc<AtomicBool>,
    ) -> ChannelStream {
        ChannelStream {
            reader: ChannelReader {
                rx,
                closed: Arc::clone(&closed),
                buf: Vec::new(),
                pos: 0,
            },
            writer: ChannelWriter { tx, closed },
        }
    }
}

impl Transport for ChannelStream {
    type Reader = ChannelReader;
    type Writer = ChannelWriter;

    fn into_split(self) -> io::Result<(ChannelReader, ChannelWriter, Closer)> {
        let closed = Arc::clone(&self.writer.closed);
        Ok((
            self.reader,
            self.writer,
            Box::new(move || closed.store(true, Ordering::SeqCst)),
        ))
    }
}

impl Read for ChannelStream {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        self.reader.read(out)
    }
}

impl Write for ChannelStream {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.writer.write(data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.buf.len() {
                let n = out.len().min(self.buf.len() - self.pos);
                out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            if self.closed.load(Ordering::SeqCst) {
                return Ok(0); // forced EOF
            }
            match self.rx.recv_timeout(Duration::from_millis(25)) {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => continue,
                Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(0),
            }
        }
    }
}

impl Write for ChannelWriter {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"));
        }
        self.tx
            .send(data.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer gone"))?;
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (ChannelStream, ChannelStream) {
        let (a_tx, a_rx) = mpsc::channel();
        let (b_tx, b_rx) = mpsc::channel();
        let closed = Arc::new(AtomicBool::new(false));
        (
            ChannelStream::new(a_tx, b_rx, Arc::clone(&closed)),
            ChannelStream::new(b_tx, a_rx, closed),
        )
    }

    #[test]
    fn split_halves_keep_talking() {
        let (left, right) = pair();
        let (mut lr, mut lw, _closer) = left.into_split().unwrap();
        let (mut rr, mut rw, _closer2) = right.into_split().unwrap();
        lw.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        rr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        rw.write_all(b"pong").unwrap();
        lr.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn closer_forces_eof_on_a_blocked_reader() {
        let (left, right) = pair();
        let (mut lr, _lw, closer) = left.into_split().unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            lr.read(&mut buf).unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));
        closer();
        assert_eq!(t.join().unwrap(), 0, "closer must force EOF");
        drop(right);
    }
}
