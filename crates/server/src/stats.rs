//! Server-side counters: request totals, admission rejections, session
//! lifecycle events, and per-request-class latency histograms, combined
//! with the engine's [`DbStats`] into one wire-encodable snapshot.

use rx_engine::DbStats;
use rx_storage::codec::{Dec, Enc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 latency buckets (bucket `i` counts requests that took
/// `< 2^i` µs; the last bucket is unbounded).
pub const LATENCY_BUCKETS: usize = 16;

/// Request classes with separate latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum ReqClass {
    /// begin / commit / rollback.
    Txn = 0,
    /// insert_row / delete_row.
    Write = 1,
    /// fetch_row / query.
    Read = 2,
    /// stats / ping / sleep.
    Admin = 3,
}

/// Number of request classes.
pub const REQ_CLASSES: usize = 4;

impl ReqClass {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ReqClass::Txn => "txn",
            ReqClass::Write => "write",
            ReqClass::Read => "read",
            ReqClass::Admin => "admin",
        }
    }

    /// All classes in snapshot order.
    pub fn all() -> [ReqClass; REQ_CLASSES] {
        [
            ReqClass::Txn,
            ReqClass::Write,
            ReqClass::Read,
            ReqClass::Admin,
        ]
    }
}

/// Lock-free log2 latency histogram.
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros() as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Read the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        LatencySnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Bucket `i` counts requests with latency `< 2^i` µs.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed latencies in µs.
    pub total_us: u64,
}

impl LatencySnapshot {
    /// Mean latency in µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }
}

/// Live server counters (one instance per server).
#[derive(Default)]
pub struct ServerCounters {
    /// Frames received (including ones later rejected).
    pub requests_total: AtomicU64,
    /// Requests refused by admission control (queue full).
    pub requests_rejected: AtomicU64,
    /// Requests answered with an error response.
    pub requests_errored: AtomicU64,
    /// Sessions ever opened.
    pub sessions_opened: AtomicU64,
    /// Sessions reaped by the idle timeout.
    pub sessions_expired: AtomicU64,
    /// Connections that spoke v1 (no handshake, or a negotiated downgrade).
    pub connections_v1: AtomicU64,
    /// Connections that negotiated v2 multiplexed streams.
    pub connections_v2: AtomicU64,
    /// Streams ever opened on v2 connections (streams-per-connection is
    /// `streams_opened / connections_v2`).
    pub streams_opened: AtomicU64,
    /// v2 responses that completed while an earlier-dispatched request on
    /// the same connection was still in flight (out-of-order completions —
    /// the win multiplexing exists for).
    pub ooo_completions: AtomicU64,
    /// Latency histograms indexed by [`ReqClass`].
    pub latency: [Histogram; REQ_CLASSES],
}

impl ServerCounters {
    /// Record one served request.
    pub fn record_latency(&self, class: ReqClass, elapsed: Duration) {
        self.latency[class as usize].record(elapsed);
    }
}

/// Everything the admin `stats` request returns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Frames received.
    pub requests_total: u64,
    /// Requests refused with `Busy`.
    pub requests_rejected: u64,
    /// Requests answered with an error.
    pub requests_errored: u64,
    /// Requests currently executing on a worker (gauge).
    pub requests_in_flight: u64,
    /// Requests waiting in the admission queue (gauge).
    pub requests_queued: u64,
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions reaped by the idle timeout.
    pub sessions_expired: u64,
    /// Sessions currently open.
    pub sessions_active: u64,
    /// Connections that spoke protocol v1.
    pub connections_v1: u64,
    /// Connections that negotiated protocol v2.
    pub connections_v2: u64,
    /// Streams ever opened on v2 connections.
    pub streams_opened: u64,
    /// v2 responses completed out of dispatch order on their connection.
    pub ooo_completions: u64,
    /// Per-class latency histograms (indexed by [`ReqClass`]).
    pub latency: [LatencySnapshot; REQ_CLASSES],
    /// Engine counters (buffer pool, WAL, locks, transactions).
    pub db: DbStats,
}

impl StatsSnapshot {
    /// Append the wire encoding to `e`.
    pub fn encode(&self, e: &mut Enc) {
        e.u64(self.requests_total)
            .u64(self.requests_rejected)
            .u64(self.requests_errored)
            .u64(self.requests_in_flight)
            .u64(self.requests_queued)
            .u64(self.sessions_opened)
            .u64(self.sessions_expired)
            .u64(self.sessions_active)
            .u64(self.connections_v1)
            .u64(self.connections_v2)
            .u64(self.streams_opened)
            .u64(self.ooo_completions);
        for l in &self.latency {
            for b in &l.buckets {
                e.u64(*b);
            }
            e.u64(l.count).u64(l.total_us);
        }
        let d = &self.db;
        e.u64(d.buffer_hits)
            .u64(d.buffer_misses)
            .u64(d.buffer_evictions)
            .u64(d.buffer_writebacks)
            .u64(d.buffer_resident)
            .u64(d.buffer_shards)
            .u64(d.buffer_contention)
            .u64(d.wal_bytes)
            .u64(d.wal_records)
            .u64(d.wal_fsyncs)
            .u64(d.wal_group_commits)
            .u64(d.wal_batch_max)
            .u64(d.wal_durable_lsn)
            .u64(d.wal_durable_lag)
            .u64(d.lock_waits)
            .u64(d.lock_timeouts)
            .u64(d.lock_deadlocks)
            .u64(d.active_txns)
            .u64(d.query_workers)
            .u64(d.parallel_queries)
            .u64(d.plan_cache_hits)
            .u64(d.plan_cache_misses)
            .u64(d.plan_cache_entries)
            .u64(d.doc_cache_hits)
            .u64(d.doc_cache_misses)
            .u64(d.doc_cache_evictions)
            .u64(d.doc_cache_bytes);
    }

    /// Decode the wire encoding.
    pub fn decode(d: &mut Dec) -> Result<StatsSnapshot, String> {
        let mut next = || d.u64().map_err(|e| e.to_string());
        let mut s = StatsSnapshot {
            requests_total: next()?,
            requests_rejected: next()?,
            requests_errored: next()?,
            requests_in_flight: next()?,
            requests_queued: next()?,
            sessions_opened: next()?,
            sessions_expired: next()?,
            sessions_active: next()?,
            connections_v1: next()?,
            connections_v2: next()?,
            streams_opened: next()?,
            ooo_completions: next()?,
            ..StatsSnapshot::default()
        };
        for l in &mut s.latency {
            for b in &mut l.buckets {
                *b = next()?;
            }
            l.count = next()?;
            l.total_us = next()?;
        }
        let db = &mut s.db;
        db.buffer_hits = next()?;
        db.buffer_misses = next()?;
        db.buffer_evictions = next()?;
        db.buffer_writebacks = next()?;
        db.buffer_resident = next()?;
        db.buffer_shards = next()?;
        db.buffer_contention = next()?;
        db.wal_bytes = next()?;
        db.wal_records = next()?;
        db.wal_fsyncs = next()?;
        db.wal_group_commits = next()?;
        db.wal_batch_max = next()?;
        db.wal_durable_lsn = next()?;
        db.wal_durable_lag = next()?;
        db.lock_waits = next()?;
        db.lock_timeouts = next()?;
        db.lock_deadlocks = next()?;
        db.active_txns = next()?;
        db.query_workers = next()?;
        db.parallel_queries = next()?;
        db.plan_cache_hits = next()?;
        db.plan_cache_misses = next()?;
        db.plan_cache_entries = next()?;
        db.doc_cache_hits = next()?;
        db.doc_cache_misses = next()?;
        db.doc_cache_evictions = next()?;
        db.doc_cache_bytes = next()?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_records() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(2));
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert_eq!(s.mean_us(), (3 + 3 + 2000) / 3);
    }

    #[test]
    fn snapshot_round_trips() {
        let mut s = StatsSnapshot {
            requests_total: 10,
            requests_rejected: 2,
            sessions_active: 3,
            connections_v1: 1,
            connections_v2: 4,
            streams_opened: 17,
            ooo_completions: 6,
            ..StatsSnapshot::default()
        };
        s.latency[ReqClass::Read as usize].buckets[4] = 7;
        s.latency[ReqClass::Read as usize].count = 7;
        s.db.wal_records = 99;
        s.db.wal_fsyncs = 5;
        s.db.wal_group_commits = 40;
        s.db.wal_batch_max = 12;
        s.db.wal_durable_lsn = 98;
        s.db.wal_durable_lag = 1;
        s.db.buffer_shards = 16;
        s.db.buffer_contention = 7;
        s.db.query_workers = 8;
        s.db.parallel_queries = 21;
        s.db.plan_cache_hits = 30;
        s.db.plan_cache_misses = 4;
        s.db.plan_cache_entries = 4;
        s.db.doc_cache_hits = 17;
        s.db.doc_cache_misses = 3;
        s.db.doc_cache_evictions = 2;
        s.db.doc_cache_bytes = 65536;
        let mut e = Enc::new();
        s.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(StatsSnapshot::decode(&mut d).unwrap(), s);
        assert!(d.is_done());
    }
}
