//! The client side of the wire protocol: a shared [`Connection`] that
//! multiplexes many concurrent [`Session`]s over one byte stream, and the
//! blocking [`Client`] — now a thin single-session wrapper over the same
//! machinery.
//!
//! A [`Connection`] owns the socket: a writer mutex serializes request
//! frames, and a background router thread reads response frames and hands
//! each to the session whose stream id it carries. [`Session`] handles are
//! cheap (an `Arc` clone plus a stream id); every session gets independent
//! transaction state server-side. Responses may complete out of order
//! across sessions — that is the point — while each session itself stays
//! blocking and in order.
//!
//! [`Client::connect`] negotiates protocol v2 and wraps one session, so
//! existing call sites keep their exact API. [`Client::v1`] skips the
//! handshake entirely and speaks the legacy lockstep framing — the path a
//! pre-v2 binary takes implicitly.

use crate::proto::{
    self, ErrorCode, Frame, FrameCodec, Hello, HelloAck, Hit, Request, Response, WireError,
};
use crate::stats::StatsSnapshot;
use crate::transport::{Closer, Transport};
use parking_lot::Mutex;
use rx_engine::{ColValue, Row};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The admission queue (or the connection's stream budget) was full;
    /// retry later.
    Busy,
    /// The server is draining; reconnect elsewhere.
    ShuttingDown,
    /// This session was reaped after idling past the timeout.
    SessionExpired,
    /// Any other server-reported failure.
    Server(WireError),
    /// The peer sent bytes we could not decode.
    Protocol(String),
    /// The connection died.
    Io(io::Error),
    /// The server closed the connection mid-call.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server busy (admission queue full)"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::SessionExpired => write!(f, "session expired"),
            ClientError::Server(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True for [`ClientError::Busy`] — the caller should back off and
    /// retry.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy)
    }
}

fn error_response(err: WireError) -> ClientError {
    match err.code {
        ErrorCode::Busy => ClientError::Busy,
        ErrorCode::ShuttingDown => ClientError::ShuttingDown,
        ErrorCode::SessionExpired => ClientError::SessionExpired,
        _ => ClientError::Server(err),
    }
}

fn decode_response(payload: &[u8]) -> Result<Response, ClientError> {
    match Response::decode(payload).map_err(ClientError::Protocol)? {
        Response::Error(err) => Err(error_response(err)),
        resp => Ok(resp),
    }
}

/// How to open a connection: the protocol version to request, how many
/// concurrent streams to ask for, and the frame-size bound to enforce.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// Requested protocol version; the server answers with
    /// `min(requested, supported)`, so asking for 1 is an explicit
    /// downgrade and asking for more than it speaks still lands on v2.
    pub version: u8,
    /// Concurrent in-flight requests to ask for; the server may grant
    /// less, never more than its own budget.
    pub max_streams: u32,
    /// Frame-payload bound: larger length prefixes are a protocol error
    /// instead of an allocation attempt. The effective bound is the
    /// smaller of this and what the server advertises.
    pub max_frame_bytes: usize,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            version: proto::PROTO_MAX_VERSION,
            max_streams: 32,
            max_frame_bytes: proto::MAX_FRAME,
        }
    }
}

/// One-shot response routes, keyed by stream id, plus the reason the
/// connection died (set once by the router thread).
struct Pending {
    routes: HashMap<u32, mpsc::Sender<Vec<u8>>>,
    dead: bool,
}

/// Shared state behind a [`Connection`] and all of its [`Session`]s.
struct ConnInner {
    writer: Mutex<Box<dyn Write + Send>>,
    codec: FrameCodec,
    pending: Arc<Mutex<Pending>>,
    closed: Arc<AtomicBool>,
    closer: Closer,
    next_stream: AtomicU32,
    max_streams: u32,
}

impl Drop for ConnInner {
    fn drop(&mut self) {
        // Hang up so the router thread unparks and exits.
        self.closed.store(true, Ordering::SeqCst);
        (self.closer)();
    }
}

/// A multiplexed protocol-v2 connection: one socket, many concurrent
/// [`Session`]s. Cloning is cheap and shares the socket; the socket closes
/// when the last clone and all sessions are gone.
#[derive(Clone)]
pub struct Connection {
    inner: Arc<ConnInner>,
}

impl Connection {
    /// Handshake on `stream` and require protocol v2. Fails with
    /// [`ClientError::Protocol`] when the server downgrades to v1 (use
    /// [`Client::connect`] if a lockstep fallback is acceptable).
    pub fn establish<S: Transport>(
        stream: S,
        opts: ConnectOptions,
    ) -> Result<Connection, ClientError> {
        match negotiate(stream, opts)? {
            Negotiated::V2(conn) => Ok(conn),
            Negotiated::V1 { .. } => Err(ClientError::Protocol(
                "server downgraded to protocol v1; multiplexing needs v2".into(),
            )),
        }
    }

    fn from_parts<R: Read + Send + 'static>(
        reader: R,
        writer: impl Write + Send + 'static,
        closer: Closer,
        max_streams: u32,
        max_frame: usize,
    ) -> Connection {
        let pending = Arc::new(Mutex::new(Pending {
            routes: HashMap::new(),
            dead: false,
        }));
        let closed = Arc::new(AtomicBool::new(false));
        let inner = Arc::new(ConnInner {
            writer: Mutex::new(Box::new(writer)),
            codec: FrameCodec::v2(max_frame),
            pending: Arc::clone(&pending),
            closed: Arc::clone(&closed),
            closer,
            next_stream: AtomicU32::new(1),
            max_streams,
        });
        // The router holds only the pending map and the closed flag — not
        // the inner — so dropping the last user handle hangs up the socket
        // and lets this thread exit.
        let codec = FrameCodec::v2(max_frame);
        std::thread::Builder::new()
            .name("rx-client-router".into())
            .spawn(move || {
                let mut reader = reader;
                loop {
                    if closed.load(Ordering::SeqCst) {
                        break;
                    }
                    match codec.read(&mut reader) {
                        Ok(Some(frame)) => {
                            let route = pending.lock().routes.remove(&frame.stream);
                            if let Some(tx) = route {
                                let _ = tx.send(frame.payload);
                            }
                        }
                        _ => break,
                    }
                }
                let mut p = pending.lock();
                p.dead = true;
                p.routes.clear(); // wakes every parked caller with Closed
            })
            .expect("spawn client router");
        Connection { inner }
    }

    /// Open a new session (stream) on this connection. Cheap: no round
    /// trip; the server materializes the stream's session on its first
    /// request.
    pub fn session(&self) -> Session {
        let stream = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Session {
            inner: Arc::clone(&self.inner),
            stream,
        }
    }

    /// The stream budget the server granted at handshake.
    pub fn max_streams(&self) -> u32 {
        self.inner.max_streams
    }
}

/// One logical stream on a [`Connection`]: independent server-side
/// transaction state, blocking calls, one request in flight per session.
/// Run sessions from different threads (or pipeline across several
/// sessions) to overlap requests on the shared connection. Dropping a
/// session tells the server to close its stream (rolling back any open
/// transaction).
pub struct Session {
    inner: Arc<ConnInner>,
    stream: u32,
}

impl Session {
    /// The stream id this session occupies on its connection.
    pub fn stream_id(&self) -> u32 {
        self.stream
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut p = self.inner.pending.lock();
            if p.dead {
                return Err(ClientError::Closed);
            }
            p.routes.insert(self.stream, tx);
        }
        let frame = Frame::data(self.stream, req.encode());
        if let Err(e) = self
            .inner
            .codec
            .write(&mut *self.inner.writer.lock(), &frame)
        {
            self.inner.pending.lock().routes.remove(&self.stream);
            return Err(ClientError::Io(e));
        }
        let payload = rx.recv().map_err(|_| ClientError::Closed)?;
        decode_response(&payload)
    }

    /// Open an explicit transaction on this session.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Begin)?)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Commit)?)
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Rollback)?)
    }

    /// Insert a row; returns its DocID.
    pub fn insert_row(&mut self, table: &str, values: Vec<ColValue>) -> Result<u64, ClientError> {
        want_doc(self.call(&Request::InsertRow {
            table: table.to_string(),
            values,
        })?)
    }

    /// Fetch a row by DocID (`None` when the id is unknown).
    pub fn fetch_row(&mut self, table: &str, doc: u64) -> Result<Option<Row>, ClientError> {
        want_row(self.call(&Request::FetchRow {
            table: table.to_string(),
            doc,
        })?)
    }

    /// Delete a row by DocID; returns whether it existed.
    pub fn delete_row(&mut self, table: &str, doc: u64) -> Result<bool, ClientError> {
        want_deleted(self.call(&Request::DeleteRow {
            table: table.to_string(),
            doc,
        })?)
    }

    /// Evaluate an XPath over one XML column.
    pub fn query(
        &mut self,
        table: &str,
        column: &str,
        path: &str,
    ) -> Result<Vec<Hit>, ClientError> {
        want_hits(self.call(&Request::Query {
            table: table.to_string(),
            column: column.to_string(),
            path: path.to_string(),
        })?)
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        want_stats(self.call(&Request::Stats)?)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        want_pong(self.call(&Request::Ping)?)
    }

    /// Diagnostic: hold a worker slot for `millis` (admission-control
    /// testing).
    pub fn sleep_ms(&mut self, millis: u32) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Sleep { millis })?)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.inner.pending.lock().routes.remove(&self.stream);
        // Best effort: tell the server to close this stream's session.
        let _ = self.inner.codec.write(
            &mut *self.inner.writer.lock(),
            &Frame::end_stream(self.stream),
        );
    }
}

fn unexpected<T>(other: Response) -> Result<T, ClientError> {
    Err(ClientError::Protocol(format!("unexpected reply {other:?}")))
}

fn want_unit(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::Unit => Ok(()),
        other => unexpected(other),
    }
}

fn want_doc(resp: Response) -> Result<u64, ClientError> {
    match resp {
        Response::Doc(doc) => Ok(doc),
        other => unexpected(other),
    }
}

fn want_row(resp: Response) -> Result<Option<Row>, ClientError> {
    match resp {
        Response::Row(row) => Ok(row),
        other => unexpected(other),
    }
}

fn want_deleted(resp: Response) -> Result<bool, ClientError> {
    match resp {
        Response::Deleted(ok) => Ok(ok),
        other => unexpected(other),
    }
}

fn want_hits(resp: Response) -> Result<Vec<Hit>, ClientError> {
    match resp {
        Response::Hits(hits) => Ok(hits),
        other => unexpected(other),
    }
}

fn want_stats(resp: Response) -> Result<StatsSnapshot, ClientError> {
    match resp {
        Response::Stats(s) => Ok(*s),
        other => unexpected(other),
    }
}

fn want_pong(resp: Response) -> Result<(), ClientError> {
    match resp {
        Response::Pong => Ok(()),
        other => unexpected(other),
    }
}

/// What the handshake settled on.
enum Negotiated<S: Transport> {
    /// Lockstep v1 (explicit downgrade).
    V1 {
        reader: S::Reader,
        writer: S::Writer,
        codec: FrameCodec,
        closer: Closer,
    },
    /// Multiplexed v2.
    V2(Connection),
}

/// Send a [`Hello`] and interpret the reply. The hello travels v1-framed,
/// so a pre-v2 server that cannot parse it fails loudly rather than
/// desyncing.
fn negotiate<S: Transport>(stream: S, opts: ConnectOptions) -> Result<Negotiated<S>, ClientError> {
    let (mut reader, mut writer, closer) = stream.into_split()?;
    let v1 = FrameCodec::v1(opts.max_frame_bytes);
    let hello = Hello {
        version: opts.version,
        max_streams: opts.max_streams,
        max_frame: opts.max_frame_bytes as u64,
    };
    v1.write(&mut writer, &Frame::data(0, hello.encode()))?;
    let frame = v1.read(&mut reader)?.ok_or(ClientError::Closed)?;
    let ack = match frame.payload.first() {
        Some(&proto::ST_HELLO) => {
            HelloAck::decode(&frame.payload).map_err(ClientError::Protocol)?
        }
        _ => return decode_response(&frame.payload).and_then(unexpected),
    };
    let max_frame = opts.max_frame_bytes.min(ack.max_frame as usize).max(1024);
    match ack.version {
        1 => Ok(Negotiated::V1 {
            reader,
            writer,
            codec: FrameCodec::v1(max_frame),
            closer,
        }),
        2 => Ok(Negotiated::V2(Connection::from_parts(
            reader,
            writer,
            closer,
            ack.max_streams,
            max_frame,
        ))),
        v => Err(ClientError::Protocol(format!(
            "server negotiated unknown protocol version {v}"
        ))),
    }
}

/// How a [`Client`] speaks to its server.
enum Mode<S: Transport> {
    /// Legacy lockstep framing, one request in flight.
    V1 {
        reader: S::Reader,
        writer: S::Writer,
        codec: FrameCodec,
        /// Kept so the transport's hangup hook lives as long as the client.
        _closer: Closer,
    },
    /// A single session on a multiplexed v2 connection.
    V2 {
        session: Session,
        /// Keeps the connection (and its router thread) alive.
        _conn: Connection,
    },
}

/// A blocking connection to an rx-server: one outstanding request at a
/// time, one server-side session, so dropping the client rolls back any
/// open transaction. Since the v2 redesign this is a thin wrapper: either
/// a single [`Session`] on a [`Connection`], or — via [`Client::v1`] or a
/// server downgrade — the legacy lockstep loop.
pub struct Client<S: Transport> {
    mode: Mode<S>,
}

impl<S: Transport> Client<S> {
    /// Handshake with default [`ConnectOptions`]: negotiate v2, accept a
    /// downgrade to v1 lockstep if that is all the server speaks.
    pub fn connect(stream: S) -> Result<Client<S>, ClientError> {
        Client::connect_with(stream, ConnectOptions::default())
    }

    /// Handshake with explicit options (e.g. `version: 1` to force the
    /// downgrade path, or a custom frame bound).
    pub fn connect_with(stream: S, opts: ConnectOptions) -> Result<Client<S>, ClientError> {
        let mode = match negotiate(stream, opts)? {
            Negotiated::V1 {
                reader,
                writer,
                codec,
                closer,
            } => Mode::V1 {
                reader,
                writer,
                codec,
                _closer: closer,
            },
            Negotiated::V2(conn) => Mode::V2 {
                session: conn.session(),
                _conn: conn,
            },
        };
        Ok(Client { mode })
    }

    /// Speak legacy v1 with no handshake at all — byte-for-byte what a
    /// pre-v2 client sends. The server sniffs the first frame and serves
    /// the lockstep path.
    pub fn v1(stream: S) -> Result<Client<S>, ClientError> {
        let (reader, writer, closer) = stream.into_split()?;
        Ok(Client {
            mode: Mode::V1 {
                reader,
                writer,
                codec: FrameCodec::v1(proto::MAX_FRAME),
                _closer: closer,
            },
        })
    }

    /// The protocol version this client ended up speaking (1 or 2).
    pub fn protocol_version(&self) -> u8 {
        match &self.mode {
            Mode::V1 { .. } => 1,
            Mode::V2 { .. } => 2,
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        match &mut self.mode {
            Mode::V1 {
                reader,
                writer,
                codec,
                ..
            } => {
                codec.write(writer, &Frame::data(0, req.encode()))?;
                let frame = codec.read(reader)?.ok_or(ClientError::Closed)?;
                decode_response(&frame.payload)
            }
            Mode::V2 { session, .. } => session.call(req),
        }
    }

    /// Open an explicit transaction on this connection's session.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Begin)?)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Commit)?)
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Rollback)?)
    }

    /// Insert a row; returns its DocID.
    pub fn insert_row(&mut self, table: &str, values: Vec<ColValue>) -> Result<u64, ClientError> {
        want_doc(self.call(&Request::InsertRow {
            table: table.to_string(),
            values,
        })?)
    }

    /// Fetch a row by DocID (`None` when the id is unknown).
    pub fn fetch_row(&mut self, table: &str, doc: u64) -> Result<Option<Row>, ClientError> {
        want_row(self.call(&Request::FetchRow {
            table: table.to_string(),
            doc,
        })?)
    }

    /// Delete a row by DocID; returns whether it existed.
    pub fn delete_row(&mut self, table: &str, doc: u64) -> Result<bool, ClientError> {
        want_deleted(self.call(&Request::DeleteRow {
            table: table.to_string(),
            doc,
        })?)
    }

    /// Evaluate an XPath over one XML column.
    pub fn query(
        &mut self,
        table: &str,
        column: &str,
        path: &str,
    ) -> Result<Vec<Hit>, ClientError> {
        want_hits(self.call(&Request::Query {
            table: table.to_string(),
            column: column.to_string(),
            path: path.to_string(),
        })?)
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        want_stats(self.call(&Request::Stats)?)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        want_pong(self.call(&Request::Ping)?)
    }

    /// Diagnostic: hold a worker slot for `millis` (admission-control
    /// testing).
    pub fn sleep_ms(&mut self, millis: u32) -> Result<(), ClientError> {
        want_unit(self.call(&Request::Sleep { millis })?)
    }
}
