//! A blocking client generic over the byte stream, so TCP connections and
//! the in-process channel transport share one implementation.

use crate::proto::{read_frame, write_frame, ErrorCode, Hit, Request, Response, WireError};
use crate::stats::StatsSnapshot;
use rx_engine::{ColValue, Row};
use std::fmt;
use std::io::{self, Read, Write};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The admission queue was full; retry later.
    Busy,
    /// The server is draining; reconnect elsewhere.
    ShuttingDown,
    /// This session was reaped after idling past the timeout.
    SessionExpired,
    /// Any other server-reported failure.
    Server(WireError),
    /// The peer sent bytes we could not decode.
    Protocol(String),
    /// The connection died.
    Io(io::Error),
    /// The server closed the connection mid-call.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Busy => write!(f, "server busy (admission queue full)"),
            ClientError::ShuttingDown => write!(f, "server shutting down"),
            ClientError::SessionExpired => write!(f, "session expired"),
            ClientError::Server(e) => write!(f, "server error ({:?}): {}", e.code, e.message),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "connection closed by server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True for [`ClientError::Busy`] — the caller should back off and
    /// retry.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy)
    }
}

fn error_response(err: WireError) -> ClientError {
    match err.code {
        ErrorCode::Busy => ClientError::Busy,
        ErrorCode::ShuttingDown => ClientError::ShuttingDown,
        ErrorCode::SessionExpired => ClientError::SessionExpired,
        _ => ClientError::Server(err),
    }
}

/// A blocking connection to an rx-server. One outstanding request at a
/// time; the server pairs each connection with one session, so dropping the
/// client rolls back any open transaction server-side.
pub struct Client<S: Read + Write> {
    stream: S,
}

impl<S: Read + Write> Client<S> {
    /// Wrap an established byte stream.
    pub fn new(stream: S) -> Client<S> {
        Client { stream }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Closed)?;
        match Response::decode(&payload).map_err(ClientError::Protocol)? {
            Response::Error(err) => Err(error_response(err)),
            resp => Ok(resp),
        }
    }

    fn expect_unit(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.call(req)? {
            Response::Unit => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Open an explicit transaction on this connection's session.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.expect_unit(&Request::Begin)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        self.expect_unit(&Request::Commit)
    }

    /// Roll back the open transaction.
    pub fn rollback(&mut self) -> Result<(), ClientError> {
        self.expect_unit(&Request::Rollback)
    }

    /// Insert a row; returns its DocID.
    pub fn insert_row(&mut self, table: &str, values: Vec<ColValue>) -> Result<u64, ClientError> {
        match self.call(&Request::InsertRow {
            table: table.to_string(),
            values,
        })? {
            Response::Doc(doc) => Ok(doc),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch a row by DocID (`None` when the id is unknown).
    pub fn fetch_row(&mut self, table: &str, doc: u64) -> Result<Option<Row>, ClientError> {
        match self.call(&Request::FetchRow {
            table: table.to_string(),
            doc,
        })? {
            Response::Row(row) => Ok(row),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Delete a row by DocID; returns whether it existed.
    pub fn delete_row(&mut self, table: &str, doc: u64) -> Result<bool, ClientError> {
        match self.call(&Request::DeleteRow {
            table: table.to_string(),
            doc,
        })? {
            Response::Deleted(ok) => Ok(ok),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Evaluate an XPath over one XML column.
    pub fn query(
        &mut self,
        table: &str,
        column: &str,
        path: &str,
    ) -> Result<Vec<Hit>, ClientError> {
        match self.call(&Request::Query {
            table: table.to_string(),
            column: column.to_string(),
            path: path.to_string(),
        })? {
            Response::Hits(hits) => Ok(hits),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Diagnostic: hold a worker slot for `millis` (admission-control
    /// testing).
    pub fn sleep_ms(&mut self, millis: u32) -> Result<(), ClientError> {
        self.expect_unit(&Request::Sleep { millis })
    }
}
