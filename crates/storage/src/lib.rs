//! # rx-storage — relational data-management infrastructure for System R/X
//!
//! The substrate layer of the System R/X reproduction: everything the paper
//! describes as "the same mature infrastructure for a relational database"
//! (§2) that the native XML engine is built on. To this layer, packed XML
//! records are indistinguishable from relational rows.
//!
//! Components:
//!
//! * [`page`] — fixed-size slotted pages, the I/O unit;
//! * [`backend`] — file- and memory-backed page storage;
//! * [`buffer`] — the shared buffer pool with clock eviction;
//! * [`space`] — table spaces with page allocation and anchor slots;
//! * [`heap`] — heap tables addressed by [`rid::Rid`];
//! * [`btree`] — the B+tree index infrastructure reused by the NodeID index
//!   and XPath value indexes;
//! * [`wal`] / [`txn`] — write-ahead logging, ARIES-style recovery, and
//!   transactions;
//! * [`lock`] — the multi-granularity lock manager with node-ID-prefix
//!   subtree locks (§5);
//! * [`catalog`] — the persistent directory (compiled schemas, object
//!   definitions, counters);
//! * [`codec`] — the byte codec shared by record formats.

#![warn(missing_docs)]

pub mod backend;
pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod codec;
pub mod error;
pub mod heap;
pub mod lock;
pub mod page;
pub mod rid;
pub mod space;
pub mod txn;
pub mod wal;

pub use backend::{FileBackend, MemBackend, StorageBackend};
pub use btree::BTree;
pub use buffer::{BufferPool, PageId, SpaceId};
pub use catalog::Catalog;
pub use error::{Result, StorageError};
pub use heap::HeapTable;
pub use lock::{LockManager, LockMode, LockName};
pub use page::{Page, PageType, MAX_RECORD_SIZE, PAGE_SIZE};
pub use rid::Rid;
pub use space::TableSpace;
pub use txn::{Txn, TxnHook, TxnManager, UndoCtx};
pub use wal::{recover, LogRecord, RecoveryEnv, TxnId, Wal};
