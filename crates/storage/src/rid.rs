//! Record identifiers.
//!
//! A RID names a record by its physical position: `(page number, slot number)`
//! within one table space. RIDs are what the paper's NodeID index and XPath
//! value indexes store to point from logical node IDs into the packed records.

use std::fmt;

/// Physical record identifier within a table space: page number + slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rid {
    /// Page number within the table space.
    pub page: u32,
    /// Slot number within the page's slot directory.
    pub slot: u16,
}

impl Rid {
    /// The all-zero RID, used as a sentinel ("no record").
    pub const NULL: Rid = Rid { page: 0, slot: 0 };

    /// Create a RID from its parts.
    pub fn new(page: u32, slot: u16) -> Self {
        Rid { page, slot }
    }

    /// Pack into a `u64` (page in the high 32 bits) for storage as a B+tree value.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.page) << 16) | u64::from(self.slot)
    }

    /// Unpack from the `u64` form produced by [`Rid::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        Rid {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }

    /// True for the sentinel RID.
    pub fn is_null(self) -> bool {
        self == Rid::NULL
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rid({}:{})", self.page, self.slot)
    }
}

impl fmt::Display for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let rids = [
            Rid::new(0, 0),
            Rid::new(1, 1),
            Rid::new(u32::MAX, u16::MAX),
            Rid::new(12345, 678),
        ];
        for r in rids {
            assert_eq!(Rid::from_u64(r.to_u64()), r);
        }
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Rid::new(1, 500) < Rid::new(2, 0));
        assert!(Rid::new(1, 1) < Rid::new(1, 2));
    }

    #[test]
    fn null_sentinel() {
        assert!(Rid::NULL.is_null());
        assert!(!Rid::new(0, 1).is_null());
        assert_eq!(Rid::NULL.to_u64(), 0);
    }
}
