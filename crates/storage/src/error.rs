//! Error types for the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors raised by the relational data-management infrastructure.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-descriptive
pub enum StorageError {
    /// Underlying I/O failure from a file-backed table space or log.
    Io(std::io::Error),
    /// A record was requested that does not exist (stale RID, deleted slot).
    RecordNotFound { space: u32, page: u32, slot: u16 },
    /// A page number beyond the end of the table space was referenced.
    PageOutOfBounds { space: u32, page: u32 },
    /// A record is too large to fit in any page.
    RecordTooLarge { size: usize, max: usize },
    /// The buffer pool has no evictable frame (everything is pinned).
    BufferPoolExhausted,
    /// A page's on-disk bytes failed a structural sanity check.
    Corrupt(String),
    /// A lock request timed out waiting for a conflicting holder.
    LockTimeout,
    /// Granting the lock would create a deadlock; the requester was chosen as victim.
    Deadlock,
    /// Operation attempted on a transaction that is no longer active.
    TxnNotActive(u64),
    /// The write-ahead log contains a malformed record.
    WalCorrupt(String),
    /// Catalog-level error (duplicate name, missing object, codec failure).
    Catalog(String),
    /// B+tree structural invariant violation.
    Index(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::RecordNotFound { space, page, slot } => {
                write!(f, "record not found: space {space} page {page} slot {slot}")
            }
            StorageError::PageOutOfBounds { space, page } => {
                write!(f, "page {page} out of bounds in space {space}")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity of {max}")
            }
            StorageError::BufferPoolExhausted => {
                write!(f, "buffer pool exhausted (all frames pinned)")
            }
            StorageError::Corrupt(m) => write!(f, "page corruption: {m}"),
            StorageError::LockTimeout => write!(f, "lock wait timed out"),
            StorageError::Deadlock => write!(f, "deadlock detected; transaction chosen as victim"),
            StorageError::TxnNotActive(id) => write!(f, "transaction {id} is not active"),
            StorageError::WalCorrupt(m) => write!(f, "WAL corruption: {m}"),
            StorageError::Catalog(m) => write!(f, "catalog error: {m}"),
            StorageError::Index(m) => write!(f, "index error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}
