//! Heap tables.
//!
//! A heap table stores variable-length records in a chain of slotted data
//! pages within one table space, addressed by RID. This is the structure the
//! paper's internal XML tables use for packed XML records (§3.1): each
//! `(DocID, minNodeID, XMLData)` row is simply a heap record here.

use crate::error::{Result, StorageError};
use crate::page::{PageType, MAX_RECORD_SIZE};
use crate::rid::Rid;
use crate::space::TableSpace;
use parking_lot::Mutex;
use std::sync::Arc;

/// Anchor slot holding the first data page of the heap chain.
const ANCHOR_FIRST: usize = 0;
/// Anchor slot holding the last data page (append target).
const ANCHOR_LAST: usize = 1;

/// A heap table over a table space. Thread-safe; inserts serialize on an
/// append latch, reads go straight to the buffer pool.
pub struct HeapTable {
    space: Arc<TableSpace>,
    append: Mutex<()>,
}

impl HeapTable {
    /// Create a heap in `space` (formats the first data page).
    pub fn create(space: Arc<TableSpace>) -> Result<Arc<Self>> {
        let first = space.allocate(PageType::Data)?;
        let first_no = first.pid().page;
        drop(first);
        space.set_anchor(ANCHOR_FIRST, first_no)?;
        space.set_anchor(ANCHOR_LAST, first_no)?;
        Ok(Arc::new(HeapTable {
            space,
            append: Mutex::new(()),
        }))
    }

    /// Open the heap already present in `space`.
    pub fn open(space: Arc<TableSpace>) -> Result<Arc<Self>> {
        if space.anchor(ANCHOR_FIRST)? == 0 {
            return Err(StorageError::Catalog(format!(
                "space {} contains no heap",
                space.id()
            )));
        }
        Ok(Arc::new(HeapTable {
            space,
            append: Mutex::new(()),
        }))
    }

    /// The table space this heap lives in.
    pub fn space(&self) -> &Arc<TableSpace> {
        &self.space
    }

    /// Largest record this heap accepts.
    pub fn max_record_size(&self) -> usize {
        MAX_RECORD_SIZE
    }

    /// Insert a record, returning its RID.
    pub fn insert(&self, data: &[u8]) -> Result<Rid> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: data.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        let _g = self.append.lock();
        let last_no = self.space.anchor(ANCHOR_LAST)?;
        let last = self.space.fetch(last_no)?;
        {
            let mut p = last.write();
            if p.can_fit(data.len()) {
                let slot = p.insert(data)?;
                return Ok(Rid::new(last_no, slot));
            }
        }
        // Allocate a fresh page and link it at the end of the chain.
        let fresh = self.space.allocate(PageType::Data)?;
        let fresh_no = fresh.pid().page;
        let slot = fresh.write().insert(data)?;
        last.write().set_next_page(fresh_no);
        self.space.set_anchor(ANCHOR_LAST, fresh_no)?;
        Ok(Rid::new(fresh_no, slot))
    }

    /// Install a record at a specific RID (idempotent; used by WAL redo).
    pub fn insert_at(&self, rid: Rid, data: &[u8]) -> Result<()> {
        let _g = self.append.lock();
        // Make sure the page exists in the chain; redo may hit pages that the
        // crashed run allocated. Allocation is monotone, so extending the
        // high-water mark and linking is safe.
        let g = self.space.fetch(rid.page)?;
        {
            let mut p = g.write();
            if p.page_type() != PageType::Data {
                p.format(PageType::Data);
            }
            p.insert_at(rid.slot, data)?;
        }
        Ok(())
    }

    /// Fetch a record by RID.
    pub fn fetch(&self, rid: Rid) -> Result<Vec<u8>> {
        let g = self.space.fetch(rid.page)?;
        let p = g.read();
        p.get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(StorageError::RecordNotFound {
                space: self.space.id(),
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Fetch a record into a shareable allocation: one copy out of the
    /// latched page, after which the bytes can be handed to any number of
    /// readers (e.g. a document cache) without further copying.
    pub fn fetch_arc(&self, rid: Rid) -> Result<Arc<[u8]>> {
        let g = self.space.fetch(rid.page)?;
        let p = g.read();
        p.get(rid.slot)
            .map(Arc::<[u8]>::from)
            .ok_or(StorageError::RecordNotFound {
                space: self.space.id(),
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Apply `f` to a record without copying it out of the page.
    pub fn with_record<T>(&self, rid: Rid, f: impl FnOnce(&[u8]) -> T) -> Result<T> {
        let g = self.space.fetch(rid.page)?;
        let p = g.read();
        let rec = p.get(rid.slot).ok_or(StorageError::RecordNotFound {
            space: self.space.id(),
            page: rid.page,
            slot: rid.slot,
        })?;
        Ok(f(rec))
    }

    /// Update a record. Returns the (possibly new) RID: the record moves to a
    /// different page when the grown body no longer fits in place.
    pub fn update(&self, rid: Rid, data: &[u8]) -> Result<Rid> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: data.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        {
            let g = self.space.fetch(rid.page)?;
            let mut p = g.write();
            match p.update(rid.slot, data) {
                Ok(true) => return Ok(rid),
                Ok(false) => { /* fall through: relocate */ }
                Err(e) => return Err(e),
            }
            p.delete(rid.slot)?;
        }
        self.insert(data)
    }

    /// Delete a record.
    pub fn delete(&self, rid: Rid) -> Result<()> {
        let g = self.space.fetch(rid.page)?;
        let mut p = g.write();
        p.delete(rid.slot)
            .map_err(|_| StorageError::RecordNotFound {
                space: self.space.id(),
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Full scan in page-chain order. The visitor returns `true` to continue.
    pub fn scan(&self, mut visit: impl FnMut(Rid, &[u8]) -> bool) -> Result<()> {
        let mut page_no = self.space.anchor(ANCHOR_FIRST)?;
        while page_no != 0 {
            let g = self.space.fetch(page_no)?;
            let p = g.read();
            for (slot, rec) in p.iter_records() {
                if !visit(Rid::new(page_no, slot), rec) {
                    return Ok(());
                }
            }
            page_no = p.next_page();
        }
        Ok(())
    }

    /// Relink the page chain after crash recovery: walk every allocated page
    /// of the space and chain the Data pages in page-number order, resetting
    /// the first/last anchors. Idempotent. Needed because chain-link updates
    /// are not logged physically; logical redo re-installs records at their
    /// RIDs but cannot know the chain.
    pub fn rebuild_chain(&self) -> Result<()> {
        let _g = self.append.lock();
        let hw = self.space.high_water()?;
        let mut first = 0u32;
        let mut prev = 0u32;
        for p in 1..hw {
            let g = self.space.fetch(p)?;
            let is_data = g.read().page_type() == PageType::Data;
            if !is_data {
                continue;
            }
            if first == 0 {
                first = p;
            } else {
                let pg = self.space.fetch(prev)?;
                pg.write().set_next_page(p);
            }
            g.write().set_next_page(0);
            prev = p;
        }
        if first != 0 {
            self.space.set_anchor(ANCHOR_FIRST, first)?;
            self.space.set_anchor(ANCHOR_LAST, prev)?;
        }
        Ok(())
    }

    /// Count pages and live records (used by the storage experiments).
    pub fn stats(&self) -> Result<HeapStats> {
        let mut s = HeapStats::default();
        let mut page_no = self.space.anchor(ANCHOR_FIRST)?;
        while page_no != 0 {
            let g = self.space.fetch(page_no)?;
            let p = g.read();
            s.pages += 1;
            for (_, rec) in p.iter_records() {
                s.records += 1;
                s.record_bytes += rec.len() as u64;
            }
            page_no = p.next_page();
        }
        Ok(s)
    }
}

/// Size statistics for a heap table.
#[derive(Default, Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Data pages in the chain.
    pub pages: u64,
    /// Live records.
    pub records: u64,
    /// Sum of live record body sizes.
    pub record_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::buffer::BufferPool;

    fn heap() -> Arc<HeapTable> {
        let pool = BufferPool::new(256);
        let ts = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).unwrap();
        HeapTable::create(ts).unwrap()
    }

    #[test]
    fn insert_fetch_delete() {
        let h = heap();
        let r = h.insert(b"record one").unwrap();
        assert_eq!(h.fetch(r).unwrap(), b"record one");
        h.delete(r).unwrap();
        assert!(matches!(
            h.fetch(r),
            Err(StorageError::RecordNotFound { .. })
        ));
    }

    #[test]
    fn fetch_arc_shares_one_copy() {
        let h = heap();
        let r = h.insert(b"shared record").unwrap();
        let a = h.fetch_arc(r).unwrap();
        let b = Arc::clone(&a);
        assert_eq!(&*a, b"shared record");
        assert_eq!(Arc::strong_count(&b), 2);
        h.delete(r).unwrap();
        // The shared copy outlives the heap record.
        assert_eq!(&*b, b"shared record");
        assert!(matches!(
            h.fetch_arc(r),
            Err(StorageError::RecordNotFound { .. })
        ));
    }

    #[test]
    fn inserts_span_pages() {
        let h = heap();
        let body = vec![1u8; 1000];
        let rids: Vec<Rid> = (0..50).map(|_| h.insert(&body).unwrap()).collect();
        let pages: std::collections::HashSet<u32> = rids.iter().map(|r| r.page).collect();
        assert!(pages.len() > 1, "records should spill onto multiple pages");
        for r in &rids {
            assert_eq!(h.fetch(*r).unwrap().len(), 1000);
        }
        let s = h.stats().unwrap();
        assert_eq!(s.records, 50);
        assert_eq!(s.pages as usize, pages.len().max(s.pages as usize));
    }

    #[test]
    fn update_in_place_and_relocated() {
        let h = heap();
        // Nearly fill the first page so a grown update must relocate.
        let filler = vec![0u8; 1200];
        let a = h.insert(&filler).unwrap();
        let b = h.insert(&filler).unwrap();
        let c = h.insert(&filler).unwrap();
        let small = h.insert(b"x").unwrap();
        // In-place shrink/equal.
        let same = h.update(a, &vec![9u8; 1000]).unwrap();
        assert_eq!(same, a);
        // Grow beyond page space: relocates.
        let grown = vec![7u8; 2000];
        let moved = h.update(small, &grown).unwrap();
        assert_ne!(moved.page, small.page);
        assert_eq!(h.fetch(moved).unwrap(), grown);
        let _ = (b, c);
    }

    #[test]
    fn scan_sees_all_records_in_order() {
        let h = heap();
        let bodies: Vec<Vec<u8>> = (0..120u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for b in &bodies {
            h.insert(b).unwrap();
        }
        let mut seen = Vec::new();
        h.scan(|_, rec| {
            seen.push(u32::from_le_bytes(rec.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen.len(), 120);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..120).collect::<Vec<_>>());
    }

    #[test]
    fn scan_early_stop() {
        let h = heap();
        for i in 0..10u8 {
            h.insert(&[i]).unwrap();
        }
        let mut n = 0;
        h.scan(|_, _| {
            n += 1;
            n < 3
        })
        .unwrap();
        assert_eq!(n, 3);
    }
}
