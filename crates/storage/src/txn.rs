//! Transactions.
//!
//! Ties together the WAL (durability), the lock manager (isolation) and
//! runtime undo actions (atomicity). The engine performs heap/index mutations
//! directly, then registers the corresponding log record and an undo closure
//! with the transaction; commit forces the log and releases locks, rollback
//! runs the undo chain in reverse (each undo re-logs its compensation so crash
//! recovery replays aborted transactions correctly).

use crate::error::{Result, StorageError};
use crate::lock::{LockManager, LockMode, LockName};
use crate::wal::{LogRecord, Lsn, TxnId, Wal};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Context handed to undo actions at rollback time so they can write
/// **compensation log records** for the reversals they perform. Without
/// compensations, crash recovery's repeat-history redo would replay an
/// aborted transaction's forward operations with nothing to cancel them
/// (and steal-policy page flushes could persist partial effects) — the
/// classical reason ARIES logs CLRs.
pub struct UndoCtx<'a> {
    wal: &'a Wal,
    txn: TxnId,
}

impl UndoCtx<'_> {
    /// The rolling-back transaction's id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Append a compensation record (must carry this transaction's id).
    pub fn log(&self, rec: &LogRecord) -> Result<Lsn> {
        debug_assert_eq!(
            rec.txn(),
            Some(self.txn),
            "compensation must carry the txn id"
        );
        self.wal.log(rec)
    }
}

/// An undo action registered alongside a forward operation. It receives an
/// [`UndoCtx`] and must log a compensation record for every reversal it
/// applies.
pub type UndoAction = Box<dyn FnOnce(&UndoCtx<'_>) -> Result<()> + Send>;

/// An outcome hook registered with [`Txn::push_hook`]: runs exactly once when
/// the transaction finishes, with `true` on commit (after the commit record
/// is durable and locks are released) and `false` on rollback or drop.
pub type TxnHook = Box<dyn FnOnce(bool) + Send>;

struct TxnState {
    /// LSN of the transaction's Begin record (the undo keep-floor a
    /// checkpoint must not truncate past while the txn is in flight).
    begin_lsn: Lsn,
    undo: Vec<UndoAction>,
    hooks: Vec<TxnHook>,
}

/// Allocates transaction ids and tracks active transactions.
pub struct TxnManager {
    wal: Arc<Wal>,
    locks: Arc<LockManager>,
    next: AtomicU64,
    active: Mutex<HashMap<TxnId, TxnState>>,
}

impl TxnManager {
    /// Create a transaction manager over a WAL and lock manager.
    pub fn new(wal: Arc<Wal>, locks: Arc<LockManager>) -> Arc<Self> {
        Arc::new(TxnManager {
            wal,
            locks,
            next: AtomicU64::new(1),
            active: Mutex::new(HashMap::new()),
        })
    }

    /// The lock manager shared with this transaction domain.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Begin a new transaction.
    pub fn begin(self: &Arc<Self>) -> Result<Txn> {
        let id = self.next.fetch_add(1, Ordering::AcqRel);
        let begin_lsn = self.wal.log(&LogRecord::Begin { txn: id })?;
        self.active.lock().insert(
            id,
            TxnState {
                begin_lsn,
                undo: Vec::new(),
                hooks: Vec::new(),
            },
        );
        Ok(Txn {
            id,
            mgr: Arc::clone(self),
            finished: false,
        })
    }

    /// Number of in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Lowest Begin LSN among in-flight transactions — a checkpoint must not
    /// truncate log records at or above this point, or recovery loses the
    /// undo chain (and possibly the eventual commit) of a live transaction.
    pub fn oldest_active_lsn(&self) -> Option<Lsn> {
        self.active.lock().values().map(|s| s.begin_lsn).min()
    }

    /// Remove the transaction and release its locks; the caller runs the
    /// returned outcome hooks *after* locks are released, so a hook (e.g. a
    /// cache epoch bump) observes the post-transaction lock state.
    fn finish(&self, id: TxnId) -> Vec<TxnHook> {
        let hooks = self
            .active
            .lock()
            .remove(&id)
            .map(|st| st.hooks)
            .unwrap_or_default();
        self.locks.unlock_all(id);
        hooks
    }
}

/// A live transaction handle. Dropping an unfinished transaction rolls it back.
pub struct Txn {
    id: TxnId,
    mgr: Arc<TxnManager>,
    finished: bool,
}

impl Txn {
    /// The transaction id (used in log records and lock ownership).
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Append a log record on behalf of this transaction.
    pub fn log(&self, rec: &LogRecord) -> Result<u64> {
        debug_assert_eq!(rec.txn(), Some(self.id), "record must carry this txn id");
        self.mgr.wal.log(rec)
    }

    /// Register an undo action to run if the transaction rolls back.
    pub fn push_undo(&self, action: UndoAction) {
        let mut active = self.mgr.active.lock();
        if let Some(st) = active.get_mut(&self.id) {
            st.undo.push(action);
        }
    }

    /// Register an outcome hook: runs once when the transaction finishes,
    /// with `committed = true` only after the commit record is durable and
    /// locks are released.
    pub fn push_hook(&self, hook: TxnHook) {
        let mut active = self.mgr.active.lock();
        if let Some(st) = active.get_mut(&self.id) {
            st.hooks.push(hook);
        }
    }

    /// Acquire a lock for this transaction (blocking).
    pub fn lock(&self, name: &LockName, mode: LockMode) -> Result<()> {
        self.mgr.locks.lock(self.id, name, mode)
    }

    /// Try to acquire a lock without blocking.
    pub fn try_lock(&self, name: &LockName, mode: LockMode) -> Result<bool> {
        self.mgr.locks.try_lock(self.id, name, mode)
    }

    /// Commit: wait until the commit record is durable (joining the current
    /// group-commit batch rather than forcing a private fsync), release locks.
    pub fn commit(mut self) -> Result<()> {
        if !self.finished {
            let lsn = self.mgr.wal.log(&LogRecord::Commit { txn: self.id })?;
            self.mgr.wal.wait_durable(lsn)?;
            let hooks = self.mgr.finish(self.id);
            self.finished = true;
            for h in hooks {
                h(true);
            }
        }
        Ok(())
    }

    /// Roll back: run undo actions in reverse, then log the abort.
    pub fn rollback(mut self) -> Result<()> {
        self.rollback_inner()
    }

    fn rollback_inner(&mut self) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        let undo = {
            let mut active = self.mgr.active.lock();
            match active.get_mut(&self.id) {
                Some(st) => std::mem::take(&mut st.undo),
                None => return Err(StorageError::TxnNotActive(self.id)),
            }
        };
        let ctx = UndoCtx {
            wal: &self.mgr.wal,
            txn: self.id,
        };
        let mut first_err = None;
        for action in undo.into_iter().rev() {
            if let Err(e) = action(&ctx) {
                first_err.get_or_insert(e);
            }
        }
        let lsn = self.mgr.wal.log(&LogRecord::Abort { txn: self.id })?;
        self.mgr.wal.wait_durable(lsn)?;
        let hooks = self.mgr.finish(self.id);
        self.finished = true;
        for h in hooks {
            h(false);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.rollback_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::MemLogStore;
    use std::sync::atomic::AtomicU32;

    fn mgr() -> Arc<TxnManager> {
        TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        )
    }

    #[test]
    fn commit_releases_locks_and_logs() {
        let m = mgr();
        let t = m.begin().unwrap();
        let id = t.id();
        t.lock(&LockName::Table(1), LockMode::X).unwrap();
        assert_eq!(m.locks().held_count(id), 1);
        t.commit().unwrap();
        assert_eq!(m.locks().held_count(id), 0);
        assert_eq!(m.active_count(), 0);
        let recs = m.wal().read_records().unwrap();
        assert!(matches!(recs[0], LogRecord::Begin { txn } if txn == id));
        assert!(matches!(recs[1], LogRecord::Commit { txn } if txn == id));
    }

    #[test]
    fn rollback_runs_undo_in_reverse() {
        let m = mgr();
        let order = Arc::new(Mutex::new(Vec::new()));
        let t = m.begin().unwrap();
        for i in 0..3 {
            let order = order.clone();
            t.push_undo(Box::new(move |_ctx| {
                order.lock().push(i);
                Ok(())
            }));
        }
        t.rollback().unwrap();
        assert_eq!(*order.lock(), vec![2, 1, 0]);
    }

    #[test]
    fn drop_rolls_back() {
        let m = mgr();
        let ran = Arc::new(AtomicU32::new(0));
        {
            let t = m.begin().unwrap();
            let ran = ran.clone();
            t.push_undo(Box::new(move |_ctx| {
                ran.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }));
            // dropped without commit
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(m.active_count(), 0);
        let recs = m.wal().read_records().unwrap();
        assert!(recs.iter().any(|r| matches!(r, LogRecord::Abort { .. })));
    }

    #[test]
    fn hooks_run_with_outcome() {
        let m = mgr();
        let outcome = Arc::new(Mutex::new(Vec::new()));
        // Commit path: hook sees true, after locks are released.
        let t = m.begin().unwrap();
        t.lock(&LockName::Table(1), LockMode::X).unwrap();
        let id = t.id();
        {
            let outcome = outcome.clone();
            let locks = Arc::clone(m.locks());
            t.push_hook(Box::new(move |committed| {
                outcome.lock().push((committed, locks.held_count(id)));
            }));
        }
        t.commit().unwrap();
        // Rollback path: hook sees false.
        let t = m.begin().unwrap();
        {
            let outcome = outcome.clone();
            t.push_hook(Box::new(move |committed| {
                outcome.lock().push((committed, 0));
            }));
        }
        t.rollback().unwrap();
        // Drop path: hook sees false.
        {
            let t = m.begin().unwrap();
            let outcome = outcome.clone();
            t.push_hook(Box::new(move |committed| {
                outcome.lock().push((committed, 0));
            }));
        }
        assert_eq!(*outcome.lock(), vec![(true, 0), (false, 0), (false, 0)]);
    }

    #[test]
    fn distinct_ids() {
        let m = mgr();
        let a = m.begin().unwrap();
        let b = m.begin().unwrap();
        assert_ne!(a.id(), b.id());
        a.commit().unwrap();
        b.commit().unwrap();
    }
}
