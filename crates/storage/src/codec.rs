//! Little byte codec used by the catalog and the engine's record formats.
//!
//! Fixed-width little-endian integers, LEB128 varints, and length-prefixed
//! byte strings over a growable buffer / cursor pair.

use crate::error::{Result, StorageError};

/// Append-only encoder.
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Enc {
            buf: Vec::with_capacity(n),
        }
    }

    /// Finish, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Write a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an LEB128 varint.
    pub fn varint(&mut self, mut v: u64) -> &mut Self {
        loop {
            let b = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                break;
            }
            self.buf.push(b | 0x80);
        }
        self
    }

    /// Write varint-length-prefixed bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
        self
    }

    /// Write a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Write raw bytes with no length prefix.
    pub fn raw(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }
}

/// Cursor decoder over a byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Begin decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Current cursor position.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let s = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or_else(|| StorageError::Catalog("decode past end of buffer".into()))?;
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.u8()?;
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(StorageError::Catalog("varint overflow".into()));
            }
        }
    }

    /// Read varint-length-prefixed bytes (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.varint()? as usize;
        self.take(n)
    }

    /// Read a varint-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| StorageError::Catalog("invalid UTF-8 in stored string".into()))
    }

    /// Read `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_everything() {
        let mut e = Enc::new();
        e.u8(7)
            .u16(300)
            .u32(70_000)
            .u64(u64::MAX)
            .varint(0)
            .varint(127)
            .varint(128)
            .varint(u64::MAX)
            .bytes(b"hello")
            .str("wörld");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.varint().unwrap(), 0);
        assert_eq!(d.varint().unwrap(), 127);
        assert_eq!(d.varint().unwrap(), 128);
        assert_eq!(d.varint().unwrap(), u64::MAX);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.str().unwrap(), "wörld");
        assert!(d.is_done());
    }

    #[test]
    fn decode_past_end_errors() {
        let mut d = Dec::new(&[1, 2]);
        assert_eq!(d.u16().unwrap(), 0x0201);
        assert!(d.u8().is_err());
    }

    #[test]
    fn varint_sizes() {
        for (v, n) in [(0u64, 1), (127, 1), (128, 2), (16_383, 2), (16_384, 3)] {
            let mut e = Enc::new();
            e.varint(v);
            assert_eq!(e.len(), n, "varint({v})");
        }
    }
}
