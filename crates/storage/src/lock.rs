//! Multi-granularity lock manager.
//!
//! §5 of the paper argues that XML concurrency needs "multiple granularity
//! locking \[4\] given the hierarchical nature of XML data", and that prefix-
//! encoded node IDs make the protocol efficient "because ancestor-descendant
//! relationship can be checked by testing if one is a prefix of the other".
//! This lock manager supports exactly that: the classical intent modes
//! (IS/IX/S/SIX/U/X) on database, table, and document resources, plus
//! *node-subtree* locks within a document whose conflicts are decided by node
//! ID prefix ancestry — a lock on a node implicitly covers its whole subtree.
//!
//! Deadlocks are detected eagerly with a waits-for graph; the requester whose
//! wait would close a cycle is chosen as victim.

use crate::error::{Result, StorageError};
use crate::wal::TxnId;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Contention counters, updated on the lock slow path. Exposed through
/// `Database::stats()` and the rx-server stats surface.
#[derive(Debug, Default)]
pub struct LockStats {
    /// Requests that had to block at least once before being granted
    /// (or failing).
    pub waits: AtomicU64,
    /// Requests that failed with [`StorageError::LockTimeout`].
    pub timeouts: AtomicU64,
    /// Requests refused with [`StorageError::Deadlock`] as the victim of a
    /// waits-for cycle.
    pub deadlocks: AtomicU64,
}

impl LockStats {
    /// Read `(waits, timeouts, deadlocks)` at once.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.waits.load(Ordering::Relaxed),
            self.timeouts.load(Ordering::Relaxed),
            self.deadlocks.load(Ordering::Relaxed),
        )
    }
}

/// Classical multiple-granularity lock modes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LockMode {
    /// Intent shared.
    IS,
    /// Intent exclusive.
    IX,
    /// Shared.
    S,
    /// Shared + intent exclusive.
    SIX,
    /// Update (read now, may upgrade to X).
    U,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Gray's compatibility matrix (U treated as compatible with read modes).
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, _) | (_, IX) => false,
            (S, S) => true,
            (S, U) | (U, S) => true,
            (S, _) | (_, S) => false,
            (SIX, _) | (_, SIX) => false,
            (U, U) => false,
            (U, X) | (X, U) => false,
            (X, X) => false,
        }
    }

    /// Whether holding `self` already satisfies a request for `req`.
    pub fn covers(self, req: LockMode) -> bool {
        use LockMode::*;
        match (self, req) {
            (a, b) if a == b => true,
            (X, _) => true,
            (SIX, IS) | (SIX, IX) | (SIX, S) => true,
            (S, IS) => true,
            (IX, IS) => true,
            (U, IS) | (U, S) => true,
            _ => false,
        }
    }

    /// The weakest mode covering both `self` and `other` (for upgrades).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self.covers(other) {
            return self;
        }
        if other.covers(self) {
            return other;
        }
        match (self, other) {
            (S, IX) | (IX, S) => SIX,
            (U, IX) | (IX, U) => SIX,
            _ => X,
        }
    }
}

/// A lockable resource. `Node` locks cover the subtree rooted at the node:
/// two node locks in the same document conflict when one node ID is a byte
/// prefix of the other.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
pub enum LockName {
    /// The whole database.
    Database,
    /// A base table (or its XML side tables, locked together).
    Table(u32),
    /// One document (a DocID lock, §5.1).
    Document {
        /// Owning table.
        table: u32,
        /// Document id.
        doc: u64,
    },
    /// A subtree within a document, named by its absolute node ID (§5.2).
    Node {
        /// Owning table.
        table: u32,
        /// Document id.
        doc: u64,
        /// Absolute (Dewey) node ID of the subtree root.
        node: Vec<u8>,
    },
}

/// Internal grouping key: node locks of one document share a group so prefix
/// conflicts can be checked by scanning the group.
#[derive(Clone, PartialEq, Eq, Debug, Hash)]
enum GroupKey {
    Plain(LockName),
    NodeGroup { table: u32, doc: u64 },
}

fn group_of(name: &LockName) -> (GroupKey, Option<Vec<u8>>) {
    match name {
        LockName::Node { table, doc, node } => (
            GroupKey::NodeGroup {
                table: *table,
                doc: *doc,
            },
            Some(node.clone()),
        ),
        other => (GroupKey::Plain(other.clone()), None),
    }
}

#[derive(Clone, Debug)]
struct Grant {
    txn: TxnId,
    mode: LockMode,
    /// Node ID for node-group grants; `None` for plain resources.
    node: Option<Vec<u8>>,
    count: u32,
}

fn grants_conflict(req_node: &Option<Vec<u8>>, req_mode: LockMode, g: &Grant) -> bool {
    if g.mode.compatible(req_mode) {
        return false;
    }
    match (req_node, &g.node) {
        (Some(a), Some(b)) => a.starts_with(b.as_slice()) || b.starts_with(a.as_slice()),
        _ => true,
    }
}

/// One held resource: its group key and, for node locks, the node ID.
type HeldLock = (GroupKey, Option<Vec<u8>>);

#[derive(Default)]
struct LmInner {
    groups: HashMap<GroupKey, Vec<Grant>>,
    /// txn -> resources it currently waits for (for the waits-for graph).
    waits_for: HashMap<TxnId, Vec<TxnId>>,
    /// All (group, node) pairs held per txn, for bulk release.
    held: HashMap<TxnId, Vec<HeldLock>>,
}

impl LmInner {
    fn blockers(
        &self,
        key: &GroupKey,
        node: &Option<Vec<u8>>,
        mode: LockMode,
        txn: TxnId,
    ) -> Vec<TxnId> {
        let Some(grants) = self.groups.get(key) else {
            return Vec::new();
        };
        grants
            .iter()
            .filter(|g| g.txn != txn && grants_conflict(node, mode, g))
            .map(|g| g.txn)
            .collect()
    }

    /// Would adding edges `txn -> blockers` close a cycle in the waits-for graph?
    fn creates_cycle(&self, txn: TxnId, blockers: &[TxnId]) -> bool {
        // DFS from each blocker; if we can reach `txn`, adding the edge cycles.
        let mut stack: Vec<TxnId> = blockers.to_vec();
        let mut seen: Vec<TxnId> = Vec::new();
        while let Some(t) = stack.pop() {
            if t == txn {
                return true;
            }
            if seen.contains(&t) {
                continue;
            }
            seen.push(t);
            if let Some(next) = self.waits_for.get(&t) {
                stack.extend_from_slice(next);
            }
        }
        false
    }

    fn grant(&mut self, txn: TxnId, key: GroupKey, node: Option<Vec<u8>>, mode: LockMode) {
        let grants = self.groups.entry(key.clone()).or_default();
        // Same txn, same resource: upgrade or re-entrant count.
        if let Some(g) = grants.iter_mut().find(|g| g.txn == txn && g.node == node) {
            if g.mode.covers(mode) {
                g.count += 1;
            } else {
                g.mode = g.mode.supremum(mode);
                g.count += 1;
            }
            return;
        }
        grants.push(Grant {
            txn,
            mode,
            node: node.clone(),
            count: 1,
        });
        self.held.entry(txn).or_default().push((key, node));
    }
}

/// The lock manager. One instance per database.
pub struct LockManager {
    inner: Mutex<LmInner>,
    cond: Condvar,
    timeout: Duration,
    /// Contention counters (waits / timeouts / deadlocks).
    pub stats: LockStats,
}

impl LockManager {
    /// Create a lock manager with the given wait timeout.
    pub fn new(timeout: Duration) -> Arc<Self> {
        Arc::new(LockManager {
            inner: Mutex::new(LmInner::default()),
            cond: Condvar::new(),
            timeout,
            stats: LockStats::default(),
        })
    }

    /// Create with the default 2-second timeout.
    pub fn with_defaults() -> Arc<Self> {
        Self::new(Duration::from_secs(2))
    }

    /// Acquire `mode` on `name` for `txn`, blocking while conflicting locks
    /// are held. Fails with [`StorageError::Deadlock`] when waiting would
    /// close a waits-for cycle, or [`StorageError::LockTimeout`] on timeout.
    pub fn lock(&self, txn: TxnId, name: &LockName, mode: LockMode) -> Result<()> {
        let (key, node) = group_of(name);
        let deadline = Instant::now() + self.timeout;
        let mut inner = self.inner.lock();
        loop {
            // Re-entrant fast path: already covered?
            if let Some(grants) = inner.groups.get_mut(&key) {
                if let Some(g) = grants.iter_mut().find(|g| g.txn == txn && g.node == node) {
                    if g.mode.covers(mode) {
                        g.count += 1;
                        return Ok(());
                    }
                }
            }
            let blockers = inner.blockers(&key, &node, mode, txn);
            if blockers.is_empty() {
                inner.grant(txn, key, node, mode);
                return Ok(());
            }
            if inner.creates_cycle(txn, &blockers) {
                self.stats.deadlocks.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::Deadlock);
            }
            self.stats.waits.fetch_add(1, Ordering::Relaxed);
            inner.waits_for.insert(txn, blockers);
            let timed_out = self.cond.wait_until(&mut inner, deadline).timed_out();
            inner.waits_for.remove(&txn);
            if timed_out {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(StorageError::LockTimeout);
            }
        }
    }

    /// Non-blocking acquire. Returns `Ok(false)` when a conflict exists.
    pub fn try_lock(&self, txn: TxnId, name: &LockName, mode: LockMode) -> Result<bool> {
        let (key, node) = group_of(name);
        let mut inner = self.inner.lock();
        if let Some(grants) = inner.groups.get_mut(&key) {
            if let Some(g) = grants.iter_mut().find(|g| g.txn == txn && g.node == node) {
                if g.mode.covers(mode) {
                    g.count += 1;
                    return Ok(true);
                }
            }
        }
        if inner.blockers(&key, &node, mode, txn).is_empty() {
            inner.grant(txn, key, node, mode);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Release one level of `name` for `txn` (locks are re-entrant counted).
    pub fn unlock(&self, txn: TxnId, name: &LockName) {
        let (key, node) = group_of(name);
        let mut inner = self.inner.lock();
        let mut emptied = false;
        if let Some(grants) = inner.groups.get_mut(&key) {
            if let Some(i) = grants.iter().position(|g| g.txn == txn && g.node == node) {
                grants[i].count -= 1;
                if grants[i].count == 0 {
                    grants.swap_remove(i);
                    emptied = grants.is_empty();
                    if let Some(h) = inner.held.get_mut(&txn) {
                        if let Some(j) = h.iter().position(|(k, n)| *k == key && *n == node) {
                            h.swap_remove(j);
                        }
                    }
                }
            }
        }
        if emptied {
            inner.groups.remove(&key);
        }
        drop(inner);
        self.cond.notify_all();
    }

    /// Release every lock held by `txn` (commit/rollback).
    pub fn unlock_all(&self, txn: TxnId) {
        let mut inner = self.inner.lock();
        if let Some(resources) = inner.held.remove(&txn) {
            for (key, node) in resources {
                if let Some(grants) = inner.groups.get_mut(&key) {
                    grants.retain(|g| !(g.txn == txn && g.node == node));
                    if grants.is_empty() {
                        inner.groups.remove(&key);
                    }
                }
            }
        }
        inner.waits_for.remove(&txn);
        drop(inner);
        self.cond.notify_all();
    }

    /// Number of distinct resources locked by `txn` (for tests).
    pub fn held_count(&self, txn: TxnId) -> usize {
        self.inner
            .lock()
            .held
            .get(&txn)
            .map_or(0, std::vec::Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    fn lm() -> Arc<LockManager> {
        LockManager::new(Duration::from_millis(200))
    }

    #[test]
    fn compatibility_matrix_spot_checks() {
        assert!(IS.compatible(IX));
        assert!(IX.compatible(IX));
        assert!(!IX.compatible(S));
        assert!(S.compatible(S));
        assert!(!S.compatible(X));
        assert!(!SIX.compatible(SIX));
        assert!(SIX.compatible(IS));
        assert!(!X.compatible(IS));
        assert!(U.compatible(S));
        assert!(!U.compatible(U));
    }

    #[test]
    fn shared_locks_coexist_exclusive_blocks() {
        let lm = lm();
        let doc = LockName::Document { table: 1, doc: 5 };
        lm.lock(1, &doc, S).unwrap();
        lm.lock(2, &doc, S).unwrap();
        assert!(!lm.try_lock(3, &doc, X).unwrap());
        lm.unlock_all(1);
        assert!(!lm.try_lock(3, &doc, X).unwrap());
        lm.unlock_all(2);
        assert!(lm.try_lock(3, &doc, X).unwrap());
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = lm();
        let t = LockName::Table(1);
        lm.lock(1, &t, S).unwrap();
        lm.lock(1, &t, S).unwrap();
        // Upgrade S -> X with no other holder succeeds.
        lm.lock(1, &t, X).unwrap();
        assert!(!lm.try_lock(2, &t, IS).unwrap());
        lm.unlock_all(1);
        assert!(lm.try_lock(2, &t, IS).unwrap());
    }

    #[test]
    fn node_prefix_conflicts() {
        let lm = lm();
        let parent = LockName::Node {
            table: 1,
            doc: 1,
            node: vec![0x02, 0x04],
        };
        let child = LockName::Node {
            table: 1,
            doc: 1,
            node: vec![0x02, 0x04, 0x06],
        };
        let sibling = LockName::Node {
            table: 1,
            doc: 1,
            node: vec![0x02, 0x06],
        };
        let other_doc = LockName::Node {
            table: 1,
            doc: 2,
            node: vec![0x02, 0x04],
        };
        lm.lock(1, &parent, X).unwrap();
        // Descendant of a locked subtree conflicts.
        assert!(!lm.try_lock(2, &child, S).unwrap());
        // Ancestor conflicts too.
        let root = LockName::Node {
            table: 1,
            doc: 1,
            node: vec![0x02],
        };
        assert!(!lm.try_lock(2, &root, S).unwrap());
        // Disjoint sibling subtree is fine.
        assert!(lm.try_lock(2, &sibling, X).unwrap());
        // Same node id in a different document is unrelated.
        assert!(lm.try_lock(3, &other_doc, X).unwrap());
    }

    #[test]
    fn deadlock_detected() {
        let lm = LockManager::new(Duration::from_secs(5));
        let a = LockName::Document { table: 1, doc: 1 };
        let b = LockName::Document { table: 1, doc: 2 };
        lm.lock(1, &a, X).unwrap();
        lm.lock(2, &b, X).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || lm2.lock(1, &b, X));
        // Give thread 1 time to start waiting on b.
        std::thread::sleep(Duration::from_millis(100));
        // Txn 2 requesting a would close the cycle.
        let r = lm.lock(2, &a, X);
        assert!(matches!(r, Err(StorageError::Deadlock)));
        lm.unlock_all(2);
        h.join().unwrap().unwrap();
        lm.unlock_all(1);
    }

    #[test]
    fn blocking_wait_resumes() {
        let lm = LockManager::new(Duration::from_secs(5));
        let d = LockName::Document { table: 1, doc: 9 };
        lm.lock(1, &d, X).unwrap();
        let lm2 = lm.clone();
        let h = std::thread::spawn(move || {
            let started = Instant::now();
            lm2.lock(2, &d, S).unwrap();
            started.elapsed()
        });
        std::thread::sleep(Duration::from_millis(80));
        lm.unlock_all(1);
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(50));
    }

    #[test]
    fn timeout_fires() {
        let lm = LockManager::new(Duration::from_millis(50));
        let d = LockName::Document { table: 1, doc: 3 };
        lm.lock(1, &d, X).unwrap();
        assert!(matches!(lm.lock(2, &d, S), Err(StorageError::LockTimeout)));
    }

    #[test]
    fn intent_locks_on_hierarchy() {
        let lm = lm();
        // Writer: IX on table, X on one document.
        lm.lock(1, &LockName::Table(1), IX).unwrap();
        lm.lock(1, &LockName::Document { table: 1, doc: 1 }, X)
            .unwrap();
        // Reader of a different document: IS on table, S on doc 2 — fine.
        lm.lock(2, &LockName::Table(1), IS).unwrap();
        assert!(lm
            .try_lock(2, &LockName::Document { table: 1, doc: 2 }, S)
            .unwrap());
        // Table-level S scan conflicts with writer's IX.
        assert!(!lm.try_lock(3, &LockName::Table(1), S).unwrap());
        lm.unlock_all(1);
        assert!(lm.try_lock(3, &LockName::Table(1), S).unwrap());
    }
}
