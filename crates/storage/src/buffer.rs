//! Buffer manager.
//!
//! A fixed-capacity pool of page frames shared by all table spaces, with
//! pin/unpin reference counting, dirty tracking, LRU-ish (clock) eviction and
//! write-back. XML services and relational services share this component
//! unchanged — the paper lists the buffer manager among the infrastructure
//! pieces that "need no enhancement" (§2).

use crate::backend::StorageBackend;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageType, PAGE_SIZE};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a table space within the database.
pub type SpaceId = u32;

/// Global page identifier: (table space, page number).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId {
    /// Table space the page belongs to.
    pub space: SpaceId,
    /// Page number within the space.
    pub page: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(space: SpaceId, page: u32) -> Self {
        PageId { space, page }
    }
}

struct Frame {
    pid: PageId,
    page: RwLock<Page>,
    pin: AtomicUsize,
    dirty: AtomicBool,
    referenced: AtomicBool,
}

/// Counters exposed for experiments (buffer behaviour is part of the paper's
/// I/O-unit argument in §3.1).
#[derive(Default)]
pub struct BufferStats {
    /// Page requests satisfied from the pool.
    pub hits: AtomicU64,
    /// Page requests that had to read from the backend.
    pub misses: AtomicU64,
    /// Frames evicted to make room.
    pub evictions: AtomicU64,
    /// Dirty pages written back to a backend.
    pub writebacks: AtomicU64,
}

impl BufferStats {
    /// Snapshot the counters as plain integers.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.writebacks.load(Ordering::Relaxed),
        )
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
    }
}

struct PoolInner {
    table: HashMap<PageId, Arc<Frame>>,
    clock: Vec<Arc<Frame>>,
    hand: usize,
}

/// The buffer pool: fixed number of frames, clock eviction, per-space backends.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
    backends: RwLock<HashMap<SpaceId, Arc<dyn StorageBackend>>>,
    /// Access counters.
    pub stats: BufferStats,
}

/// Smallest legal pool: the clock sweep needs headroom to find an
/// unpinned victim while a handful of pages are pinned.
pub const MIN_BUFFER_PAGES: usize = 8;

impl BufferPool {
    /// Create a pool with room for `capacity` pages.
    pub fn new(capacity: usize) -> Arc<Self> {
        assert!(
            capacity >= MIN_BUFFER_PAGES,
            "buffer pool needs at least {MIN_BUFFER_PAGES} frames"
        );
        Arc::new(BufferPool {
            capacity,
            inner: Mutex::new(PoolInner {
                table: HashMap::with_capacity(capacity),
                clock: Vec::with_capacity(capacity),
                hand: 0,
            }),
            backends: RwLock::new(HashMap::new()),
            stats: BufferStats::default(),
        })
    }

    /// Register the backend that stores pages for `space`.
    pub fn register_space(&self, space: SpaceId, backend: Arc<dyn StorageBackend>) {
        self.backends.write().insert(space, backend);
    }

    /// Drop all cached pages of `space` (used when a space is destroyed).
    pub fn forget_space(&self, space: SpaceId) {
        let mut inner = self.inner.lock();
        inner.table.retain(|pid, _| pid.space != space);
        inner.clock.retain(|f| f.pid.space != space);
        inner.hand = 0;
        self.backends.write().remove(&space);
    }

    fn backend(&self, space: SpaceId) -> Result<Arc<dyn StorageBackend>> {
        self.backends
            .read()
            .get(&space)
            .cloned()
            .ok_or_else(|| StorageError::Catalog(format!("table space {space} is not registered")))
    }

    /// Fetch a page, pinning it. The returned guard unpins on drop.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> Result<PageGuard> {
        // Fast path: already resident.
        {
            let inner = self.inner.lock();
            if let Some(f) = inner.table.get(&pid) {
                f.pin.fetch_add(1, Ordering::AcqRel);
                f.referenced.store(true, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PageGuard {
                    frame: Arc::clone(f),
                });
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Read outside the pool lock.
        let backend = self.backend(pid.space)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        backend.read_page(pid.page, &mut buf)?;
        let page = Page::from_bytes(&buf)?;

        let mut inner = self.inner.lock();
        // Re-check: another thread may have loaded it while we read.
        if let Some(f) = inner.table.get(&pid) {
            f.pin.fetch_add(1, Ordering::AcqRel);
            return Ok(PageGuard {
                frame: Arc::clone(f),
            });
        }
        let frame = Arc::new(Frame {
            pid,
            page: RwLock::new(page),
            pin: AtomicUsize::new(1),
            dirty: AtomicBool::new(false),
            referenced: AtomicBool::new(true),
        });
        if inner.clock.len() >= self.capacity {
            self.evict_one(&mut inner)?;
        }
        inner.table.insert(pid, Arc::clone(&frame));
        inner.clock.push(Arc::clone(&frame));
        Ok(PageGuard { frame })
    }

    /// Fetch a page and reformat it as a fresh page of `ptype` without reading
    /// the backend image (the caller knows it is newly allocated).
    pub fn fetch_new(self: &Arc<Self>, pid: PageId, ptype: PageType) -> Result<PageGuard> {
        let g = self.fetch(pid)?;
        {
            let mut p = g.write();
            p.format(ptype);
        }
        Ok(g)
    }

    fn evict_one(&self, inner: &mut PoolInner) -> Result<()> {
        // Clock sweep: skip pinned frames; clear reference bits; evict the
        // first unpinned, unreferenced frame.
        let n = inner.clock.len();
        for _ in 0..2 * n + 1 {
            let i = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let f = &inner.clock[i];
            if f.pin.load(Ordering::Acquire) > 0 {
                continue;
            }
            if f.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            let f = inner.clock.swap_remove(i);
            inner.hand = 0;
            inner.table.remove(&f.pid);
            if f.dirty.load(Ordering::Acquire) {
                let backend = self.backend(f.pid.space)?;
                let page = f.page.read();
                backend.write_page(f.pid.page, page.bytes().as_slice())?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        Err(StorageError::BufferPoolExhausted)
    }

    /// Write every dirty page back to its backend (without dropping them).
    pub fn flush_all(&self) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            inner.clock.to_vec()
        };
        for f in frames {
            if f.dirty.swap(false, Ordering::AcqRel) {
                let backend = self.backend(f.pid.space)?;
                let page = f.page.read();
                backend.write_page(f.pid.page, page.bytes().as_slice())?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        for b in self.backends.read().values() {
            b.sync()?;
        }
        Ok(())
    }

    /// Write back the dirty pages of one space only (targeted durability,
    /// e.g. catalog flushes).
    pub fn flush_space(&self, space: SpaceId) -> Result<()> {
        let frames: Vec<Arc<Frame>> = {
            let inner = self.inner.lock();
            inner
                .clock
                .iter()
                .filter(|f| f.pid.space == space)
                .cloned()
                .collect()
        };
        let backend = self.backend(space)?;
        for f in frames {
            if f.dirty.swap(false, Ordering::AcqRel) {
                let page = f.page.read();
                backend.write_page(f.pid.page, page.bytes().as_slice())?;
                self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
            }
        }
        backend.sync()?;
        Ok(())
    }

    /// Number of resident pages (for tests).
    pub fn resident(&self) -> usize {
        self.inner.lock().clock.len()
    }
}

/// A pinned page. Dropping the guard unpins the frame; reads and writes go
/// through an internal reader-writer latch. Writing marks the frame dirty.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// The page's identity.
    pub fn pid(&self) -> PageId {
        self.frame.pid
    }

    /// Acquire the page latch for reading.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Acquire the page latch for writing and mark the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.page.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn pool_with_space(cap: usize) -> Arc<BufferPool> {
        let pool = BufferPool::new(cap);
        pool.register_space(1, Arc::new(MemBackend::new()));
        pool
    }

    #[test]
    fn fetch_hit_and_miss() {
        let pool = pool_with_space(8);
        let pid = PageId::new(1, 0);
        {
            let g = pool.fetch(pid).unwrap();
            g.write().set_lsn(99);
        }
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read().lsn(), 99);
        let (hits, misses, _, _) = pool.stats.snapshot();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let backend = Arc::new(MemBackend::new());
        let pool = BufferPool::new(8);
        pool.register_space(1, backend.clone());
        // Dirty 20 pages through an 8-frame pool.
        for i in 0..20u32 {
            let g = pool.fetch(PageId::new(1, i)).unwrap();
            g.write().set_lsn(u64::from(i) + 1);
        }
        pool.flush_all().unwrap();
        // All 20 pages must be durable with their LSNs.
        for i in 0..20u32 {
            let mut buf = vec![0u8; PAGE_SIZE];
            backend.read_page(i, &mut buf).unwrap();
            let p = Page::from_bytes(&buf).unwrap();
            assert_eq!(p.lsn(), u64::from(i) + 1, "page {i}");
        }
        assert!(pool.resident() <= 8);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool_with_space(8);
        let guards: Vec<_> = (0..8u32)
            .map(|i| pool.fetch(PageId::new(1, i)).unwrap())
            .collect();
        // Pool full of pinned pages: next fetch must fail.
        assert!(matches!(
            pool.fetch(PageId::new(1, 100)),
            Err(StorageError::BufferPoolExhausted)
        ));
        drop(guards);
        assert!(pool.fetch(PageId::new(1, 100)).is_ok());
    }

    #[test]
    fn concurrent_fetches() {
        let pool = pool_with_space(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let g = pool.fetch(PageId::new(1, i % 32)).unwrap();
                        if (i + t) % 3 == 0 {
                            g.write().set_next_page(i);
                        } else {
                            let _ = g.read().next_page();
                        }
                    }
                });
            }
        });
    }
}
