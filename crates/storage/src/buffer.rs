//! Buffer manager.
//!
//! A fixed-capacity pool of page frames shared by all table spaces, with
//! pin/unpin reference counting, dirty tracking, LRU-ish (clock) eviction and
//! write-back. XML services and relational services share this component
//! unchanged — the paper lists the buffer manager among the infrastructure
//! pieces that "need no enhancement" (§2).
//!
//! The pool is **lock-striped**: frames are distributed over N independent
//! shards keyed by a hash of the [`PageId`], each with its own hash table,
//! clock hand and capacity slice. Concurrent fetches of pages in different
//! shards never contend on a common mutex, which is what lets the rx-server
//! worker pool scale page access across threads (the paper's scalability
//! claim rests on inheriting exactly this property from the relational
//! buffer manager).

use crate::backend::StorageBackend;
use crate::error::{Result, StorageError};
use crate::page::{Page, PageType, PAGE_SIZE};
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identifier of a table space within the database.
pub type SpaceId = u32;

/// Global page identifier: (table space, page number).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId {
    /// Table space the page belongs to.
    pub space: SpaceId,
    /// Page number within the space.
    pub page: u32,
}

impl PageId {
    /// Construct a page id.
    pub fn new(space: SpaceId, page: u32) -> Self {
        PageId { space, page }
    }
}

struct Frame {
    pid: PageId,
    page: RwLock<Page>,
    pin: AtomicUsize,
    dirty: AtomicBool,
    referenced: AtomicBool,
}

/// Counters exposed for experiments (buffer behaviour is part of the paper's
/// I/O-unit argument in §3.1). Aggregated across shards; per-shard breakdowns
/// come from [`BufferPool::shard_stats`].
#[derive(Default)]
pub struct BufferStats {
    /// Page requests satisfied from the pool.
    pub hits: AtomicU64,
    /// Page requests that had to read from the backend.
    pub misses: AtomicU64,
    /// Frames evicted to make room.
    pub evictions: AtomicU64,
    /// Dirty pages written back to a backend.
    pub writebacks: AtomicU64,
    /// Shard-mutex acquisitions that found the mutex already held.
    pub contention: AtomicU64,
}

impl BufferStats {
    /// Snapshot the main counters as plain integers
    /// (hits, misses, evictions, writebacks).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.writebacks.load(Ordering::Relaxed),
        )
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.writebacks.store(0, Ordering::Relaxed);
        self.contention.store(0, Ordering::Relaxed);
    }
}

/// Live per-shard counters.
#[derive(Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    contention: AtomicU64,
}

/// Point-in-time view of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Page requests satisfied from this shard.
    pub hits: u64,
    /// Page requests this shard had to read from the backend.
    pub misses: u64,
    /// Lock acquisitions on this shard that found the mutex held.
    pub contention: u64,
    /// Frames currently resident in this shard.
    pub resident: u64,
}

struct ShardInner {
    table: HashMap<PageId, Arc<Frame>>,
    clock: Vec<Arc<Frame>>,
    hand: usize,
}

struct Shard {
    /// This shard's slice of the pool capacity.
    capacity: usize,
    inner: Mutex<ShardInner>,
    stats: ShardStats,
}

/// The buffer pool: fixed number of frames striped over shards, per-shard
/// clock eviction, per-space backends.
pub struct BufferPool {
    shards: Vec<Shard>,
    backends: RwLock<HashMap<SpaceId, Arc<dyn StorageBackend>>>,
    /// Access counters (aggregated across shards).
    pub stats: BufferStats,
}

/// Smallest legal pool: the clock sweep needs headroom to find an
/// unpinned victim while a handful of pages are pinned.
pub const MIN_BUFFER_PAGES: usize = 8;

/// Upper bound on the shard count. 16 shards covers the worker-pool sizes
/// the server runs with while keeping per-shard capacity large enough for
/// the clock policy to behave like a cache rather than a FIFO.
pub const MAX_BUFFER_SHARDS: usize = 16;

/// Shard count for a given capacity: the largest power of two that is at
/// most [`MAX_BUFFER_SHARDS`] and keeps every shard at least
/// [`MIN_BUFFER_PAGES`] frames.
fn shard_count_for(capacity: usize) -> usize {
    let max_by_cap = (capacity / MIN_BUFFER_PAGES).clamp(1, MAX_BUFFER_SHARDS);
    let mut n = 1;
    while n * 2 <= max_by_cap {
        n *= 2;
    }
    n
}

impl BufferPool {
    /// Create a pool with room for `capacity` pages, auto-sharded.
    pub fn new(capacity: usize) -> Arc<Self> {
        Self::with_shards(capacity, shard_count_for(capacity))
    }

    /// Create a pool with an explicit shard count (must be a power of two
    /// with at least [`MIN_BUFFER_PAGES`] frames per shard).
    pub fn with_shards(capacity: usize, shards: usize) -> Arc<Self> {
        assert!(
            capacity >= MIN_BUFFER_PAGES,
            "buffer pool needs at least {MIN_BUFFER_PAGES} frames"
        );
        assert!(
            shards >= 1 && shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        assert!(
            capacity / shards >= MIN_BUFFER_PAGES,
            "each shard needs at least {MIN_BUFFER_PAGES} frames"
        );
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Shard {
                capacity: base + usize::from(i < extra),
                inner: Mutex::new(ShardInner {
                    table: HashMap::with_capacity(base + 1),
                    clock: Vec::with_capacity(base + 1),
                    hand: 0,
                }),
                stats: ShardStats::default(),
            })
            .collect();
        Arc::new(BufferPool {
            shards,
            backends: RwLock::new(HashMap::new()),
            stats: BufferStats::default(),
        })
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity).sum()
    }

    fn shard_of(&self, pid: PageId) -> &Shard {
        // Fibonacci hash of (space, page); shard count is a power of two.
        let key = (u64::from(pid.space) << 32) | u64::from(pid.page);
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Lock a shard, counting the acquisition as contended if the mutex was
    /// already held.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardInner> {
        match shard.inner.try_lock() {
            Some(g) => g,
            None => {
                shard.stats.contention.fetch_add(1, Ordering::Relaxed);
                self.stats.contention.fetch_add(1, Ordering::Relaxed);
                shard.inner.lock()
            }
        }
    }

    /// Register the backend that stores pages for `space`.
    pub fn register_space(&self, space: SpaceId, backend: Arc<dyn StorageBackend>) {
        self.backends.write().insert(space, backend);
    }

    /// Drop all cached pages of `space` (used when a space is destroyed).
    pub fn forget_space(&self, space: SpaceId) {
        for shard in &self.shards {
            let mut inner = self.lock_shard(shard);
            inner.table.retain(|pid, _| pid.space != space);
            inner.clock.retain(|f| f.pid.space != space);
            inner.hand = match inner.clock.len() {
                0 => 0,
                n => inner.hand % n,
            };
        }
        self.backends.write().remove(&space);
    }

    fn backend(&self, space: SpaceId) -> Result<Arc<dyn StorageBackend>> {
        self.backends
            .read()
            .get(&space)
            .cloned()
            .ok_or_else(|| StorageError::Catalog(format!("table space {space} is not registered")))
    }

    /// Fetch a page, pinning it. The returned guard unpins on drop.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> Result<PageGuard> {
        let shard = self.shard_of(pid);
        // Fast path: already resident.
        {
            let inner = self.lock_shard(shard);
            if let Some(f) = inner.table.get(&pid) {
                f.pin.fetch_add(1, Ordering::AcqRel);
                f.referenced.store(true, Ordering::Relaxed);
                shard.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PageGuard {
                    frame: Arc::clone(f),
                });
            }
        }
        shard.stats.misses.fetch_add(1, Ordering::Relaxed);
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        // Read outside the shard lock.
        let backend = self.backend(pid.space)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        backend.read_page(pid.page, &mut buf)?;
        let page = Page::from_bytes(&buf)?;

        let mut inner = self.lock_shard(shard);
        // Re-check: another thread may have loaded it while we read.
        if let Some(f) = inner.table.get(&pid) {
            f.pin.fetch_add(1, Ordering::AcqRel);
            return Ok(PageGuard {
                frame: Arc::clone(f),
            });
        }
        let frame = Arc::new(Frame {
            pid,
            page: RwLock::new(page),
            pin: AtomicUsize::new(1),
            dirty: AtomicBool::new(false),
            referenced: AtomicBool::new(true),
        });
        if inner.clock.len() >= shard.capacity {
            self.evict_one(&mut inner)?;
        }
        inner.table.insert(pid, Arc::clone(&frame));
        inner.clock.push(Arc::clone(&frame));
        Ok(PageGuard { frame })
    }

    /// Fetch a page and reformat it as a fresh page of `ptype` without reading
    /// the backend image (the caller knows it is newly allocated).
    pub fn fetch_new(self: &Arc<Self>, pid: PageId, ptype: PageType) -> Result<PageGuard> {
        let g = self.fetch(pid)?;
        {
            let mut p = g.write();
            p.format(ptype);
        }
        Ok(g)
    }

    fn evict_one(&self, inner: &mut ShardInner) -> Result<()> {
        // Clock sweep: skip pinned frames; clear reference bits; evict the
        // first unpinned, unreferenced frame.
        let n = inner.clock.len();
        for _ in 0..2 * n + 1 {
            let i = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let f = &inner.clock[i];
            if f.pin.load(Ordering::Acquire) > 0 {
                continue;
            }
            if f.referenced.swap(false, Ordering::Relaxed) {
                continue;
            }
            // Write back while the frame is still owned by the shard, so a
            // failed write leaves the page resident and dirty instead of
            // dropping it on the floor.
            if f.dirty.swap(false, Ordering::AcqRel) {
                if let Err(e) = self.write_back(f) {
                    f.dirty.store(true, Ordering::Release);
                    return Err(e);
                }
            }
            let f = inner.clock.swap_remove(i);
            // swap_remove moved the former tail frame into slot `i`; keep the
            // hand there so the sweep examines it next instead of restarting
            // at the front of the vector.
            inner.hand = match inner.clock.len() {
                0 => 0,
                len => i % len,
            };
            inner.table.remove(&f.pid);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
        Err(StorageError::BufferPoolExhausted)
    }

    fn write_back(&self, f: &Frame) -> Result<()> {
        let backend = self.backend(f.pid.space)?;
        let page = f.page.read();
        backend.write_page(f.pid.page, page.bytes().as_slice())?;
        self.stats.writebacks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Write back the dirty frames of `frames`, restoring the dirty bit on
    /// failure so an I/O error never silently discards an update.
    fn flush_frames(&self, frames: &[Arc<Frame>]) -> Result<()> {
        for f in frames {
            if f.dirty.swap(false, Ordering::AcqRel) {
                if let Err(e) = self.write_back(f) {
                    f.dirty.store(true, Ordering::Release);
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Write every dirty page back to its backend (without dropping them).
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let frames: Vec<Arc<Frame>> = {
                let inner = self.lock_shard(shard);
                inner.clock.to_vec()
            };
            self.flush_frames(&frames)?;
        }
        for b in self.backends.read().values() {
            b.sync()?;
        }
        Ok(())
    }

    /// Write back the dirty pages of one space only (targeted durability,
    /// e.g. catalog flushes).
    pub fn flush_space(&self, space: SpaceId) -> Result<()> {
        let backend = self.backend(space)?;
        for shard in &self.shards {
            let frames: Vec<Arc<Frame>> = {
                let inner = self.lock_shard(shard);
                inner
                    .clock
                    .iter()
                    .filter(|f| f.pid.space == space)
                    .cloned()
                    .collect()
            };
            self.flush_frames(&frames)?;
        }
        backend.sync()?;
        Ok(())
    }

    /// Number of resident pages (for tests). Takes the shard locks uncounted
    /// so stats polling never inflates the contention counters it reports.
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.inner.lock().clock.len()).sum()
    }

    /// Per-shard counter snapshot (hits, misses, contention, resident).
    /// Locks are uncounted here for the same reason as [`Self::resident`].
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shards
            .iter()
            .map(|s| ShardStatsSnapshot {
                hits: s.stats.hits.load(Ordering::Relaxed),
                misses: s.stats.misses.load(Ordering::Relaxed),
                contention: s.stats.contention.load(Ordering::Relaxed),
                resident: s.inner.lock().clock.len() as u64,
            })
            .collect()
    }
}

/// A pinned page. Dropping the guard unpins the frame; reads and writes go
/// through an internal reader-writer latch. Writing marks the frame dirty.
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// The page's identity.
    pub fn pid(&self) -> PageId {
        self.frame.pid
    }

    /// Acquire the page latch for reading.
    pub fn read(&self) -> RwLockReadGuard<'_, Page> {
        self.frame.page.read()
    }

    /// Acquire the page latch for writing and mark the page dirty.
    pub fn write(&self) -> RwLockWriteGuard<'_, Page> {
        self.frame.dirty.store(true, Ordering::Release);
        self.frame.page.write()
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.frame.pin.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn pool_with_space(cap: usize) -> Arc<BufferPool> {
        let pool = BufferPool::new(cap);
        pool.register_space(1, Arc::new(MemBackend::new()));
        pool
    }

    #[test]
    fn shard_counts_scale_with_capacity() {
        assert_eq!(shard_count_for(8), 1);
        assert_eq!(shard_count_for(15), 1);
        assert_eq!(shard_count_for(16), 2);
        assert_eq!(shard_count_for(64), 8);
        assert_eq!(shard_count_for(4096), 16);
        assert_eq!(BufferPool::new(8).shard_count(), 1);
        assert_eq!(BufferPool::new(4096).shard_count(), 16);
        assert_eq!(BufferPool::new(4096).capacity(), 4096);
        // Uneven split still sums to the requested capacity.
        assert_eq!(BufferPool::with_shards(100, 4).capacity(), 100);
    }

    #[test]
    fn fetch_hit_and_miss() {
        let pool = pool_with_space(8);
        let pid = PageId::new(1, 0);
        {
            let g = pool.fetch(pid).unwrap();
            g.write().set_lsn(99);
        }
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.read().lsn(), 99);
        let (hits, misses, _, _) = pool.stats.snapshot();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let backend = Arc::new(MemBackend::new());
        let pool = BufferPool::new(8);
        pool.register_space(1, backend.clone());
        // Dirty 20 pages through an 8-frame pool.
        for i in 0..20u32 {
            let g = pool.fetch(PageId::new(1, i)).unwrap();
            g.write().set_lsn(u64::from(i) + 1);
        }
        pool.flush_all().unwrap();
        // All 20 pages must be durable with their LSNs.
        for i in 0..20u32 {
            let mut buf = vec![0u8; PAGE_SIZE];
            backend.read_page(i, &mut buf).unwrap();
            let p = Page::from_bytes(&buf).unwrap();
            assert_eq!(p.lsn(), u64::from(i) + 1, "page {i}");
        }
        assert!(pool.resident() <= 8);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let pool = pool_with_space(8);
        let guards: Vec<_> = (0..8u32)
            .map(|i| pool.fetch(PageId::new(1, i)).unwrap())
            .collect();
        // Pool full of pinned pages: next fetch must fail.
        assert!(matches!(
            pool.fetch(PageId::new(1, 100)),
            Err(StorageError::BufferPoolExhausted)
        ));
        drop(guards);
        assert!(pool.fetch(PageId::new(1, 100)).is_ok());
    }

    #[test]
    fn concurrent_fetches() {
        let pool = pool_with_space(64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..200u32 {
                        let g = pool.fetch(PageId::new(1, i % 32)).unwrap();
                        if (i + t) % 3 == 0 {
                            g.write().set_next_page(i);
                        } else {
                            let _ = g.read().next_page();
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn pages_spread_across_shards() {
        let pool = pool_with_space(128);
        assert_eq!(pool.shard_count(), 16);
        for i in 0..64u32 {
            pool.fetch(PageId::new(1, i)).unwrap();
        }
        let per_shard = pool.shard_stats();
        let used = per_shard.iter().filter(|s| s.misses > 0).count();
        assert!(used > 4, "64 pages landed on only {used} shards");
        let total_misses: u64 = per_shard.iter().map(|s| s.misses).sum();
        assert_eq!(total_misses, pool.stats.misses.load(Ordering::Relaxed));
        let resident: u64 = per_shard.iter().map(|s| s.resident).sum();
        assert_eq!(resident as usize, pool.resident());
    }

    #[test]
    fn forget_space_clears_only_that_space() {
        let pool = pool_with_space(64);
        pool.register_space(2, Arc::new(MemBackend::new()));
        for i in 0..16u32 {
            pool.fetch(PageId::new(1, i)).unwrap();
            pool.fetch(PageId::new(2, i)).unwrap();
        }
        pool.forget_space(1);
        assert_eq!(pool.resident(), 16);
        assert!(pool.fetch(PageId::new(1, 0)).is_err()); // backend unregistered
        assert!(pool.fetch(PageId::new(2, 0)).is_ok());
    }

    /// A backend whose writes can be made to fail, for dirty-bit tests.
    struct FlakyBackend {
        inner: MemBackend,
        fail_writes: AtomicBool,
    }

    impl FlakyBackend {
        fn new() -> Self {
            FlakyBackend {
                inner: MemBackend::new(),
                fail_writes: AtomicBool::new(false),
            }
        }
    }

    impl StorageBackend for FlakyBackend {
        fn read_page(&self, page_no: u32, buf: &mut [u8]) -> Result<()> {
            self.inner.read_page(page_no, buf)
        }
        fn write_page(&self, page_no: u32, buf: &[u8]) -> Result<()> {
            if self.fail_writes.load(Ordering::Relaxed) {
                return Err(StorageError::Catalog("injected write failure".into()));
            }
            self.inner.write_page(page_no, buf)
        }
        fn page_count(&self) -> u32 {
            self.inner.page_count()
        }
        fn ensure_pages(&self, n: u32) -> Result<()> {
            self.inner.ensure_pages(n)
        }
        fn sync(&self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn flush_failure_keeps_pages_dirty() {
        let backend = Arc::new(FlakyBackend::new());
        let pool = BufferPool::new(8);
        pool.register_space(1, backend.clone());
        let pid = PageId::new(1, 0);
        {
            let g = pool.fetch(pid).unwrap();
            g.write().set_lsn(42);
        }
        backend.fail_writes.store(true, Ordering::Relaxed);
        assert!(pool.flush_all().is_err());
        // The dirty bit must survive the failed write: once the backend
        // recovers, a retry flushes the update.
        backend.fail_writes.store(false, Ordering::Relaxed);
        pool.flush_all().unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        backend.read_page(0, &mut buf).unwrap();
        assert_eq!(Page::from_bytes(&buf).unwrap().lsn(), 42);
    }

    #[test]
    fn clock_hand_survives_eviction() {
        // Single shard so the sweep order is observable. Fill the shard,
        // evict repeatedly, and check the pool keeps functioning with the
        // hand advancing (a regression here turns the clock into a
        // front-of-vector scan, which the hit-rate assertion below catches
        // indirectly: the resident set must keep rotating).
        let pool = pool_with_space(8);
        for i in 0..32u32 {
            let g = pool.fetch(PageId::new(1, i)).unwrap();
            g.write().set_lsn(u64::from(i) + 1);
        }
        assert!(pool.resident() <= 8);
        let (_, _, evictions, _) = pool.stats.snapshot();
        assert!(evictions >= 24);
        // All pages still readable with correct contents after heavy churn.
        for i in 0..32u32 {
            let g = pool.fetch(PageId::new(1, i)).unwrap();
            assert_eq!(g.read().lsn(), u64::from(i) + 1, "page {i}");
        }
    }
}
