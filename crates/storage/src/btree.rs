//! Disk-backed B+tree.
//!
//! The "same mature B+tree infrastructure for relational indexes" that the
//! paper extends for XPath indexes (§3.3). Keys are variable-length byte
//! strings compared lexicographically; values are `u64` (typically a packed
//! [`crate::rid::Rid`]). The engine builds every index in the paper on this
//! structure:
//!
//! * the **NodeID index** with keys `(DocID, upper-endpoint NodeID)` — probed
//!   with a *ceiling* search ([`BTree::search_ceil`]) per §3.4;
//! * **XPath value indexes** with keys `(keyval, DocID, NodeID)`;
//! * the base-table **DocID index**;
//! * versioned NodeID indexes `(DocID, !ver#, NodeID)` for multiversioning.
//!
//! Each tree node is one slotted-page record (slot 0) holding a sorted entry
//! list; leaves are chained through the page `next_page` link for range scans.
//! Deletion is lazy (no rebalancing), which matches common industrial practice
//! and keeps scans correct.

use crate::error::{Result, StorageError};
use crate::page::{PageType, MAX_RECORD_SIZE};
use crate::space::TableSpace;
use parking_lot::RwLock;
use std::sync::Arc;

/// Maximum key length accepted (guarantees several entries per node).
pub const MAX_KEY_SIZE: usize = 1024;

/// A B+tree index over a table space. One anchor slot of the space stores the
/// root page number so the root may move across splits.
///
/// ```
/// use std::sync::Arc;
/// use rx_storage::{BTree, BufferPool, MemBackend, TableSpace};
///
/// let pool = BufferPool::new(64);
/// let space = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).unwrap();
/// let tree = BTree::create(space, 2).unwrap();
/// tree.insert(b"widget", 7).unwrap();
/// assert_eq!(tree.search(b"widget").unwrap(), Some(7));
/// let (key, value) = tree.search_ceil(b"w").unwrap().unwrap();
/// assert_eq!((key.as_slice(), value), (&b"widget"[..], 7));
/// ```
pub struct BTree {
    space: Arc<TableSpace>,
    anchor: usize,
    latch: RwLock<()>,
}

// ---------------------------------------------------------------------------
// Node byte layout (stored as record 0 of its page)
//
// Leaf:      [count u16] ( [klen u16][key][val u64] )*count      sorted by key
// Internal:  [count u16][child0 u32] ( [klen u16][key][child u32] )*count
//            child0 holds keys < key[0]; child[i] holds keys >= key[i].
// ---------------------------------------------------------------------------

struct LeafEntry<'a> {
    key: &'a [u8],
    val: u64,
}

fn leaf_iter(buf: &[u8]) -> impl Iterator<Item = LeafEntry<'_>> {
    let count = u16::from_le_bytes([buf[0], buf[1]]) as usize;
    let mut off = 2;
    (0..count).map(move |_| {
        let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let key = &buf[off + 2..off + 2 + klen];
        let val = u64::from_le_bytes(buf[off + 2 + klen..off + 10 + klen].try_into().unwrap());
        off += 10 + klen;
        LeafEntry { key, val }
    })
}

fn leaf_count(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[0], buf[1]]) as usize
}

/// Locate the insertion point for `key` in a leaf buffer. Returns
/// `(byte_offset, index, exact_match)`.
fn leaf_find(buf: &[u8], key: &[u8]) -> (usize, usize, bool) {
    let count = leaf_count(buf);
    let mut off = 2;
    for i in 0..count {
        let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let k = &buf[off + 2..off + 2 + klen];
        match k.cmp(key) {
            std::cmp::Ordering::Less => off += 10 + klen,
            std::cmp::Ordering::Equal => return (off, i, true),
            std::cmp::Ordering::Greater => return (off, i, false),
        }
    }
    (off, count, false)
}

fn leaf_entry_at(buf: &[u8], mut off: usize) -> (&[u8], u64, usize) {
    let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
    let key = &buf[off + 2..off + 2 + klen];
    let val = u64::from_le_bytes(buf[off + 2 + klen..off + 10 + klen].try_into().unwrap());
    off += 10 + klen;
    (key, val, off)
}

fn internal_count(buf: &[u8]) -> usize {
    u16::from_le_bytes([buf[0], buf[1]]) as usize
}

/// Find the child page that may contain `key`: the child of the rightmost
/// separator `<= key`, or `child0` when `key` precedes every separator.
/// Returns `(child_page, slot_index_of_that_child)` where slot 0 = child0.
fn internal_route(buf: &[u8], key: &[u8]) -> (u32, usize) {
    let count = internal_count(buf);
    let mut child = u32::from_le_bytes(buf[2..6].try_into().unwrap());
    let mut idx = 0usize;
    let mut off = 6;
    for i in 0..count {
        let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let k = &buf[off + 2..off + 2 + klen];
        if k <= key {
            child = u32::from_le_bytes(buf[off + 2 + klen..off + 6 + klen].try_into().unwrap());
            idx = i + 1;
        } else {
            break;
        }
        off += 6 + klen;
    }
    (child, idx)
}

/// Leftmost child of an internal node.
fn internal_first_child(buf: &[u8]) -> u32 {
    u32::from_le_bytes(buf[2..6].try_into().unwrap())
}

/// Insert `(key, child)` as a separator into an internal buffer.
fn internal_insert(buf: &mut Vec<u8>, key: &[u8], child: u32) {
    let count = internal_count(buf);
    let mut off = 6;
    let mut idx = count;
    for i in 0..count {
        let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let k = &buf[off + 2..off + 2 + klen];
        if k > key {
            idx = i;
            break;
        }
        off += 6 + klen;
    }
    let _ = idx;
    let mut entry = Vec::with_capacity(6 + key.len());
    entry.extend_from_slice(&(key.len() as u16).to_le_bytes());
    entry.extend_from_slice(key);
    entry.extend_from_slice(&child.to_le_bytes());
    buf.splice(off..off, entry);
    let c = (count + 1) as u16;
    buf[0..2].copy_from_slice(&c.to_le_bytes());
}

struct SplitResult {
    sep: Vec<u8>,
    right_page: u32,
}

impl BTree {
    /// Create a new empty tree, recording its root page in `anchor`.
    pub fn create(space: Arc<TableSpace>, anchor: usize) -> Result<Arc<Self>> {
        let root = space.allocate(PageType::BTreeLeaf)?;
        let root_no = root.pid().page;
        root.write().insert(&0u16.to_le_bytes())?; // empty leaf: count=0
        drop(root);
        space.set_anchor(anchor, root_no)?;
        Ok(Arc::new(BTree {
            space,
            anchor,
            latch: RwLock::new(()),
        }))
    }

    /// Open a tree previously created in `space` at `anchor`.
    pub fn open(space: Arc<TableSpace>, anchor: usize) -> Result<Arc<Self>> {
        if space.anchor(anchor)? == 0 {
            return Err(StorageError::Index(format!(
                "no B+tree at anchor {anchor} of space {}",
                space.id()
            )));
        }
        Ok(Arc::new(BTree {
            space,
            anchor,
            latch: RwLock::new(()),
        }))
    }

    fn root(&self) -> Result<u32> {
        self.space.anchor(self.anchor)
    }

    fn read_node(&self, page_no: u32) -> Result<(PageType, Vec<u8>)> {
        let g = self.space.fetch(page_no)?;
        let p = g.read();
        let t = p.page_type();
        let rec = p.get(0).ok_or_else(|| {
            StorageError::Index(format!("B+tree page {page_no} has no node record"))
        })?;
        Ok((t, rec.to_vec()))
    }

    fn write_node(&self, page_no: u32, buf: &[u8]) -> Result<()> {
        let g = self.space.fetch(page_no)?;
        let mut p = g.write();
        if !p.update(0, buf)? {
            // One record per page: compaction must always make room.
            p.compact();
            if !p.update(0, buf)? {
                return Err(StorageError::Index(format!(
                    "B+tree node of {} bytes cannot be stored",
                    buf.len()
                )));
            }
        }
        Ok(())
    }

    /// Exact-match lookup.
    pub fn search(&self, key: &[u8]) -> Result<Option<u64>> {
        let _g = self.latch.read();
        let (leaf_no, _) = self.descend(key)?;
        let (_, buf) = self.read_node(leaf_no)?;
        let (off, _, exact) = leaf_find(&buf, key);
        if exact {
            let (_, val, _) = leaf_entry_at(&buf, off);
            Ok(Some(val))
        } else {
            Ok(None)
        }
    }

    /// Ceiling search: the smallest entry with key `>= key`, if any. This is
    /// the probe the NodeID index uses (§3.4): node IDs are mapped to the
    /// record whose interval *upper endpoint* is the first at-or-above the
    /// probe.
    pub fn search_ceil(&self, key: &[u8]) -> Result<Option<(Vec<u8>, u64)>> {
        let _g = self.latch.read();
        let (mut leaf_no, _) = self.descend(key)?;
        loop {
            let g = self.space.fetch(leaf_no)?;
            let p = g.read();
            let buf = p
                .get(0)
                .ok_or_else(|| StorageError::Index("leaf missing node record".into()))?;
            let (off, idx, _exact) = leaf_find(buf, key);
            if idx < leaf_count(buf) {
                let (k, v, _) = leaf_entry_at(buf, off);
                return Ok(Some((k.to_vec(), v)));
            }
            let next = p.next_page();
            if next == 0 {
                return Ok(None);
            }
            leaf_no = next;
        }
    }

    /// Descend from the root to the leaf that covers `key`, returning the
    /// leaf page number and the path of internal pages visited.
    fn descend(&self, key: &[u8]) -> Result<(u32, Vec<u32>)> {
        let mut path = Vec::new();
        let mut page_no = self.root()?;
        loop {
            let (t, buf) = self.read_node(page_no)?;
            match t {
                PageType::BTreeLeaf => return Ok((page_no, path)),
                PageType::BTreeInternal => {
                    path.push(page_no);
                    let (child, _) = internal_route(&buf, key);
                    page_no = child;
                }
                other => {
                    return Err(StorageError::Index(format!(
                        "unexpected page type {other:?} in B+tree descent"
                    )))
                }
            }
        }
    }

    /// Insert or replace. Returns the previous value when the key existed.
    pub fn insert(&self, key: &[u8], val: u64) -> Result<Option<u64>> {
        if key.len() > MAX_KEY_SIZE {
            return Err(StorageError::Index(format!(
                "key of {} bytes exceeds MAX_KEY_SIZE {MAX_KEY_SIZE}",
                key.len()
            )));
        }
        let _g = self.latch.write();
        let (leaf_no, path) = self.descend(key)?;
        let (_, mut buf) = self.read_node(leaf_no)?;
        let (off, _, exact) = leaf_find(&buf, key);
        let prev = if exact {
            let (_, old, _) = leaf_entry_at(&buf, off);
            // Replace value in place.
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            buf[off + 2 + klen..off + 10 + klen].copy_from_slice(&val.to_le_bytes());
            Some(old)
        } else {
            let mut entry = Vec::with_capacity(10 + key.len());
            entry.extend_from_slice(&(key.len() as u16).to_le_bytes());
            entry.extend_from_slice(key);
            entry.extend_from_slice(&val.to_le_bytes());
            buf.splice(off..off, entry);
            let c = (leaf_count(&buf) + 1) as u16;
            buf[0..2].copy_from_slice(&c.to_le_bytes());
            None
        };
        if buf.len() <= MAX_RECORD_SIZE {
            self.write_node(leaf_no, &buf)?;
            return Ok(prev);
        }
        // Leaf overflow: split and propagate separators up the path.
        let mut split = self.split_leaf(leaf_no, buf)?;
        for &parent_no in path.iter().rev() {
            let (_, mut pbuf) = self.read_node(parent_no)?;
            internal_insert(&mut pbuf, &split.sep, split.right_page);
            if pbuf.len() <= MAX_RECORD_SIZE {
                self.write_node(parent_no, &pbuf)?;
                return Ok(prev);
            }
            split = self.split_internal(parent_no, pbuf)?;
        }
        // The root itself split: grow the tree by one level.
        let old_root = self.root()?;
        let new_root = self.space.allocate(PageType::BTreeInternal)?;
        let new_root_no = new_root.pid().page;
        let mut rbuf = Vec::with_capacity(12 + split.sep.len());
        rbuf.extend_from_slice(&1u16.to_le_bytes());
        rbuf.extend_from_slice(&old_root.to_le_bytes());
        rbuf.extend_from_slice(&(split.sep.len() as u16).to_le_bytes());
        rbuf.extend_from_slice(&split.sep);
        rbuf.extend_from_slice(&split.right_page.to_le_bytes());
        new_root.write().insert(&rbuf)?;
        drop(new_root);
        self.space.set_anchor(self.anchor, new_root_no)?;
        Ok(prev)
    }

    fn split_leaf(&self, leaf_no: u32, buf: Vec<u8>) -> Result<SplitResult> {
        let count = leaf_count(&buf);
        debug_assert!(count >= 2);
        let mid = count / 2;
        // Find the byte offset of entry `mid` and its key (the separator).
        let mut off = 2;
        for _ in 0..mid {
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            off += 10 + klen;
        }
        let sep = {
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            buf[off + 2..off + 2 + klen].to_vec()
        };
        let mut left = Vec::with_capacity(off);
        left.extend_from_slice(&(mid as u16).to_le_bytes());
        left.extend_from_slice(&buf[2..off]);
        let mut right = Vec::with_capacity(buf.len() - off + 2);
        right.extend_from_slice(&((count - mid) as u16).to_le_bytes());
        right.extend_from_slice(&buf[off..]);

        let right_page = self.space.allocate(PageType::BTreeLeaf)?;
        let right_no = right_page.pid().page;
        // Chain: left -> right -> old next.
        let left_guard = self.space.fetch(leaf_no)?;
        let old_next = left_guard.read().next_page();
        right_page.write().set_next_page(old_next);
        right_page.write().insert(&right)?;
        drop(right_page);
        left_guard.write().set_next_page(right_no);
        drop(left_guard);
        self.write_node(leaf_no, &left)?;
        Ok(SplitResult {
            sep,
            right_page: right_no,
        })
    }

    fn split_internal(&self, page_no: u32, buf: Vec<u8>) -> Result<SplitResult> {
        let count = internal_count(&buf);
        debug_assert!(count >= 3);
        let mid = count / 2;
        // Walk to entry `mid`; its key becomes the separator pushed up, its
        // child becomes the right node's child0.
        let mut off = 6;
        for _ in 0..mid {
            let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
            off += 6 + klen;
        }
        let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
        let sep = buf[off + 2..off + 2 + klen].to_vec();
        let right_child0 =
            u32::from_le_bytes(buf[off + 2 + klen..off + 6 + klen].try_into().unwrap());
        let rest = off + 6 + klen;

        let mut left = Vec::with_capacity(off);
        left.extend_from_slice(&(mid as u16).to_le_bytes());
        left.extend_from_slice(&buf[2..off]);
        let mut right = Vec::with_capacity(buf.len() - rest + 6);
        right.extend_from_slice(&((count - mid - 1) as u16).to_le_bytes());
        right.extend_from_slice(&right_child0.to_le_bytes());
        right.extend_from_slice(&buf[rest..]);

        let right_page = self.space.allocate(PageType::BTreeInternal)?;
        let right_no = right_page.pid().page;
        right_page.write().insert(&right)?;
        drop(right_page);
        self.write_node(page_no, &left)?;
        Ok(SplitResult {
            sep,
            right_page: right_no,
        })
    }

    /// Delete an exact key. Returns the removed value, `None` when absent.
    /// Deletion is lazy: nodes are never merged.
    pub fn delete(&self, key: &[u8]) -> Result<Option<u64>> {
        let _g = self.latch.write();
        let (leaf_no, _) = self.descend(key)?;
        let (_, mut buf) = self.read_node(leaf_no)?;
        let (off, _, exact) = leaf_find(&buf, key);
        if !exact {
            return Ok(None);
        }
        let (_, val, end) = leaf_entry_at(&buf, off);
        buf.drain(off..end);
        let c = (leaf_count(&buf) - 1) as u16;
        buf[0..2].copy_from_slice(&c.to_le_bytes());
        self.write_node(leaf_no, &buf)?;
        Ok(Some(val))
    }

    /// Range scan from `start` (inclusive): collect entries while `take`
    /// returns `true`; stop at the first entry it rejects.
    pub fn scan_from(&self, start: &[u8], mut take: impl FnMut(&[u8], u64) -> bool) -> Result<()> {
        let _g = self.latch.read();
        let (mut leaf_no, _) = self.descend(start)?;
        let mut skip_key = Some(start.to_vec());
        loop {
            let g = self.space.fetch(leaf_no)?;
            let p = g.read();
            let buf = p
                .get(0)
                .ok_or_else(|| StorageError::Index("leaf missing node record".into()))?;
            for e in leaf_iter(buf) {
                if let Some(sk) = &skip_key {
                    if e.key < sk.as_slice() {
                        continue;
                    }
                    skip_key = None;
                }
                if !take(e.key, e.val) {
                    return Ok(());
                }
            }
            let next = p.next_page();
            if next == 0 {
                return Ok(());
            }
            leaf_no = next;
        }
    }

    /// Scan every entry whose key starts with `prefix`.
    pub fn scan_prefix(
        &self,
        prefix: &[u8],
        mut take: impl FnMut(&[u8], u64) -> bool,
    ) -> Result<()> {
        self.scan_from(prefix, |k, v| {
            if !k.starts_with(prefix) && k > prefix {
                return false;
            }
            if k.starts_with(prefix) {
                take(k, v)
            } else {
                true
            }
        })
    }

    /// Scan the whole tree in key order.
    pub fn scan_all(&self, take: impl FnMut(&[u8], u64) -> bool) -> Result<()> {
        self.scan_from(&[], take)
    }

    /// Count entries (full scan; for tests and the storage experiments).
    pub fn len(&self) -> Result<u64> {
        let mut n = 0;
        self.scan_all(|_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// True when the tree has no entries.
    pub fn is_empty(&self) -> Result<bool> {
        let mut any = false;
        self.scan_all(|_, _| {
            any = true;
            false
        })?;
        Ok(!any)
    }

    /// Number of pages the tree occupies (internal + leaf), for size reports.
    pub fn page_count(&self) -> Result<u64> {
        let _g = self.latch.read();
        let mut pages = 0u64;
        let mut stack = vec![self.root()?];
        while let Some(pno) = stack.pop() {
            pages += 1;
            let (t, buf) = self.read_node(pno)?;
            if t == PageType::BTreeInternal {
                stack.push(internal_first_child(&buf));
                let count = internal_count(&buf);
                let mut off = 6;
                for _ in 0..count {
                    let klen = u16::from_le_bytes([buf[off], buf[off + 1]]) as usize;
                    let child =
                        u32::from_le_bytes(buf[off + 2 + klen..off + 6 + klen].try_into().unwrap());
                    stack.push(child);
                    off += 6 + klen;
                }
            }
        }
        Ok(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::buffer::BufferPool;

    fn tree() -> Arc<BTree> {
        let pool = BufferPool::new(1024);
        let ts = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).unwrap();
        BTree::create(ts, 2).unwrap()
    }

    #[test]
    fn insert_search_small() {
        let t = tree();
        assert_eq!(t.search(b"a").unwrap(), None);
        t.insert(b"b", 2).unwrap();
        t.insert(b"a", 1).unwrap();
        t.insert(b"c", 3).unwrap();
        assert_eq!(t.search(b"a").unwrap(), Some(1));
        assert_eq!(t.search(b"b").unwrap(), Some(2));
        assert_eq!(t.search(b"c").unwrap(), Some(3));
        assert_eq!(t.search(b"d").unwrap(), None);
    }

    #[test]
    fn upsert_replaces() {
        let t = tree();
        assert_eq!(t.insert(b"k", 1).unwrap(), None);
        assert_eq!(t.insert(b"k", 2).unwrap(), Some(1));
        assert_eq!(t.search(b"k").unwrap(), Some(2));
        assert_eq!(t.len().unwrap(), 1);
    }

    #[test]
    fn many_keys_with_splits() {
        let t = tree();
        let n = 20_000u64;
        // Insert in a scrambled order to exercise splits everywhere.
        for i in 0..n {
            let k = (i * 2654435761 % n).to_be_bytes();
            t.insert(&k, i).unwrap();
        }
        for i in 0..n {
            let key = (i * 2654435761 % n).to_be_bytes();
            assert_eq!(t.search(&key).unwrap(), Some(i), "key {i}");
        }
        assert_eq!(t.len().unwrap(), n);
        // Keys come back in order.
        let mut prev: Option<Vec<u8>> = None;
        t.scan_all(|k, _| {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k);
            }
            prev = Some(k.to_vec());
            true
        })
        .unwrap();
        assert!(t.page_count().unwrap() > 10);
    }

    #[test]
    fn ceiling_search() {
        let t = tree();
        for i in (0..100u32).map(|i| i * 10) {
            t.insert(&i.to_be_bytes(), u64::from(i)).unwrap();
        }
        // Exact hit.
        let (k, v) = t.search_ceil(&50u32.to_be_bytes()).unwrap().unwrap();
        assert_eq!((k.as_slice(), v), (&50u32.to_be_bytes()[..], 50));
        // Between entries: rounds up.
        let (k, v) = t.search_ceil(&51u32.to_be_bytes()).unwrap().unwrap();
        assert_eq!((k.as_slice(), v), (&60u32.to_be_bytes()[..], 60));
        // Past the end.
        assert!(t.search_ceil(&2000u32.to_be_bytes()).unwrap().is_none());
    }

    #[test]
    fn delete_and_rescan() {
        let t = tree();
        for i in 0..1000u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        for i in (0..1000u64).filter(|i| i % 3 == 0) {
            assert_eq!(t.delete(&i.to_be_bytes()).unwrap(), Some(i));
        }
        assert_eq!(t.delete(&3u64.to_be_bytes()).unwrap(), None);
        for i in 0..1000u64 {
            let expect = if i % 3 == 0 { None } else { Some(i) };
            assert_eq!(t.search(&i.to_be_bytes()).unwrap(), expect);
        }
        assert_eq!(t.len().unwrap(), 1000 - 334);
    }

    #[test]
    fn range_scan_window() {
        let t = tree();
        for i in 0..500u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        let mut got = Vec::new();
        t.scan_from(&100u64.to_be_bytes(), |k, v| {
            let key = u64::from_be_bytes(k.try_into().unwrap());
            if key >= 110 {
                return false;
            }
            got.push(v);
            true
        })
        .unwrap();
        assert_eq!(got, (100..110).collect::<Vec<u64>>());
    }

    #[test]
    fn prefix_scan() {
        let t = tree();
        t.insert(b"doc1/a", 1).unwrap();
        t.insert(b"doc1/b", 2).unwrap();
        t.insert(b"doc10/a", 3).unwrap();
        t.insert(b"doc2/a", 4).unwrap();
        let mut got = Vec::new();
        t.scan_prefix(b"doc1/", |_, v| {
            got.push(v);
            true
        })
        .unwrap();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn variable_length_keys() {
        let t = tree();
        let keys: Vec<Vec<u8>> = (0..2000usize)
            .map(|i| {
                let mut k = vec![b'k'; i % 60 + 1];
                k.extend_from_slice(&(i as u32).to_be_bytes());
                k
            })
            .collect();
        for (i, k) in keys.iter().enumerate() {
            t.insert(k, i as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(t.search(k).unwrap(), Some(i as u64));
        }
    }

    #[test]
    fn rejects_oversized_key() {
        let t = tree();
        let k = vec![0u8; MAX_KEY_SIZE + 1];
        assert!(t.insert(&k, 0).is_err());
    }

    #[test]
    fn persists_through_reopen() {
        let pool = BufferPool::new(1024);
        let backend = Arc::new(MemBackend::new());
        {
            let ts = TableSpace::create(pool.clone(), 5, backend.clone()).unwrap();
            let t = BTree::create(ts, 2).unwrap();
            for i in 0..5000u64 {
                t.insert(&i.to_be_bytes(), i * 7).unwrap();
            }
            pool.flush_all().unwrap();
        }
        pool.forget_space(5);
        let ts = TableSpace::open(pool, 5, backend).unwrap();
        let t = BTree::open(ts, 2).unwrap();
        for i in (0..5000u64).step_by(97) {
            assert_eq!(t.search(&i.to_be_bytes()).unwrap(), Some(i * 7));
        }
        assert_eq!(t.len().unwrap(), 5000);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::buffer::BufferPool;
    use std::sync::Arc;

    fn tree() -> Arc<BTree> {
        let pool = BufferPool::new(1024);
        let ts = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).unwrap();
        BTree::create(ts, 2).unwrap()
    }

    #[test]
    fn empty_tree_operations() {
        let t = tree();
        assert_eq!(t.search(b"x").unwrap(), None);
        assert_eq!(t.search_ceil(b"").unwrap(), None);
        assert_eq!(t.delete(b"x").unwrap(), None);
        assert!(t.is_empty().unwrap());
        assert_eq!(t.len().unwrap(), 0);
        let mut n = 0;
        t.scan_all(|_, _| {
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 0);
        assert_eq!(t.page_count().unwrap(), 1);
    }

    #[test]
    fn max_size_keys() {
        let t = tree();
        // Keys at the size limit still allow multiple entries per node.
        for i in 0..10u8 {
            let mut k = vec![i; MAX_KEY_SIZE];
            k[0] = i;
            t.insert(&k, u64::from(i)).unwrap();
        }
        for i in 0..10u8 {
            let mut k = vec![i; MAX_KEY_SIZE];
            k[0] = i;
            assert_eq!(t.search(&k).unwrap(), Some(u64::from(i)));
        }
        assert_eq!(t.len().unwrap(), 10);
    }

    #[test]
    fn empty_key_is_valid() {
        let t = tree();
        t.insert(b"", 42).unwrap();
        t.insert(b"a", 1).unwrap();
        assert_eq!(t.search(b"").unwrap(), Some(42));
        // The empty key sorts first.
        let (k, v) = t.search_ceil(b"").unwrap().unwrap();
        assert_eq!((k.as_slice(), v), (&b""[..], 42));
    }

    #[test]
    fn descending_insert_order() {
        let t = tree();
        for i in (0..5000u64).rev() {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        assert_eq!(t.len().unwrap(), 5000);
        let mut prev = None;
        t.scan_all(|k, _| {
            let key = u64::from_be_bytes(k.try_into().unwrap());
            if let Some(p) = prev {
                assert!(key > p);
            }
            prev = Some(key);
            true
        })
        .unwrap();
    }

    #[test]
    fn interleaved_insert_delete_churn() {
        let t = tree();
        // Repeatedly fill and drain overlapping ranges.
        for round in 0..5u64 {
            for i in 0..2000u64 {
                t.insert(&(i * 3 + round).to_be_bytes(), i).unwrap();
            }
            for i in 0..1000u64 {
                t.delete(&(i * 3 + round).to_be_bytes()).unwrap();
            }
        }
        // The survivors are exactly the keys never deleted.
        let len = t.len().unwrap();
        assert!(len > 0);
        let mut count = 0;
        t.scan_all(|_, _| {
            count += 1;
            true
        })
        .unwrap();
        assert_eq!(count, len);
    }

    #[test]
    fn scan_from_beyond_everything() {
        let t = tree();
        for i in 0..100u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        let mut hits = 0;
        t.scan_from(&u64::MAX.to_be_bytes(), |_, _| {
            hits += 1;
            true
        })
        .unwrap();
        assert_eq!(hits, 0);
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t = tree();
        for i in 0..2000u64 {
            t.insert(&i.to_be_bytes(), i).unwrap();
        }
        std::thread::scope(|s| {
            let t2 = Arc::clone(&t);
            s.spawn(move || {
                for i in 2000..4000u64 {
                    t2.insert(&i.to_be_bytes(), i).unwrap();
                }
            });
            for _ in 0..3 {
                let t3 = Arc::clone(&t);
                s.spawn(move || {
                    for i in (0..2000u64).step_by(37) {
                        assert_eq!(t3.search(&i.to_be_bytes()).unwrap(), Some(i));
                    }
                });
            }
        });
        assert_eq!(t.len().unwrap(), 4000);
    }
}
