//! The catalog: a persistent key-value directory.
//!
//! The paper reuses the relational "catalog and directory" unchanged (§2) and
//! stores compiled binary schemas in it (§3.2, Fig. 4). This module provides
//! the generic mechanism: a crash-safe key→value store over a heap table with
//! an in-memory map for reads. The engine layers its object definitions
//! (tables, XML columns, XPath value indexes, registered schemas, the XML
//! name dictionary) on top as encoded entries under reserved key prefixes.

use crate::error::{Result, StorageError};
use crate::heap::HeapTable;
use crate::rid::Rid;
use crate::space::TableSpace;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// In-memory catalog entry: the record's RID plus the cached value bytes.
type CachedEntry = (Rid, Vec<u8>);

/// Persistent key-value catalog.
pub struct Catalog {
    heap: Arc<HeapTable>,
    map: RwLock<BTreeMap<Vec<u8>, CachedEntry>>,
}

impl Catalog {
    /// Create a fresh catalog in `space`.
    pub fn create(space: Arc<TableSpace>) -> Result<Arc<Self>> {
        let heap = HeapTable::create(space)?;
        Ok(Arc::new(Catalog {
            heap,
            map: RwLock::new(BTreeMap::new()),
        }))
    }

    /// Open an existing catalog, loading all entries into memory.
    pub fn open(space: Arc<TableSpace>) -> Result<Arc<Self>> {
        let heap = HeapTable::open(space)?;
        let mut map = BTreeMap::new();
        let mut bad: Option<StorageError> = None;
        heap.scan(|rid, rec| {
            match decode_entry(rec) {
                Ok((k, v)) => {
                    map.insert(k, (rid, v));
                }
                Err(e) => bad = Some(e),
            }
            bad.is_none()
        })?;
        if let Some(e) = bad {
            return Err(e);
        }
        Ok(Arc::new(Catalog {
            heap,
            map: RwLock::new(map),
        }))
    }

    /// Insert or replace the value stored under `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let rec = encode_entry(key, value);
        let mut map = self.map.write();
        match map.get(key) {
            Some((rid, _)) => {
                let new_rid = self.heap.update(*rid, &rec)?;
                map.insert(key.to_vec(), (new_rid, value.to_vec()));
            }
            None => {
                let rid = self.heap.insert(&rec)?;
                map.insert(key.to_vec(), (rid, value.to_vec()));
            }
        }
        Ok(())
    }

    /// Read the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.map.read().get(key).map(|(_, v)| v.clone())
    }

    /// True when `key` exists.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map.read().contains_key(key)
    }

    /// Remove `key`. Returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> Result<bool> {
        let mut map = self.map.write();
        match map.remove(key) {
            Some((rid, _)) => {
                self.heap.delete(rid)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// All `(key, value)` pairs whose key starts with `prefix`, in key order.
    pub fn list_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.map
            .read()
            .range(prefix.to_vec()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, (_, v))| (k.clone(), v.clone()))
            .collect()
    }

    /// Read a `u64` counter stored under `key` (0 when absent).
    pub fn counter(&self, key: &[u8]) -> u64 {
        self.get(key)
            .and_then(|v| v.try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0)
    }

    /// Atomically increment and persist a counter, returning the *new* value.
    pub fn bump_counter(&self, key: &[u8]) -> Result<u64> {
        // put() serializes on the map lock; read-modify-write under it.
        let mut map = self.map.write();
        let cur = map
            .get(key)
            .and_then(|(_, v)| v.clone().try_into().ok().map(u64::from_le_bytes))
            .unwrap_or(0);
        let next = cur + 1;
        let value = next.to_le_bytes().to_vec();
        let rec = encode_entry(key, &value);
        match map.get(key) {
            Some((rid, _)) => {
                let new_rid = self.heap.update(*rid, &rec)?;
                map.insert(key.to_vec(), (new_rid, value));
            }
            None => {
                let rid = self.heap.insert(&rec)?;
                map.insert(key.to_vec(), (rid, value));
            }
        }
        Ok(next)
    }

    /// Number of catalog entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

fn encode_entry(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut e = crate::codec::Enc::with_capacity(key.len() + value.len() + 8);
    e.bytes(key).bytes(value);
    e.into_bytes()
}

fn decode_entry(rec: &[u8]) -> Result<(Vec<u8>, Vec<u8>)> {
    let mut d = crate::codec::Dec::new(rec);
    let k = d.bytes()?.to_vec();
    let v = d.bytes()?.to_vec();
    Ok((k, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::buffer::BufferPool;

    fn fresh() -> (Arc<BufferPool>, Arc<MemBackend>, Arc<Catalog>) {
        let pool = BufferPool::new(128);
        let backend = Arc::new(MemBackend::new());
        let ts = TableSpace::create(pool.clone(), 0, backend.clone()).unwrap();
        let cat = Catalog::create(ts).unwrap();
        (pool, backend, cat)
    }

    #[test]
    fn put_get_delete() {
        let (_, _, cat) = fresh();
        cat.put(b"tbl/1", b"orders").unwrap();
        assert_eq!(cat.get(b"tbl/1").unwrap(), b"orders");
        cat.put(b"tbl/1", b"orders-v2").unwrap();
        assert_eq!(cat.get(b"tbl/1").unwrap(), b"orders-v2");
        assert!(cat.delete(b"tbl/1").unwrap());
        assert!(!cat.delete(b"tbl/1").unwrap());
        assert!(cat.get(b"tbl/1").is_none());
    }

    #[test]
    fn prefix_listing_in_order() {
        let (_, _, cat) = fresh();
        cat.put(b"idx/2", b"b").unwrap();
        cat.put(b"idx/1", b"a").unwrap();
        cat.put(b"tbl/1", b"t").unwrap();
        cat.put(b"idx/3", b"c").unwrap();
        let got: Vec<Vec<u8>> = cat
            .list_prefix(b"idx/")
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(got, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn counters() {
        let (_, _, cat) = fresh();
        assert_eq!(cat.counter(b"docid"), 0);
        assert_eq!(cat.bump_counter(b"docid").unwrap(), 1);
        assert_eq!(cat.bump_counter(b"docid").unwrap(), 2);
        assert_eq!(cat.counter(b"docid"), 2);
    }

    #[test]
    fn persists_across_reopen() {
        let (pool, backend, cat) = fresh();
        cat.put(b"a", b"1").unwrap();
        cat.put(b"b", &vec![9u8; 2000]).unwrap();
        cat.bump_counter(b"n").unwrap();
        pool.flush_all().unwrap();
        pool.forget_space(0);
        let ts = TableSpace::open(pool, 0, backend).unwrap();
        let cat2 = Catalog::open(ts).unwrap();
        assert_eq!(cat2.get(b"a").unwrap(), b"1");
        assert_eq!(cat2.get(b"b").unwrap().len(), 2000);
        assert_eq!(cat2.counter(b"n"), 1);
        assert_eq!(cat2.len(), 3);
    }
}
