//! Write-ahead logging and crash recovery.
//!
//! The paper reuses relational "logging, backup and recovery" unchanged (§2),
//! which works because packed XML records are ordinary heap records and XPath
//! indexes are ordinary B+tree entries. The log here is logical and
//! operation-based: each record names a heap or index mutation precisely
//! enough to be redone (idempotently, "install at RID" semantics) and undone
//! (via before images). Recovery is ARIES-style repeat-history: redo every
//! operation in LSN order, then undo losers in reverse.

use crate::btree::BTree;
use crate::buffer::SpaceId;
use crate::error::{Result, StorageError};
use crate::heap::HeapTable;
use crate::rid::Rid;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Log sequence number.
pub type Lsn = u64;
/// Transaction identifier.
pub type TxnId = u64;

/// A logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum LogRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit (flush point).
    Commit { txn: TxnId },
    /// Transaction abort (undo already applied at runtime).
    Abort { txn: TxnId },
    /// Heap record installed at a RID.
    HeapInsert {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        data: Vec<u8>,
    },
    /// Heap record replaced in place.
    HeapUpdate {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Heap record removed.
    HeapDelete {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        before: Vec<u8>,
    },
    /// B+tree upsert; `prev` is the replaced value, if any.
    IndexInsert {
        txn: TxnId,
        space: SpaceId,
        anchor: u32,
        key: Vec<u8>,
        value: u64,
        prev: Option<u64>,
    },
    /// B+tree exact-key delete; `value` is the removed value.
    IndexDelete {
        txn: TxnId,
        space: SpaceId,
        anchor: u32,
        key: Vec<u8>,
        value: u64,
    },
    /// All dirty pages flushed; log before this point is not needed for redo.
    Checkpoint,
}

impl LogRecord {
    /// The owning transaction, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::HeapInsert { txn, .. }
            | LogRecord::HeapUpdate { txn, .. }
            | LogRecord::HeapDelete { txn, .. }
            | LogRecord::IndexInsert { txn, .. }
            | LogRecord::IndexDelete { txn, .. } => Some(*txn),
            LogRecord::Checkpoint => None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        fn put_rid(out: &mut Vec<u8>, r: Rid) {
            out.extend_from_slice(&r.page.to_le_bytes());
            out.extend_from_slice(&r.slot.to_le_bytes());
        }
        match self {
            LogRecord::Begin { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::HeapInsert {
                txn,
                space,
                rid,
                data,
            } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, data);
            }
            LogRecord::HeapUpdate {
                txn,
                space,
                rid,
                before,
                after,
            } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, before);
                put_bytes(out, after);
            }
            LogRecord::HeapDelete {
                txn,
                space,
                rid,
                before,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, before);
            }
            LogRecord::IndexInsert {
                txn,
                space,
                anchor,
                key,
                value,
                prev,
            } => {
                out.push(7);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                out.extend_from_slice(&anchor.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&value.to_le_bytes());
                match prev {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            LogRecord::IndexDelete {
                txn,
                space,
                anchor,
                key,
                value,
            } => {
                out.push(8);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                out.extend_from_slice(&anchor.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&value.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(9),
        }
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        struct Cur<'a> {
            b: &'a [u8],
            p: usize,
        }
        impl<'a> Cur<'a> {
            fn u8(&mut self) -> Result<u8> {
                let v = *self
                    .b
                    .get(self.p)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 1;
                Ok(v)
            }
            fn u16(&mut self) -> Result<u16> {
                let s = self
                    .b
                    .get(self.p..self.p + 2)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 2;
                Ok(u16::from_le_bytes(s.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32> {
                let s = self
                    .b
                    .get(self.p..self.p + 4)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 4;
                Ok(u32::from_le_bytes(s.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64> {
                let s = self
                    .b
                    .get(self.p..self.p + 8)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 8;
                Ok(u64::from_le_bytes(s.try_into().unwrap()))
            }
            fn bytes(&mut self) -> Result<Vec<u8>> {
                let n = self.u32()? as usize;
                let s = self
                    .b
                    .get(self.p..self.p + n)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated bytes".into()))?;
                self.p += n;
                Ok(s.to_vec())
            }
            fn rid(&mut self) -> Result<Rid> {
                Ok(Rid::new(self.u32()?, self.u16()?))
            }
        }
        let mut c = Cur { b: buf, p: 0 };
        Ok(match c.u8()? {
            1 => LogRecord::Begin { txn: c.u64()? },
            2 => LogRecord::Commit { txn: c.u64()? },
            3 => LogRecord::Abort { txn: c.u64()? },
            4 => LogRecord::HeapInsert {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                data: c.bytes()?,
            },
            5 => LogRecord::HeapUpdate {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                before: c.bytes()?,
                after: c.bytes()?,
            },
            6 => LogRecord::HeapDelete {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                before: c.bytes()?,
            },
            7 => {
                let txn = c.u64()?;
                let space = c.u32()?;
                let anchor = c.u32()?;
                let key = c.bytes()?;
                let value = c.u64()?;
                let prev = if c.u8()? == 1 { Some(c.u64()?) } else { None };
                LogRecord::IndexInsert {
                    txn,
                    space,
                    anchor,
                    key,
                    value,
                    prev,
                }
            }
            8 => LogRecord::IndexDelete {
                txn: c.u64()?,
                space: c.u32()?,
                anchor: c.u32()?,
                key: c.bytes()?,
                value: c.u64()?,
            },
            9 => LogRecord::Checkpoint,
            t => return Err(StorageError::WalCorrupt(format!("unknown record type {t}"))),
        })
    }
}

/// Physical storage for log bytes.
pub trait LogStore: Send + Sync {
    /// Append framed bytes to the log tail.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Force the log to durable storage.
    fn flush(&self) -> Result<()>;
    /// Read back the entire log image.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Discard all log content (after a checkpoint).
    fn truncate(&self) -> Result<()>;
}

/// File-backed log.
pub struct FileLogStore {
    file: Mutex<File>,
    path: std::path::PathBuf,
}

impl FileLogStore {
    /// Open or create the log at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(FileLogStore {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.file.lock().write_all(bytes)?;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&self) -> Result<()> {
        let f = self.file.lock();
        f.set_len(0)?;
        f.sync_data()?;
        Ok(())
    }
}

/// In-memory log for tests and CPU-bound benchmarks.
#[derive(Default)]
pub struct MemLogStore {
    buf: Mutex<Vec<u8>>,
}

impl MemLogStore {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn truncate(&self) -> Result<()> {
        self.buf.lock().clear();
        Ok(())
    }
}

/// The write-ahead log: frames records, assigns LSNs, forces on commit.
pub struct Wal {
    store: Arc<dyn LogStore>,
    state: Mutex<WalState>,
}

struct WalState {
    next_lsn: Lsn,
    bytes_written: u64,
}

impl Wal {
    /// Wrap a log store.
    pub fn new(store: Arc<dyn LogStore>) -> Arc<Self> {
        Arc::new(Wal {
            store,
            state: Mutex::new(WalState {
                next_lsn: 1,
                bytes_written: 0,
            }),
        })
    }

    /// Append a record, returning its LSN. Does not force.
    pub fn log(&self, rec: &LogRecord) -> Result<Lsn> {
        let mut payload = Vec::with_capacity(64);
        rec.encode(&mut payload);
        let mut framed = Vec::with_capacity(payload.len() + 4);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut st = self.state.lock();
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.bytes_written += framed.len() as u64;
        self.store.append(&framed)?;
        Ok(lsn)
    }

    /// Force the log to durable storage (commit point).
    pub fn force(&self) -> Result<()> {
        self.store.flush()
    }

    /// Total bytes appended so far (the §3.1 "larger log spaces" metric).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    /// Total log records appended so far.
    pub fn records_written(&self) -> u64 {
        self.state.lock().next_lsn - 1
    }

    /// Decode the whole log.
    pub fn read_records(&self) -> Result<Vec<LogRecord>> {
        let buf = self.store.read_all()?;
        let mut recs = Vec::new();
        let mut p = 0usize;
        while p + 4 <= buf.len() {
            let len = u32::from_le_bytes(buf[p..p + 4].try_into().unwrap()) as usize;
            p += 4;
            if p + len > buf.len() {
                // Torn tail from a crash mid-append: ignore the partial record.
                break;
            }
            recs.push(LogRecord::decode(&buf[p..p + len])?);
            p += len;
        }
        Ok(recs)
    }

    /// Write a checkpoint record and truncate the log prefix. The caller must
    /// have flushed all dirty pages first.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.truncate()?;
        self.log(&LogRecord::Checkpoint)?;
        self.force()
    }
}

/// Handles recovery needs to reach the physical structures named in the log.
#[derive(Default)]
pub struct RecoveryEnv {
    /// Heap table per space id.
    pub heaps: HashMap<SpaceId, Arc<HeapTable>>,
    /// B+tree per (space id, anchor slot).
    pub indexes: HashMap<(SpaceId, u32), Arc<BTree>>,
}

/// Outcome counters from a recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed in the redo pass.
    pub redone: usize,
    /// Loser-transaction operations rolled back in the undo pass.
    pub undone: usize,
    /// Transactions that had committed.
    pub winners: usize,
    /// Transactions in flight at the crash.
    pub losers: usize,
}

/// ARIES-style recovery: repeat history (redo everything after the last
/// checkpoint in order), then undo loser transactions in reverse order.
pub fn recover(wal: &Wal, env: &RecoveryEnv) -> Result<RecoveryReport> {
    let all = wal.read_records()?;
    // Start from the last checkpoint.
    let start = all
        .iter()
        .rposition(|r| matches!(r, LogRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let recs = &all[start..];

    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut started: HashSet<TxnId> = HashSet::new();
    for r in recs {
        match r {
            LogRecord::Begin { txn } => {
                started.insert(*txn);
            }
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
            }
            _ => {}
        }
    }
    let losers: HashSet<TxnId> = started
        .iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .copied()
        .collect();

    let mut report = RecoveryReport {
        winners: committed.len(),
        losers: losers.len(),
        ..Default::default()
    };

    // Physical preparation: the log names pages (via RIDs) that the crashed
    // run allocated but whose space headers may not have been flushed. Raise
    // each space's high-water mark past every logged page so redo-time
    // allocations never clobber them.
    {
        let mut max_page: HashMap<SpaceId, u32> = HashMap::new();
        for r in recs {
            let (space, page) = match r {
                LogRecord::HeapInsert { space, rid, .. }
                | LogRecord::HeapUpdate { space, rid, .. }
                | LogRecord::HeapDelete { space, rid, .. } => (*space, rid.page),
                _ => continue,
            };
            let e = max_page.entry(space).or_insert(0);
            *e = (*e).max(page);
        }
        for (space, page) in max_page {
            if let Some(h) = env.heaps.get(&space) {
                h.space().ensure_high_water(page + 1)?;
            }
        }
    }

    // Redo pass: repeat history for every transaction (idempotent ops).
    // Aborted transactions already had their undo applied at runtime, and
    // those undo actions were themselves logged, so replaying in order is
    // correct for them too.
    for r in recs {
        match r {
            LogRecord::HeapInsert {
                space, rid, data, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, data)?;
                    report.redone += 1;
                }
            }
            LogRecord::HeapUpdate {
                space, rid, after, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, after)?;
                    report.redone += 1;
                }
            }
            LogRecord::HeapDelete { space, rid, .. } => {
                if let Some(h) = env.heaps.get(space) {
                    let _ = h.delete(*rid); // idempotent: may already be gone
                    report.redone += 1;
                }
            }
            LogRecord::IndexInsert {
                space,
                anchor,
                key,
                value,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    t.insert(key, *value)?;
                    report.redone += 1;
                }
            }
            LogRecord::IndexDelete {
                space, anchor, key, ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    let _ = t.delete(key)?;
                    report.redone += 1;
                }
            }
            _ => {}
        }
    }

    // Chain repair: logical redo installed records at their RIDs but cannot
    // maintain heap page chains; rebuild them before the undo pass reads.
    for h in env.heaps.values() {
        h.rebuild_chain()?;
    }

    // Undo pass: reverse order, losers only.
    for r in recs.iter().rev() {
        let Some(txn) = r.txn() else { continue };
        if !losers.contains(&txn) {
            continue;
        }
        match r {
            LogRecord::HeapInsert { space, rid, .. } => {
                if let Some(h) = env.heaps.get(space) {
                    let _ = h.delete(*rid);
                    report.undone += 1;
                }
            }
            LogRecord::HeapUpdate {
                space, rid, before, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, before)?;
                    report.undone += 1;
                }
            }
            LogRecord::HeapDelete {
                space, rid, before, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, before)?;
                    report.undone += 1;
                }
            }
            LogRecord::IndexInsert {
                space,
                anchor,
                key,
                prev,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    match prev {
                        Some(p) => {
                            t.insert(key, *p)?;
                        }
                        None => {
                            let _ = t.delete(key)?;
                        }
                    }
                    report.undone += 1;
                }
            }
            LogRecord::IndexDelete {
                space,
                anchor,
                key,
                value,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    t.insert(key, *value)?;
                    report.undone += 1;
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::HeapInsert {
                txn: 1,
                space: 2,
                rid: Rid::new(3, 4),
                data: b"payload".to_vec(),
            },
            LogRecord::HeapUpdate {
                txn: 1,
                space: 2,
                rid: Rid::new(3, 4),
                before: b"old".to_vec(),
                after: b"new".to_vec(),
            },
            LogRecord::HeapDelete {
                txn: 1,
                space: 2,
                rid: Rid::new(9, 1),
                before: b"gone".to_vec(),
            },
            LogRecord::IndexInsert {
                txn: 1,
                space: 5,
                anchor: 2,
                key: b"key".to_vec(),
                value: 77,
                prev: Some(66),
            },
            LogRecord::IndexDelete {
                txn: 1,
                space: 5,
                anchor: 2,
                key: b"key".to_vec(),
                value: 77,
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Checkpoint,
        ];
        for r in recs {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            assert_eq!(LogRecord::decode(&buf).unwrap(), r);
        }
    }

    #[test]
    fn wal_append_and_read() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        let l1 = wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        let l2 = wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        assert!(l2 > l1);
        let recs = wal.read_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert!(wal.bytes_written() > 0);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone());
        wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        // Simulate a crash mid-append: framed length says 100 but only 2 bytes follow.
        store.append(&100u32.to_le_bytes()).unwrap();
        store.append(&[1, 2]).unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn checkpoint_truncates() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        for i in 0..10 {
            wal.log(&LogRecord::Begin { txn: i }).unwrap();
        }
        wal.checkpoint().unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs, vec![LogRecord::Checkpoint]);
    }
}
