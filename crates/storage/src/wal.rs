//! Write-ahead logging and crash recovery.
//!
//! The paper reuses relational "logging, backup and recovery" unchanged (§2),
//! which works because packed XML records are ordinary heap records and XPath
//! indexes are ordinary B+tree entries. The log here is logical and
//! operation-based: each record names a heap or index mutation precisely
//! enough to be redone (idempotently, "install at RID" semantics) and undone
//! (via before images). Recovery is ARIES-style repeat-history: redo every
//! operation in LSN order, then undo losers in reverse.

use crate::btree::BTree;
use crate::buffer::SpaceId;
use crate::error::{Result, StorageError};
use crate::heap::HeapTable;
use crate::rid::Rid;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Log sequence number.
pub type Lsn = u64;
/// Transaction identifier.
pub type TxnId = u64;

/// Encoding tag of [`LogRecord::Checkpoint`] (the first payload byte).
const CHECKPOINT_TAG: u8 = 9;

/// Bytes of framing before each record payload: `u32` payload length plus
/// the record's `u64` LSN. Frames carry their LSN so a checkpoint can tell
/// which physical records fall below its safe-truncation floor and which
/// must be carried across, and so a reopened log can resume the sequence.
const FRAME_HDR: usize = 12;

fn push_frame(out: &mut Vec<u8>, lsn: Lsn, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Walk the framed records in a log image, yielding `(lsn, payload)` and
/// stopping silently at a torn tail (a crash mid-append).
fn walk_frames(buf: &[u8]) -> impl Iterator<Item = (Lsn, &[u8])> {
    let mut p = 0usize;
    std::iter::from_fn(move || {
        let hdr = buf.get(p..p + FRAME_HDR)?;
        let len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as usize;
        let lsn = Lsn::from_le_bytes(hdr[4..].try_into().unwrap());
        let start = p + FRAME_HDR;
        let payload = buf.get(start..start + len)?;
        p = start + len;
        Some((lsn, payload))
    })
}

/// A logical log record.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named self-descriptively
pub enum LogRecord {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit (flush point).
    Commit { txn: TxnId },
    /// Transaction abort (undo already applied at runtime).
    Abort { txn: TxnId },
    /// Heap record installed at a RID.
    HeapInsert {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        data: Vec<u8>,
    },
    /// Heap record replaced in place.
    HeapUpdate {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    /// Heap record removed.
    HeapDelete {
        txn: TxnId,
        space: SpaceId,
        rid: Rid,
        before: Vec<u8>,
    },
    /// B+tree upsert; `prev` is the replaced value, if any.
    IndexInsert {
        txn: TxnId,
        space: SpaceId,
        anchor: u32,
        key: Vec<u8>,
        value: u64,
        prev: Option<u64>,
    },
    /// B+tree exact-key delete; `value` is the removed value.
    IndexDelete {
        txn: TxnId,
        space: SpaceId,
        anchor: u32,
        key: Vec<u8>,
        value: u64,
    },
    /// All dirty pages flushed; log before this point is not needed for redo.
    Checkpoint,
}

impl LogRecord {
    /// The owning transaction, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::HeapInsert { txn, .. }
            | LogRecord::HeapUpdate { txn, .. }
            | LogRecord::HeapDelete { txn, .. }
            | LogRecord::IndexInsert { txn, .. }
            | LogRecord::IndexDelete { txn, .. } => Some(*txn),
            LogRecord::Checkpoint => None,
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        fn put_rid(out: &mut Vec<u8>, r: Rid) {
            out.extend_from_slice(&r.page.to_le_bytes());
            out.extend_from_slice(&r.slot.to_le_bytes());
        }
        match self {
            LogRecord::Begin { txn } => {
                out.push(1);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Commit { txn } => {
                out.push(2);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(3);
                out.extend_from_slice(&txn.to_le_bytes());
            }
            LogRecord::HeapInsert {
                txn,
                space,
                rid,
                data,
            } => {
                out.push(4);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, data);
            }
            LogRecord::HeapUpdate {
                txn,
                space,
                rid,
                before,
                after,
            } => {
                out.push(5);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, before);
                put_bytes(out, after);
            }
            LogRecord::HeapDelete {
                txn,
                space,
                rid,
                before,
            } => {
                out.push(6);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                put_rid(out, *rid);
                put_bytes(out, before);
            }
            LogRecord::IndexInsert {
                txn,
                space,
                anchor,
                key,
                value,
                prev,
            } => {
                out.push(7);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                out.extend_from_slice(&anchor.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&value.to_le_bytes());
                match prev {
                    Some(p) => {
                        out.push(1);
                        out.extend_from_slice(&p.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            LogRecord::IndexDelete {
                txn,
                space,
                anchor,
                key,
                value,
            } => {
                out.push(8);
                out.extend_from_slice(&txn.to_le_bytes());
                out.extend_from_slice(&space.to_le_bytes());
                out.extend_from_slice(&anchor.to_le_bytes());
                put_bytes(out, key);
                out.extend_from_slice(&value.to_le_bytes());
            }
            LogRecord::Checkpoint => out.push(CHECKPOINT_TAG),
        }
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        struct Cur<'a> {
            b: &'a [u8],
            p: usize,
        }
        impl<'a> Cur<'a> {
            fn u8(&mut self) -> Result<u8> {
                let v = *self
                    .b
                    .get(self.p)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 1;
                Ok(v)
            }
            fn u16(&mut self) -> Result<u16> {
                let s = self
                    .b
                    .get(self.p..self.p + 2)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 2;
                Ok(u16::from_le_bytes(s.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32> {
                let s = self
                    .b
                    .get(self.p..self.p + 4)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 4;
                Ok(u32::from_le_bytes(s.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64> {
                let s = self
                    .b
                    .get(self.p..self.p + 8)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated".into()))?;
                self.p += 8;
                Ok(u64::from_le_bytes(s.try_into().unwrap()))
            }
            fn bytes(&mut self) -> Result<Vec<u8>> {
                let n = self.u32()? as usize;
                let s = self
                    .b
                    .get(self.p..self.p + n)
                    .ok_or_else(|| StorageError::WalCorrupt("truncated bytes".into()))?;
                self.p += n;
                Ok(s.to_vec())
            }
            fn rid(&mut self) -> Result<Rid> {
                Ok(Rid::new(self.u32()?, self.u16()?))
            }
        }
        let mut c = Cur { b: buf, p: 0 };
        Ok(match c.u8()? {
            1 => LogRecord::Begin { txn: c.u64()? },
            2 => LogRecord::Commit { txn: c.u64()? },
            3 => LogRecord::Abort { txn: c.u64()? },
            4 => LogRecord::HeapInsert {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                data: c.bytes()?,
            },
            5 => LogRecord::HeapUpdate {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                before: c.bytes()?,
                after: c.bytes()?,
            },
            6 => LogRecord::HeapDelete {
                txn: c.u64()?,
                space: c.u32()?,
                rid: c.rid()?,
                before: c.bytes()?,
            },
            7 => {
                let txn = c.u64()?;
                let space = c.u32()?;
                let anchor = c.u32()?;
                let key = c.bytes()?;
                let value = c.u64()?;
                let prev = if c.u8()? == 1 { Some(c.u64()?) } else { None };
                LogRecord::IndexInsert {
                    txn,
                    space,
                    anchor,
                    key,
                    value,
                    prev,
                }
            }
            8 => LogRecord::IndexDelete {
                txn: c.u64()?,
                space: c.u32()?,
                anchor: c.u32()?,
                key: c.bytes()?,
                value: c.u64()?,
            },
            CHECKPOINT_TAG => LogRecord::Checkpoint,
            t => return Err(StorageError::WalCorrupt(format!("unknown record type {t}"))),
        })
    }
}

/// Physical storage for log bytes.
pub trait LogStore: Send + Sync {
    /// Append framed bytes to the log tail.
    fn append(&self, bytes: &[u8]) -> Result<()>;
    /// Force the log to durable storage.
    fn flush(&self) -> Result<()>;
    /// Read back the entire log image.
    fn read_all(&self) -> Result<Vec<u8>>;
    /// Discard all log content (after a checkpoint).
    fn truncate(&self) -> Result<()>;
}

/// File-backed log.
pub struct FileLogStore {
    file: Mutex<File>,
    path: std::path::PathBuf,
}

impl FileLogStore {
    /// Open or create the log at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        Ok(FileLogStore {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.file.lock().write_all(bytes)?;
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        let mut f = File::open(&self.path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn truncate(&self) -> Result<()> {
        let f = self.file.lock();
        f.set_len(0)?;
        f.sync_data()?;
        Ok(())
    }
}

/// In-memory log for tests and CPU-bound benchmarks.
#[derive(Default)]
pub struct MemLogStore {
    buf: Mutex<Vec<u8>>,
}

impl MemLogStore {
    /// Create an empty in-memory log.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn read_all(&self) -> Result<Vec<u8>> {
        Ok(self.buf.lock().clone())
    }

    fn truncate(&self) -> Result<()> {
        self.buf.lock().clear();
        Ok(())
    }
}

/// Snapshot of the group-commit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Backend fsyncs issued by group-commit flush batches.
    pub fsyncs: u64,
    /// `wait_durable` calls whose LSN was not already durable on arrival
    /// (commits that joined a flush — as leader or waiter — rather than
    /// returning immediately).
    pub group_commits: u64,
    /// Total records covered by all flush batches.
    pub batch_records_total: u64,
    /// Largest number of records one fsync covered.
    pub batch_records_max: u64,
}

/// Live group-commit counters (lock-free; read by the stats surface).
#[derive(Default)]
pub struct WalStats {
    /// Backend fsyncs issued by flush batches.
    pub fsyncs: AtomicU64,
    /// `wait_durable` calls whose LSN was not already durable on arrival.
    pub group_commits: AtomicU64,
    /// Total records covered by flush batches.
    pub batch_records_total: AtomicU64,
    /// Largest record count one fsync covered.
    pub batch_records_max: AtomicU64,
}

impl WalStats {
    /// Read the counters.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            group_commits: self.group_commits.load(Ordering::Relaxed),
            batch_records_total: self.batch_records_total.load(Ordering::Relaxed),
            batch_records_max: self.batch_records_max.load(Ordering::Relaxed),
        }
    }
}

/// The write-ahead log: frames records, assigns LSNs, and makes commits
/// durable with **group commit**.
///
/// `log()` appends framed bytes to an in-memory staging buffer under a short
/// critical section — no backend I/O is ever performed while holding the
/// state mutex. Committers call [`Wal::wait_durable`] with their commit LSN:
/// the first waiter to find no flush in flight is elected *leader*, takes the
/// whole staging buffer, writes and fsyncs it as one batch outside the lock,
/// advances `durable_lsn`, and wakes every waiter the batch covered. One
/// fsync thereby amortizes across all concurrently committing sessions.
pub struct Wal {
    store: Arc<dyn LogStore>,
    state: Mutex<WalState>,
    flushed: Condvar,
    /// Group-commit counters.
    pub stats: WalStats,
}

struct WalState {
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Total framed bytes staged so far (accounting; only advanced once the
    /// record is safely in the staging buffer, so a failed backend append can
    /// never skew the counters).
    bytes_written: u64,
    /// Framed bytes not yet handed to the backend store.
    staging: Vec<u8>,
    /// Record count in `staging`.
    staged_records: u64,
    /// A leader currently owns the store tail (appending and/or fsyncing).
    flushing: bool,
    /// Highest LSN known to be on durable storage.
    durable_lsn: Lsn,
}

impl Wal {
    /// Wrap a log store, resuming the LSN sequence of a previous
    /// incarnation: frames carry their LSNs, so the highest one in the
    /// existing image seeds the counter, and everything already in the
    /// store counts as durable. An unreadable store surfaces its error on
    /// first real use, not here.
    pub fn new(store: Arc<dyn LogStore>) -> Arc<Self> {
        let (max_lsn, bytes) = match store.read_all() {
            Ok(buf) => (
                walk_frames(&buf).map(|(lsn, _)| lsn).max().unwrap_or(0),
                buf.len() as u64,
            ),
            Err(_) => (0, 0),
        };
        Arc::new(Wal {
            store,
            state: Mutex::new(WalState {
                next_lsn: max_lsn + 1,
                bytes_written: bytes,
                staging: Vec::new(),
                staged_records: 0,
                flushing: false,
                durable_lsn: max_lsn,
            }),
            flushed: Condvar::new(),
            stats: WalStats::default(),
        })
    }

    /// Append a record, returning its LSN. Does not force: the record sits in
    /// the staging buffer until a group-commit flush (or [`Wal::read_records`])
    /// hands it to the backend.
    pub fn log(&self, rec: &LogRecord) -> Result<Lsn> {
        let mut payload = Vec::with_capacity(64);
        rec.encode(&mut payload);
        let mut st = self.state.lock();
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        st.bytes_written += payload.len() as u64 + FRAME_HDR as u64;
        push_frame(&mut st.staging, lsn, &payload);
        st.staged_records += 1;
        Ok(lsn)
    }

    /// Block until every record with LSN `<= lsn` is durable. Committers call
    /// this with their commit LSN; whichever waiter finds no flush in flight
    /// becomes the leader and flushes the entire staged batch for everyone.
    pub fn wait_durable(&self, lsn: Lsn) -> Result<()> {
        let mut st = self.state.lock();
        if st.durable_lsn >= lsn {
            return Ok(());
        }
        self.stats.group_commits.fetch_add(1, Ordering::Relaxed);
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if st.flushing {
                self.flushed.wait(&mut st);
                continue;
            }
            // Leader election: this thread owns the store tail until the
            // batch is on disk. All LSNs below `target` are either in the
            // batch we are taking or were handed to the store by an earlier
            // leader (whose bytes our fsync also covers).
            let batch = std::mem::take(&mut st.staging);
            let nrecs = std::mem::take(&mut st.staged_records);
            let target = st.next_lsn - 1;
            st.flushing = true;
            drop(st);
            let append_res = if batch.is_empty() {
                Ok(())
            } else {
                self.store.append(&batch)
            };
            if let Err(e) = append_res {
                // The batch never reached the store: put it back at the front
                // of staging so no logged record is lost and the counters
                // stay truthful; a later flusher retries in order.
                let mut st = self.state.lock();
                st.flushing = false;
                let mut restored = batch;
                restored.extend_from_slice(&st.staging);
                st.staging = restored;
                st.staged_records += nrecs;
                self.flushed.notify_all();
                return Err(e);
            }
            let flush_res = self.store.flush();
            st = self.state.lock();
            st.flushing = false;
            match flush_res {
                Ok(()) => {
                    st.durable_lsn = st.durable_lsn.max(target);
                    self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .batch_records_total
                        .fetch_add(nrecs, Ordering::Relaxed);
                    self.stats
                        .batch_records_max
                        .fetch_max(nrecs, Ordering::Relaxed);
                    self.flushed.notify_all();
                    // Loop: durable_lsn now covers our lsn (we staged before
                    // waiting), so the next iteration returns.
                }
                Err(e) => {
                    // Bytes are appended but not durably synced: durable_lsn
                    // stays put; a later successful fsync will cover them.
                    self.flushed.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Force everything logged so far to durable storage.
    pub fn force(&self) -> Result<()> {
        let last = self.state.lock().next_lsn - 1;
        self.wait_durable(last)
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.state.lock().durable_lsn
    }

    /// Highest LSN assigned so far.
    pub fn current_lsn(&self) -> Lsn {
        self.state.lock().next_lsn - 1
    }

    /// Number of assigned LSNs not yet durable (the replication-shipping
    /// watermark gap).
    pub fn durable_lag(&self) -> u64 {
        let st = self.state.lock();
        (st.next_lsn - 1).saturating_sub(st.durable_lsn)
    }

    /// Total bytes appended so far (the §3.1 "larger log spaces" metric).
    pub fn bytes_written(&self) -> u64 {
        self.state.lock().bytes_written
    }

    /// Total log records appended so far.
    pub fn records_written(&self) -> u64 {
        self.state.lock().next_lsn - 1
    }

    /// Hand any staged bytes to the backend store (without requiring an
    /// fsync), serialized against in-flight group-commit flushes so the store
    /// tail is only ever written by one thread.
    fn drain_staging(&self) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if st.flushing {
                self.flushed.wait(&mut st);
                continue;
            }
            if st.staging.is_empty() {
                return Ok(());
            }
            let batch = std::mem::take(&mut st.staging);
            let nrecs = std::mem::take(&mut st.staged_records);
            st.flushing = true;
            drop(st);
            let res = self.store.append(&batch);
            st = self.state.lock();
            st.flushing = false;
            if let Err(e) = res {
                let mut restored = batch;
                restored.extend_from_slice(&st.staging);
                st.staging = restored;
                st.staged_records += nrecs;
                self.flushed.notify_all();
                return Err(e);
            }
            self.flushed.notify_all();
        }
    }

    /// Decode the whole log (staged records included).
    pub fn read_records(&self) -> Result<Vec<LogRecord>> {
        self.drain_staging()?;
        let buf = self.store.read_all()?;
        let mut recs = Vec::new();
        for (_lsn, payload) in walk_frames(&buf) {
            recs.push(LogRecord::decode(payload)?);
        }
        Ok(recs)
    }

    /// Write a checkpoint record and truncate the log prefix, coordinating
    /// with any in-flight group-commit flush.
    ///
    /// The caller must have durably flushed every dirty page first and pass
    /// `keep_from`: the lowest LSN whose effects are *not* guaranteed
    /// durable on pages (in practice `min(oldest active transaction's Begin
    /// LSN, highest assigned LSN at flush time + 1)`). Records below the
    /// floor are truncated away; records at or above it — including
    /// everything still in the staging buffer — are carried across the
    /// truncation and fsynced together with the new checkpoint marker, so a
    /// commit acknowledged by a concurrent `wait_durable` is never lost and
    /// loser transactions keep their undo chain. `durable_lsn` advances to
    /// the checkpoint LSN only once the carried image is on disk.
    pub fn checkpoint(&self, keep_from: Lsn) -> Result<()> {
        let mut st = self.state.lock();
        while st.flushing {
            self.flushed.wait(&mut st);
        }
        let staged = std::mem::take(&mut st.staging);
        let staged_recs = std::mem::take(&mut st.staged_records);
        let mut payload = Vec::new();
        LogRecord::Checkpoint.encode(&mut payload);
        let ckpt_lsn = st.next_lsn;
        st.next_lsn += 1;
        st.bytes_written += payload.len() as u64 + FRAME_HDR as u64;
        st.flushing = true;
        drop(st);
        let res = (|| {
            let old = self.store.read_all()?;
            let mut image = Vec::with_capacity(FRAME_HDR + payload.len() + staged.len());
            push_frame(&mut image, ckpt_lsn, &payload);
            // Carry every surviving record behind the new marker. Stale
            // checkpoint markers are dropped so recovery's "start after the
            // last marker" finds the one above and replays everything
            // carried. File order stays LSN order: the old image was
            // LSN-ordered (markers aside) and staged LSNs are above every
            // stored one.
            for (lsn, p) in walk_frames(&old).chain(walk_frames(&staged)) {
                if lsn >= keep_from && p.first() != Some(&CHECKPOINT_TAG) {
                    push_frame(&mut image, lsn, p);
                }
            }
            self.store.truncate()?;
            self.store.append(&image)?;
            self.store.flush()
        })();
        let mut st = self.state.lock();
        st.flushing = false;
        match &res {
            Ok(()) => {
                // Every LSN <= ckpt_lsn is now either durable in the
                // rewritten log or (below `keep_from`) durable as a flushed
                // page image, so the watermark may cover the dropped records
                // — and must cover the carried ones, whose committers are
                // parked in wait_durable.
                st.durable_lsn = st.durable_lsn.max(ckpt_lsn);
            }
            Err(_) => {
                // The rewrite may or may not have reached the store; restage
                // the staged batch so no record is lost in memory. Redo is
                // idempotent, so a duplicate append after a partial rewrite
                // is harmless.
                let mut restored = staged;
                restored.extend_from_slice(&st.staging);
                st.staging = restored;
                st.staged_records += staged_recs;
            }
        }
        drop(st);
        self.flushed.notify_all();
        res
    }
}

/// Handles recovery needs to reach the physical structures named in the log.
#[derive(Default)]
pub struct RecoveryEnv {
    /// Heap table per space id.
    pub heaps: HashMap<SpaceId, Arc<HeapTable>>,
    /// B+tree per (space id, anchor slot).
    pub indexes: HashMap<(SpaceId, u32), Arc<BTree>>,
}

/// Outcome counters from a recovery pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records replayed in the redo pass.
    pub redone: usize,
    /// Loser-transaction operations rolled back in the undo pass.
    pub undone: usize,
    /// Transactions that had committed.
    pub winners: usize,
    /// Transactions in flight at the crash.
    pub losers: usize,
}

/// ARIES-style recovery: repeat history (redo everything after the last
/// checkpoint in order), then undo loser transactions in reverse order.
pub fn recover(wal: &Wal, env: &RecoveryEnv) -> Result<RecoveryReport> {
    let all = wal.read_records()?;
    // Start from the last checkpoint.
    let start = all
        .iter()
        .rposition(|r| matches!(r, LogRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let recs = &all[start..];

    let mut committed: HashSet<TxnId> = HashSet::new();
    let mut aborted: HashSet<TxnId> = HashSet::new();
    let mut started: HashSet<TxnId> = HashSet::new();
    for r in recs {
        match r {
            LogRecord::Begin { txn } => {
                started.insert(*txn);
            }
            LogRecord::Commit { txn } => {
                committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                aborted.insert(*txn);
                // A Commit followed by an Abort happens when the commit's
                // group flush failed and the session rolled back after being
                // told the commit did not take: the abort is authoritative
                // (its compensation records are replayed in order).
                committed.remove(txn);
            }
            _ => {}
        }
    }
    let losers: HashSet<TxnId> = started
        .iter()
        .filter(|t| !committed.contains(t) && !aborted.contains(t))
        .copied()
        .collect();

    let mut report = RecoveryReport {
        winners: committed.len(),
        losers: losers.len(),
        ..Default::default()
    };

    // Physical preparation: the log names pages (via RIDs) that the crashed
    // run allocated but whose space headers may not have been flushed. Raise
    // each space's high-water mark past every logged page so redo-time
    // allocations never clobber them.
    {
        let mut max_page: HashMap<SpaceId, u32> = HashMap::new();
        for r in recs {
            let (space, page) = match r {
                LogRecord::HeapInsert { space, rid, .. }
                | LogRecord::HeapUpdate { space, rid, .. }
                | LogRecord::HeapDelete { space, rid, .. } => (*space, rid.page),
                _ => continue,
            };
            let e = max_page.entry(space).or_insert(0);
            *e = (*e).max(page);
        }
        for (space, page) in max_page {
            if let Some(h) = env.heaps.get(&space) {
                h.space().ensure_high_water(page + 1)?;
            }
        }
    }

    // Redo pass: repeat history for every transaction (idempotent ops).
    // Aborted transactions already had their undo applied at runtime, and
    // those undo actions were themselves logged, so replaying in order is
    // correct for them too.
    for r in recs {
        match r {
            LogRecord::HeapInsert {
                space, rid, data, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, data)?;
                    report.redone += 1;
                }
            }
            LogRecord::HeapUpdate {
                space, rid, after, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, after)?;
                    report.redone += 1;
                }
            }
            LogRecord::HeapDelete { space, rid, .. } => {
                if let Some(h) = env.heaps.get(space) {
                    let _ = h.delete(*rid); // idempotent: may already be gone
                    report.redone += 1;
                }
            }
            LogRecord::IndexInsert {
                space,
                anchor,
                key,
                value,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    t.insert(key, *value)?;
                    report.redone += 1;
                }
            }
            LogRecord::IndexDelete {
                space, anchor, key, ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    let _ = t.delete(key)?;
                    report.redone += 1;
                }
            }
            _ => {}
        }
    }

    // Chain repair: logical redo installed records at their RIDs but cannot
    // maintain heap page chains; rebuild them before the undo pass reads.
    for h in env.heaps.values() {
        h.rebuild_chain()?;
    }

    // Undo pass: reverse order, losers only.
    for r in recs.iter().rev() {
        let Some(txn) = r.txn() else { continue };
        if !losers.contains(&txn) {
            continue;
        }
        match r {
            LogRecord::HeapInsert { space, rid, .. } => {
                if let Some(h) = env.heaps.get(space) {
                    let _ = h.delete(*rid);
                    report.undone += 1;
                }
            }
            LogRecord::HeapUpdate {
                space, rid, before, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, before)?;
                    report.undone += 1;
                }
            }
            LogRecord::HeapDelete {
                space, rid, before, ..
            } => {
                if let Some(h) = env.heaps.get(space) {
                    h.insert_at(*rid, before)?;
                    report.undone += 1;
                }
            }
            LogRecord::IndexInsert {
                space,
                anchor,
                key,
                prev,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    match prev {
                        Some(p) => {
                            t.insert(key, *p)?;
                        }
                        None => {
                            let _ = t.delete(key)?;
                        }
                    }
                    report.undone += 1;
                }
            }
            LogRecord::IndexDelete {
                space,
                anchor,
                key,
                value,
                ..
            } => {
                if let Some(t) = env.indexes.get(&(*space, *anchor)) {
                    t.insert(key, *value)?;
                    report.undone += 1;
                }
            }
            _ => {}
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let recs = vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::HeapInsert {
                txn: 1,
                space: 2,
                rid: Rid::new(3, 4),
                data: b"payload".to_vec(),
            },
            LogRecord::HeapUpdate {
                txn: 1,
                space: 2,
                rid: Rid::new(3, 4),
                before: b"old".to_vec(),
                after: b"new".to_vec(),
            },
            LogRecord::HeapDelete {
                txn: 1,
                space: 2,
                rid: Rid::new(9, 1),
                before: b"gone".to_vec(),
            },
            LogRecord::IndexInsert {
                txn: 1,
                space: 5,
                anchor: 2,
                key: b"key".to_vec(),
                value: 77,
                prev: Some(66),
            },
            LogRecord::IndexDelete {
                txn: 1,
                space: 5,
                anchor: 2,
                key: b"key".to_vec(),
                value: 77,
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Abort { txn: 2 },
            LogRecord::Checkpoint,
        ];
        for r in recs {
            let mut buf = Vec::new();
            r.encode(&mut buf);
            assert_eq!(LogRecord::decode(&buf).unwrap(), r);
        }
    }

    #[test]
    fn wal_append_and_read() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        let l1 = wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        let l2 = wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        assert!(l2 > l1);
        let recs = wal.read_records().unwrap();
        assert_eq!(recs.len(), 2);
        assert!(wal.bytes_written() > 0);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let store = Arc::new(MemLogStore::new());
        let wal = Wal::new(store.clone());
        wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.force().unwrap();
        // Simulate a crash mid-append: framed length says 100 but only 2 bytes follow.
        store.append(&100u32.to_le_bytes()).unwrap();
        store.append(&[1, 2]).unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn one_fsync_covers_a_whole_batch() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        let mut last = 0;
        for i in 0..10 {
            last = wal.log(&LogRecord::Begin { txn: i }).unwrap();
        }
        assert_eq!(wal.durable_lsn(), 0);
        assert_eq!(wal.durable_lag(), 10);
        wal.wait_durable(last).unwrap();
        let s = wal.stats.snapshot();
        assert_eq!(s.fsyncs, 1, "one batch, one fsync");
        assert_eq!(s.batch_records_max, 10);
        assert_eq!(wal.durable_lsn(), last);
        assert_eq!(wal.durable_lag(), 0);
        // Already durable: no further fsync.
        wal.wait_durable(last).unwrap();
        wal.force().unwrap();
        assert_eq!(wal.stats.snapshot().fsyncs, 1);
    }

    #[test]
    fn read_records_sees_staged_records() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        // Not forced: still in staging, but visible to readers.
        assert_eq!(wal.read_records().unwrap().len(), 1);
        // Draining does not make records durable.
        assert_eq!(wal.durable_lsn(), 0);
    }

    #[test]
    fn concurrent_commits_share_fsyncs() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..50 {
                        wal.log(&LogRecord::Begin { txn: t * 1000 + i }).unwrap();
                        let lsn = wal.log(&LogRecord::Commit { txn: t * 1000 + i }).unwrap();
                        wal.wait_durable(lsn).unwrap();
                    }
                });
            }
        });
        let s = wal.stats.snapshot();
        assert_eq!(wal.records_written(), 800);
        assert_eq!(wal.durable_lag(), 0);
        assert!(s.fsyncs <= s.group_commits, "{s:?}");
        assert_eq!(wal.read_records().unwrap().len(), 800);
    }

    #[test]
    fn checkpoint_truncates() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        for i in 0..10 {
            wal.log(&LogRecord::Begin { txn: i }).unwrap();
        }
        // Keep floor above every assigned LSN: everything is truncated away.
        wal.checkpoint(wal.current_lsn() + 1).unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(recs, vec![LogRecord::Checkpoint]);
    }

    #[test]
    fn checkpoint_carries_records_from_keep_floor() {
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        let l = wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        wal.wait_durable(l).unwrap();
        let begin2 = wal.log(&LogRecord::Begin { txn: 2 }).unwrap();
        let commit2 = wal.log(&LogRecord::Commit { txn: 2 }).unwrap();
        // Txn 2's records are still staged; the checkpoint keeps from its
        // Begin, so both must survive the truncation and become durable
        // (a committer parked in wait_durable(commit2) gets a truthful ack).
        wal.checkpoint(begin2).unwrap();
        assert!(wal.durable_lsn() >= commit2);
        let recs = wal.read_records().unwrap();
        assert_eq!(
            recs,
            vec![
                LogRecord::Checkpoint,
                LogRecord::Begin { txn: 2 },
                LogRecord::Commit { txn: 2 },
            ]
        );
        // A second checkpoint with the same floor keeps exactly one marker.
        wal.checkpoint(begin2).unwrap();
        let recs = wal.read_records().unwrap();
        assert_eq!(
            recs.iter()
                .filter(|r| matches!(r, LogRecord::Checkpoint))
                .count(),
            1
        );
        assert!(recs.contains(&LogRecord::Commit { txn: 2 }));
    }

    #[test]
    fn lsn_sequence_resumes_across_reopen() {
        let store = Arc::new(MemLogStore::new());
        let last = {
            let wal = Wal::new(store.clone());
            wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
            let l = wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
            wal.wait_durable(l).unwrap();
            l
        };
        let wal = Wal::new(store);
        assert_eq!(wal.durable_lsn(), last);
        assert_eq!(wal.durable_lag(), 0);
        assert!(wal.log(&LogRecord::Begin { txn: 2 }).unwrap() > last);
    }

    #[test]
    fn abort_after_commit_classifies_as_aborted() {
        // A failed commit flush leaves a Commit record that a later batch
        // flushes, followed by the rollback's Abort: recovery must treat the
        // transaction as aborted, not redo it as a winner.
        let wal = Wal::new(Arc::new(MemLogStore::new()));
        wal.log(&LogRecord::Begin { txn: 1 }).unwrap();
        wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        wal.log(&LogRecord::Abort { txn: 1 }).unwrap();
        wal.force().unwrap();
        let report = recover(&wal, &RecoveryEnv::default()).unwrap();
        assert_eq!(report.winners, 0);
        assert_eq!(report.losers, 0);
    }
}
