//! Storage backends: where table-space pages physically live.
//!
//! The buffer pool reads and writes whole pages through a [`StorageBackend`].
//! Two implementations are provided: a file backend (pread/pwrite at page
//! granularity, as a real table space would) and an in-memory backend for
//! tests and benchmarks that want to isolate CPU cost from the filesystem.

use crate::error::Result;
use crate::page::PAGE_SIZE;
use parking_lot::RwLock;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};

/// Physical page storage for one table space.
pub trait StorageBackend: Send + Sync {
    /// Read page `page_no` into `buf` (exactly [`PAGE_SIZE`] bytes).
    fn read_page(&self, page_no: u32, buf: &mut [u8]) -> Result<()>;
    /// Write page `page_no` from `buf` (exactly [`PAGE_SIZE`] bytes).
    fn write_page(&self, page_no: u32, buf: &[u8]) -> Result<()>;
    /// Number of pages currently materialized.
    fn page_count(&self) -> u32;
    /// Extend the backend so pages `0..n` exist (zero-filled).
    fn ensure_pages(&self, n: u32) -> Result<()>;
    /// Flush to durable storage (no-op for memory).
    fn sync(&self) -> Result<()>;
}

/// File-backed table space: page `i` lives at byte offset `i * PAGE_SIZE`.
pub struct FileBackend {
    file: File,
    pages: AtomicU32,
}

impl FileBackend {
    /// Open or create the backing file at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(FileBackend {
            file,
            pages: AtomicU32::new((len / PAGE_SIZE as u64) as u32),
        })
    }
}

impl StorageBackend for FileBackend {
    fn read_page(&self, page_no: u32, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if page_no >= self.pages.load(Ordering::Acquire) {
            // Reading past EOF yields a zero page (freshly extended space).
            buf.fill(0);
            return Ok(());
        }
        self.file
            .read_exact_at(buf, page_no as u64 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn write_page(&self, page_no: u32, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        self.file
            .write_all_at(buf, page_no as u64 * PAGE_SIZE as u64)?;
        self.pages.fetch_max(page_no + 1, Ordering::AcqRel);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.load(Ordering::Acquire)
    }

    fn ensure_pages(&self, n: u32) -> Result<()> {
        let cur = self.pages.load(Ordering::Acquire);
        if n > cur {
            self.file.set_len(n as u64 * PAGE_SIZE as u64)?;
            self.pages.fetch_max(n, Ordering::AcqRel);
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// In-memory table space for tests and CPU-bound benchmarks.
pub struct MemBackend {
    pages: RwLock<Vec<Box<[u8; PAGE_SIZE]>>>,
}

impl MemBackend {
    /// Create an empty in-memory space.
    pub fn new() -> Self {
        MemBackend {
            pages: RwLock::new(Vec::new()),
        }
    }

    /// Total bytes currently materialized (used by storage-size experiments).
    pub fn size_bytes(&self) -> usize {
        self.pages.read().len() * PAGE_SIZE
    }
}

impl Default for MemBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageBackend for MemBackend {
    fn read_page(&self, page_no: u32, buf: &mut [u8]) -> Result<()> {
        let pages = self.pages.read();
        match pages.get(page_no as usize) {
            Some(p) => buf.copy_from_slice(&p[..]),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_page(&self, page_no: u32, buf: &[u8]) -> Result<()> {
        let mut pages = self.pages.write();
        while pages.len() <= page_no as usize {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        pages[page_no as usize].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.read().len() as u32
    }

    fn ensure_pages(&self, n: u32) -> Result<()> {
        let mut pages = self.pages.write();
        while pages.len() < n as usize {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(b: &dyn StorageBackend) {
        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAA;
        w[PAGE_SIZE - 1] = 0x55;
        b.write_page(3, &w).unwrap();
        let mut r = [0u8; PAGE_SIZE];
        b.read_page(3, &mut r).unwrap();
        assert_eq!(r[0], 0xAA);
        assert_eq!(r[PAGE_SIZE - 1], 0x55);
        // Unwritten page reads as zeros.
        b.read_page(100, &mut r).unwrap();
        assert!(r.iter().all(|&x| x == 0));
        assert!(b.page_count() >= 4);
    }

    #[test]
    fn mem_backend_roundtrip() {
        roundtrip(&MemBackend::new());
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rxs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.dat");
        let _ = std::fs::remove_file(&path);
        roundtrip(&FileBackend::open(&path).unwrap());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backend_persists() {
        let dir = std::env::temp_dir().join(format!("rxs-test-p-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("persist.dat");
        let _ = std::fs::remove_file(&path);
        {
            let b = FileBackend::open(&path).unwrap();
            let mut w = [7u8; PAGE_SIZE];
            w[9] = 9;
            b.write_page(0, &w).unwrap();
            b.sync().unwrap();
        }
        let b = FileBackend::open(&path).unwrap();
        assert_eq!(b.page_count(), 1);
        let mut r = [0u8; PAGE_SIZE];
        b.read_page(0, &mut r).unwrap();
        assert_eq!(r[9], 9);
        std::fs::remove_file(&path).unwrap();
    }
}
