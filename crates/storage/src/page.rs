//! Slotted pages.
//!
//! The unit of I/O and buffering is a fixed-size page, exactly as in the
//! relational infrastructure the paper builds on. Records live in slotted
//! pages: a slot directory grows up from the header while record bodies grow
//! down from the end of the page. To the page layer, packed XML records are
//! indistinguishable from relational rows — this is the paper's central
//! infrastructure-reuse claim (§2: "to the lower level components of the
//! infrastructure, our packed XML data looks like rows in relational tables").

use crate::error::{Result, StorageError};

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Byte offset layout of the page header.
const OFF_LSN: usize = 0; // u64: LSN of the last update (WAL)
const OFF_TYPE: usize = 8; // u8: PageType
#[allow(dead_code)]
const OFF_FLAGS: usize = 9; // u8: reserved
const OFF_SLOT_COUNT: usize = 10; // u16
const OFF_FREE_START: usize = 12; // u16: end of slot directory
const OFF_FREE_END: usize = 14; // u16: start of record heap
const OFF_NEXT_PAGE: usize = 16; // u32: chain link (heap page chains, leaf chains)
/// Size of the fixed page header.
pub const PAGE_HEADER_SIZE: usize = 20;
/// Bytes per slot directory entry: offset u16 + length u16.
const SLOT_SIZE: usize = 4;
/// Slot offset value marking a dead (deleted) slot.
const DEAD_SLOT: u16 = 0xFFFF;

/// Maximum record payload that fits in an otherwise-empty page.
pub const MAX_RECORD_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_SIZE;

/// What a page is used for. Stored in the header so corruption and misuse
/// are detectable when a page is fetched.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum PageType {
    /// Unallocated / freed page.
    Free = 0,
    /// Table space header page (page 0 of every space).
    SpaceHeader = 1,
    /// Heap data page holding records.
    Data = 2,
    /// B+tree interior page.
    BTreeInternal = 3,
    /// B+tree leaf page.
    BTreeLeaf = 4,
    /// B+tree meta page (holds the root pointer).
    BTreeMeta = 5,
}

impl PageType {
    fn from_u8(v: u8) -> Result<Self> {
        Ok(match v {
            0 => PageType::Free,
            1 => PageType::SpaceHeader,
            2 => PageType::Data,
            3 => PageType::BTreeInternal,
            4 => PageType::BTreeLeaf,
            5 => PageType::BTreeMeta,
            other => return Err(StorageError::Corrupt(format!("bad page type byte {other}"))),
        })
    }
}

/// A slotted page: a fixed-size byte buffer with header, slot directory, and
/// record heap. All accessors operate directly on the byte image so a page can
/// be written to storage without any serialization step.
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Page {
    /// Allocate a zeroed page and format it with the given type.
    pub fn new(ptype: PageType) -> Self {
        let mut p = Page {
            buf: Box::new([0u8; PAGE_SIZE]),
        };
        p.format(ptype);
        p
    }

    /// Wrap raw bytes read from storage. Validates the header.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image has {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(bytes);
        let p = Page { buf };
        PageType::from_u8(p.buf[OFF_TYPE])?;
        Ok(p)
    }

    /// Reformat this page in place (erases all slots).
    pub fn format(&mut self, ptype: PageType) {
        self.buf.fill(0);
        self.buf[OFF_TYPE] = ptype as u8;
        self.set_u16(OFF_SLOT_COUNT, 0);
        self.set_u16(OFF_FREE_START, PAGE_HEADER_SIZE as u16);
        self.set_u16(OFF_FREE_END, PAGE_SIZE as u16);
        self.set_u32(OFF_NEXT_PAGE, 0);
    }

    /// Raw page image.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Mutable raw page image (used by B+tree node codecs).
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.buf
    }

    /// Page type recorded in the header.
    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.buf[OFF_TYPE]).expect("validated at construction")
    }

    /// Set the page type.
    pub fn set_page_type(&mut self, t: PageType) {
        self.buf[OFF_TYPE] = t as u8;
    }

    /// LSN of the last WAL record that touched this page.
    pub fn lsn(&self) -> u64 {
        self.get_u64(OFF_LSN)
    }

    /// Record the LSN of an update.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.set_u64(OFF_LSN, lsn);
    }

    /// Next-page chain link (0 = none).
    pub fn next_page(&self) -> u32 {
        self.get_u32(OFF_NEXT_PAGE)
    }

    /// Set the next-page chain link.
    pub fn set_next_page(&mut self, p: u32) {
        self.set_u32(OFF_NEXT_PAGE, p);
    }

    /// Number of slots in the directory (including dead slots).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    /// Contiguous free space between the slot directory and the record heap.
    pub fn free_space(&self) -> usize {
        let fs = self.get_u16(OFF_FREE_START) as usize;
        let fe = self.get_u16(OFF_FREE_END) as usize;
        fe.saturating_sub(fs)
    }

    /// Space available for a new record of `len` bytes, accounting for a
    /// possible new slot entry. Dead slots are reused without growing the
    /// directory, so this is conservative.
    pub fn can_fit(&self, len: usize) -> bool {
        self.free_space() >= len + SLOT_SIZE
    }

    fn slot_at(&self, slot: u16) -> (u16, u16) {
        let base = PAGE_HEADER_SIZE + SLOT_SIZE * slot as usize;
        (self.get_u16(base), self.get_u16(base + 2))
    }

    fn set_slot(&mut self, slot: u16, off: u16, len: u16) {
        let base = PAGE_HEADER_SIZE + SLOT_SIZE * slot as usize;
        self.set_u16(base, off);
        self.set_u16(base + 2, len);
    }

    /// Insert a record, returning its slot number. Compacts the page if
    /// fragmentation is hiding enough space.
    pub fn insert(&mut self, data: &[u8]) -> Result<u16> {
        if data.len() > MAX_RECORD_SIZE {
            return Err(StorageError::RecordTooLarge {
                size: data.len(),
                max: MAX_RECORD_SIZE,
            });
        }
        // Reuse a dead slot if available (does not grow the directory).
        let count = self.slot_count();
        let mut reuse: Option<u16> = None;
        for s in 0..count {
            let (off, _) = self.slot_at(s);
            if off == DEAD_SLOT {
                reuse = Some(s);
                break;
            }
        }
        let need = data.len() + if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.free_space() < need {
            self.compact();
            if self.free_space() < need {
                return Err(StorageError::RecordTooLarge {
                    size: data.len(),
                    max: self.free_space().saturating_sub(SLOT_SIZE),
                });
            }
        }
        let fe = self.get_u16(OFF_FREE_END) as usize;
        let new_fe = fe - data.len();
        self.buf[new_fe..fe].copy_from_slice(data);
        self.set_u16(OFF_FREE_END, new_fe as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = count;
                self.set_u16(OFF_SLOT_COUNT, count + 1);
                let fs = self.get_u16(OFF_FREE_START);
                self.set_u16(OFF_FREE_START, fs + SLOT_SIZE as u16);
                s
            }
        };
        self.set_slot(slot, new_fe as u16, data.len() as u16);
        Ok(slot)
    }

    /// Insert a record at a *specific* slot number, growing the directory as
    /// needed. Used by idempotent WAL redo ("install record at RID").
    pub fn insert_at(&mut self, slot: u16, data: &[u8]) -> Result<()> {
        let count = self.slot_count();
        if slot < count {
            let (off, _) = self.slot_at(slot);
            if off != DEAD_SLOT {
                // Slot already occupied: overwrite (redo idempotency).
                return self.update(slot, data).map(|_| ());
            }
        } else {
            // Grow the directory with dead slots up to `slot`.
            let grow = (slot - count + 1) as usize * SLOT_SIZE;
            if self.free_space() < grow + data.len() {
                self.compact();
                if self.free_space() < grow + data.len() {
                    return Err(StorageError::RecordTooLarge {
                        size: data.len(),
                        max: self.free_space(),
                    });
                }
            }
            for s in count..=slot {
                self.set_slot(s, DEAD_SLOT, 0);
            }
            self.set_u16(OFF_SLOT_COUNT, slot + 1);
            let fs = self.get_u16(OFF_FREE_START);
            self.set_u16(OFF_FREE_START, fs + grow as u16);
        }
        if self.free_space() < data.len() {
            self.compact();
        }
        let fe = self.get_u16(OFF_FREE_END) as usize;
        let new_fe = fe - data.len();
        self.buf[new_fe..fe].copy_from_slice(data);
        self.set_u16(OFF_FREE_END, new_fe as u16);
        self.set_slot(slot, new_fe as u16, data.len() as u16);
        Ok(())
    }

    /// Read a record by slot.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_at(slot);
        if off == DEAD_SLOT {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Delete a record. The slot becomes dead and may be reused.
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() || self.slot_at(slot).0 == DEAD_SLOT {
            return Err(StorageError::RecordNotFound {
                space: 0,
                page: 0,
                slot,
            });
        }
        self.set_slot(slot, DEAD_SLOT, 0);
        Ok(())
    }

    /// Update a record in place. Returns `false` (leaving the old record
    /// intact) if the new data does not fit even after compaction; the caller
    /// then relocates the record to another page.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> Result<bool> {
        if slot >= self.slot_count() || self.slot_at(slot).0 == DEAD_SLOT {
            return Err(StorageError::RecordNotFound {
                space: 0,
                page: 0,
                slot,
            });
        }
        let (off, len) = self.slot_at(slot);
        if data.len() <= len as usize {
            // Shrink or same-size: overwrite at the same offset.
            let off = off as usize;
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot(slot, off as u16, data.len() as u16);
            return Ok(true);
        }
        // Grow: tombstone then re-place.
        self.set_slot(slot, DEAD_SLOT, 0);
        if self.free_space() < data.len() {
            self.compact();
        }
        if self.free_space() < data.len() {
            // Restore the old slot so the record is not lost.
            self.set_slot(slot, off, len);
            return Ok(false);
        }
        let fe = self.get_u16(OFF_FREE_END) as usize;
        let new_fe = fe - data.len();
        self.buf[new_fe..fe].copy_from_slice(data);
        self.set_u16(OFF_FREE_END, new_fe as u16);
        self.set_slot(slot, new_fe as u16, data.len() as u16);
        Ok(true)
    }

    /// Iterate live (slot, record bytes) pairs in slot order.
    pub fn iter_records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Slide all live records to the end of the page, squeezing out holes
    /// left by deletes and updates.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut live: Vec<(u16, u16, u16)> = Vec::with_capacity(count as usize);
        for s in 0..count {
            let (off, len) = self.slot_at(s);
            if off != DEAD_SLOT {
                live.push((s, off, len));
            }
        }
        // Copy records out, then re-place from the end.
        let mut bodies: Vec<(u16, Vec<u8>)> = Vec::with_capacity(live.len());
        for (s, off, len) in &live {
            bodies.push((*s, self.buf[*off as usize..(*off + *len) as usize].to_vec()));
        }
        let mut fe = PAGE_SIZE;
        for (s, body) in &bodies {
            fe -= body.len();
            self.buf[fe..fe + body.len()].copy_from_slice(body);
            self.set_slot(*s, fe as u16, body.len() as u16);
        }
        self.set_u16(OFF_FREE_END, fe as u16);
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.buf[off], self.buf[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.buf[off..off + 4].try_into().unwrap())
    }

    fn set_u32(&mut self, off: usize, v: u32) {
        self.buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.buf[off..off + 8].try_into().unwrap())
    }

    fn set_u64(&mut self, off: usize, v: u64) {
        self.buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            buf: Box::new(*self.buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new(PageType::Data);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0), Some(&b"hello"[..]));
        assert_eq!(p.get(s1), Some(&b"world!"[..]));
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn delete_reuses_slot() {
        let mut p = Page::new(PageType::Data);
        let s0 = p.insert(b"aaa").unwrap();
        let _s1 = p.insert(b"bbb").unwrap();
        p.delete(s0).unwrap();
        assert!(p.get(s0).is_none());
        let s2 = p.insert(b"ccc").unwrap();
        assert_eq!(s2, s0, "dead slot should be reused");
        assert_eq!(p.get(s2), Some(&b"ccc"[..]));
    }

    #[test]
    fn update_shrink_and_grow() {
        let mut p = Page::new(PageType::Data);
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abc").unwrap());
        assert_eq!(p.get(s), Some(&b"abc"[..]));
        assert!(p.update(s, b"a-much-longer-record-body").unwrap());
        assert_eq!(p.get(s), Some(&b"a-much-longer-record-body"[..]));
    }

    #[test]
    fn fill_page_then_compact() {
        let mut p = Page::new(PageType::Data);
        let rec = vec![0xABu8; 100];
        let mut slots = Vec::new();
        while p.can_fit(rec.len()) {
            slots.push(p.insert(&rec).unwrap());
        }
        assert!(p.insert(&rec).is_err());
        // Delete every other record, then a big record should fit after compaction.
        for (i, s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*s).unwrap();
            }
        }
        let big = vec![0xCDu8; 900];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s), Some(&big[..]));
    }

    #[test]
    fn insert_at_is_idempotent() {
        let mut p = Page::new(PageType::Data);
        p.insert_at(3, b"redo-me").unwrap();
        p.insert_at(3, b"redo-me").unwrap();
        assert_eq!(p.get(3), Some(&b"redo-me"[..]));
        assert!(p.get(0).is_none());
        assert_eq!(p.slot_count(), 4);
    }

    #[test]
    fn round_trip_bytes() {
        let mut p = Page::new(PageType::BTreeLeaf);
        p.insert(b"key-value").unwrap();
        p.set_lsn(42);
        p.set_next_page(7);
        let p2 = Page::from_bytes(p.bytes().as_slice()).unwrap();
        assert_eq!(p2.page_type(), PageType::BTreeLeaf);
        assert_eq!(p2.lsn(), 42);
        assert_eq!(p2.next_page(), 7);
        assert_eq!(p2.get(0), Some(&b"key-value"[..]));
    }

    #[test]
    fn rejects_oversized_record() {
        let mut p = Page::new(PageType::Data);
        let big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&big),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn iter_records_skips_dead() {
        let mut p = Page::new(PageType::Data);
        let s0 = p.insert(b"a").unwrap();
        let _ = p.insert(b"b").unwrap();
        let _ = p.insert(b"c").unwrap();
        p.delete(s0).unwrap();
        let live: Vec<_> = p.iter_records().map(|(s, _)| s).collect();
        assert_eq!(live, vec![1, 2]);
    }
}
