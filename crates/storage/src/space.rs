//! Table spaces.
//!
//! A table space is a page-addressed container backed by a file (or memory).
//! Page 0 is the space header: a magic number, the allocation high-water mark,
//! the head of the free-page list, and a handful of general-purpose "anchor"
//! slots that higher layers use to remember their entry points (heap first
//! page, B+tree meta page, …). The paper stores each XML column in its own
//! internal table space (§3.1), reusing relational space management unchanged.

use crate::backend::StorageBackend;
use crate::buffer::{BufferPool, PageGuard, PageId, SpaceId};
use crate::error::{Result, StorageError};
use crate::page::{PageType, PAGE_HEADER_SIZE};
use parking_lot::Mutex;
use std::sync::Arc;

const MAGIC: u32 = 0x5258_5350; // "RXSP"
const HDR_MAGIC: usize = PAGE_HEADER_SIZE;
const HDR_HIGH_WATER: usize = PAGE_HEADER_SIZE + 4;
const HDR_FREE_HEAD: usize = PAGE_HEADER_SIZE + 8;
const HDR_ANCHORS: usize = PAGE_HEADER_SIZE + 12;
/// Number of general-purpose anchor slots in the space header.
pub const ANCHOR_SLOTS: usize = 16;

/// A page-addressed storage container with allocation and anchor slots.
pub struct TableSpace {
    pool: Arc<BufferPool>,
    space: SpaceId,
    alloc: Mutex<()>,
}

impl TableSpace {
    /// Create a fresh table space on `backend`, formatting its header page.
    pub fn create(
        pool: Arc<BufferPool>,
        space: SpaceId,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Arc<Self>> {
        pool.register_space(space, backend);
        let ts = Arc::new(TableSpace {
            pool,
            space,
            alloc: Mutex::new(()),
        });
        let hdr = ts
            .pool
            .fetch_new(PageId::new(space, 0), PageType::SpaceHeader)?;
        {
            let mut p = hdr.write();
            let b = p.bytes_mut();
            b[HDR_MAGIC..HDR_MAGIC + 4].copy_from_slice(&MAGIC.to_le_bytes());
            b[HDR_HIGH_WATER..HDR_HIGH_WATER + 4].copy_from_slice(&1u32.to_le_bytes());
            b[HDR_FREE_HEAD..HDR_FREE_HEAD + 4].copy_from_slice(&0u32.to_le_bytes());
        }
        Ok(ts)
    }

    /// Open an existing table space, validating its header.
    pub fn open(
        pool: Arc<BufferPool>,
        space: SpaceId,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<Arc<Self>> {
        pool.register_space(space, backend);
        let ts = Arc::new(TableSpace {
            pool,
            space,
            alloc: Mutex::new(()),
        });
        let hdr = ts.pool.fetch(PageId::new(space, 0))?;
        let p = hdr.read();
        let b = p.bytes();
        let magic = u32::from_le_bytes(b[HDR_MAGIC..HDR_MAGIC + 4].try_into().unwrap());
        if magic != MAGIC {
            return Err(StorageError::Corrupt(format!(
                "space {space} header magic {magic:#x} != {MAGIC:#x}"
            )));
        }
        Ok(ts)
    }

    /// The space id.
    pub fn id(&self) -> SpaceId {
        self.space
    }

    /// The buffer pool this space is cached through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    fn header(&self) -> Result<PageGuard> {
        self.pool.fetch(PageId::new(self.space, 0))
    }

    fn read_hdr_u32(&self, off: usize) -> Result<u32> {
        let hdr = self.header()?;
        let p = hdr.read();
        Ok(u32::from_le_bytes(
            p.bytes()[off..off + 4].try_into().unwrap(),
        ))
    }

    fn write_hdr_u32(&self, off: usize, v: u32) -> Result<()> {
        let hdr = self.header()?;
        let mut p = hdr.write();
        p.bytes_mut()[off..off + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Number of pages ever allocated (including header and freed pages).
    pub fn high_water(&self) -> Result<u32> {
        self.read_hdr_u32(HDR_HIGH_WATER)
    }

    /// Raise the allocation high-water mark to at least `n` (crash recovery:
    /// pages referenced by the log must never be handed out again).
    pub fn ensure_high_water(&self, n: u32) -> Result<()> {
        let _g = self.alloc.lock();
        let hw = self.read_hdr_u32(HDR_HIGH_WATER)?;
        if n > hw {
            self.write_hdr_u32(HDR_HIGH_WATER, n)?;
        }
        Ok(())
    }

    /// Read general-purpose anchor slot `i`.
    pub fn anchor(&self, i: usize) -> Result<u32> {
        assert!(i < ANCHOR_SLOTS);
        self.read_hdr_u32(HDR_ANCHORS + 4 * i)
    }

    /// Write general-purpose anchor slot `i`.
    pub fn set_anchor(&self, i: usize, v: u32) -> Result<()> {
        assert!(i < ANCHOR_SLOTS);
        self.write_hdr_u32(HDR_ANCHORS + 4 * i, v)
    }

    /// Allocate a page (reusing the free list when possible) formatted as `ptype`.
    pub fn allocate(&self, ptype: PageType) -> Result<PageGuard> {
        let _g = self.alloc.lock();
        let free_head = self.read_hdr_u32(HDR_FREE_HEAD)?;
        let page_no = if free_head != 0 {
            // Pop the free list: the free page's chain link is the next free page.
            let freed = self.pool.fetch(PageId::new(self.space, free_head))?;
            let next = freed.read().next_page();
            self.write_hdr_u32(HDR_FREE_HEAD, next)?;
            free_head
        } else {
            let hw = self.read_hdr_u32(HDR_HIGH_WATER)?;
            self.write_hdr_u32(HDR_HIGH_WATER, hw + 1)?;
            hw
        };
        self.pool.fetch_new(PageId::new(self.space, page_no), ptype)
    }

    /// Return a page to the free list.
    pub fn free(&self, page_no: u32) -> Result<()> {
        assert_ne!(page_no, 0, "cannot free the space header");
        let _g = self.alloc.lock();
        let head = self.read_hdr_u32(HDR_FREE_HEAD)?;
        let g = self.pool.fetch(PageId::new(self.space, page_no))?;
        {
            let mut p = g.write();
            p.format(PageType::Free);
            p.set_next_page(head);
        }
        self.write_hdr_u32(HDR_FREE_HEAD, page_no)
    }

    /// Fetch an existing page of this space.
    pub fn fetch(&self, page_no: u32) -> Result<PageGuard> {
        self.pool.fetch(PageId::new(self.space, page_no))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn space() -> Arc<TableSpace> {
        let pool = BufferPool::new(64);
        TableSpace::create(pool, 7, Arc::new(MemBackend::new())).unwrap()
    }

    #[test]
    fn allocate_sequential_pages() {
        let ts = space();
        let a = ts.allocate(PageType::Data).unwrap();
        let b = ts.allocate(PageType::Data).unwrap();
        assert_eq!(a.pid().page, 1);
        assert_eq!(b.pid().page, 2);
        assert_eq!(ts.high_water().unwrap(), 3);
    }

    #[test]
    fn free_list_reuse() {
        let ts = space();
        let a = ts.allocate(PageType::Data).unwrap().pid().page;
        let b = ts.allocate(PageType::Data).unwrap().pid().page;
        ts.free(a).unwrap();
        ts.free(b).unwrap();
        // LIFO reuse.
        assert_eq!(ts.allocate(PageType::Data).unwrap().pid().page, b);
        assert_eq!(ts.allocate(PageType::Data).unwrap().pid().page, a);
        // Exhausted free list extends the space.
        assert_eq!(ts.allocate(PageType::Data).unwrap().pid().page, 3);
    }

    #[test]
    fn anchors_persist() {
        let pool = BufferPool::new(64);
        let backend = Arc::new(MemBackend::new());
        {
            let ts = TableSpace::create(pool.clone(), 3, backend.clone()).unwrap();
            ts.set_anchor(0, 42).unwrap();
            ts.set_anchor(15, 7).unwrap();
            pool.flush_all().unwrap();
        }
        pool.forget_space(3);
        let ts = TableSpace::open(pool, 3, backend).unwrap();
        assert_eq!(ts.anchor(0).unwrap(), 42);
        assert_eq!(ts.anchor(15).unwrap(), 7);
        assert_eq!(ts.anchor(1).unwrap(), 0);
    }

    #[test]
    fn open_rejects_garbage() {
        let pool = BufferPool::new(64);
        let backend = Arc::new(MemBackend::new());
        // Write a non-space page image at page 0.
        let mut junk = [0u8; crate::page::PAGE_SIZE];
        junk[8] = PageType::Data as u8;
        backend.write_page(0, &junk).unwrap();
        assert!(TableSpace::open(pool, 9, backend).is_err());
    }
}
