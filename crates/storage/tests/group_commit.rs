//! Durability under group commit: every acknowledged commit survives crash
//! recovery (including a torn log tail mid-batch), an unacknowledged
//! in-flight transaction rolls back cleanly, and the leader-follower flush
//! protocol provably batches — one fsync covering many committers.

use parking_lot::{Condvar, Mutex};
use rx_storage::wal::{recover, FileLogStore, LogRecord, LogStore, MemLogStore, RecoveryEnv, Wal};
use rx_storage::{
    BufferPool, FileBackend, HeapTable, LockManager, StorageError, TableSpace, TxnManager,
};
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rx-gc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPACE: u32 = 1;

fn payload(owner: u64, seq: u64) -> Vec<u8> {
    format!("row-{owner}-{seq}").into_bytes()
}

/// Acked commits (and only acked commits) survive `recover()`, even with a
/// torn frame at the log tail simulating a crash mid-batch.
#[test]
fn acked_commits_survive_crash_with_torn_tail() {
    const WRITERS: u64 = 8;
    const TXNS_PER_WRITER: u64 = 10;

    let dir = tmpdir("torn");
    let acked: Mutex<Vec<(rx_storage::Rid, Vec<u8>)>> = Mutex::new(Vec::new());
    let unacked_rid;
    {
        let pool = BufferPool::new(64);
        let backend = Arc::new(FileBackend::open(&dir.join("space-1.dat")).unwrap());
        let space = TableSpace::create(pool.clone(), SPACE, backend).unwrap();
        let heap = HeapTable::create(space).unwrap();
        // DDL is durable (as Database::create_table does with flush_all).
        pool.flush_all().unwrap();

        let wal = Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log")).unwrap()));
        let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());

        std::thread::scope(|s| {
            for owner in 0..WRITERS {
                let txns = Arc::clone(&txns);
                let heap = Arc::clone(&heap);
                let acked = &acked;
                s.spawn(move || {
                    for seq in 0..TXNS_PER_WRITER {
                        let t = txns.begin().unwrap();
                        let data = payload(owner, seq);
                        let rid = heap.insert(&data).unwrap();
                        t.log(&LogRecord::HeapInsert {
                            txn: t.id(),
                            space: SPACE,
                            rid,
                            data: data.clone(),
                        })
                        .unwrap();
                        t.commit().unwrap();
                        // The commit was acknowledged: it must survive.
                        acked.lock().push((rid, data));
                    }
                });
            }
        });

        // One in-flight transaction that never commits: its records may sit
        // in the staging buffer or on disk, but recovery must roll it back.
        let t = txns.begin().unwrap();
        let data = b"in-flight-never-acked".to_vec();
        let rid = heap.insert(&data).unwrap();
        t.log(&LogRecord::HeapInsert {
            txn: t.id(),
            space: SPACE,
            rid,
            data,
        })
        .unwrap();
        unacked_rid = rid;
        // A later group-commit flush carries the in-flight records to disk
        // (without any Commit for them), as happens whenever an unrelated
        // session commits.
        wal.force().unwrap();
        // "Crash": leak the transaction so no Abort is logged, and drop the
        // pool without flushing dirty pages.
        std::mem::forget(t);
    }

    // Torn tail: a frame header promising more bytes than follow.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&500u32.to_le_bytes()).unwrap();
        f.write_all(&[0xde, 0xad]).unwrap();
    }

    // Recover into freshly opened structures.
    let pool = BufferPool::new(64);
    let backend = Arc::new(FileBackend::open(&dir.join("space-1.dat")).unwrap());
    let space = TableSpace::open(pool.clone(), SPACE, backend).unwrap();
    let heap = HeapTable::open(space).unwrap();
    let wal = Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log")).unwrap()));
    let env = RecoveryEnv {
        heaps: HashMap::from([(SPACE, Arc::clone(&heap))]),
        ..Default::default()
    };
    let report = recover(&wal, &env).unwrap();
    assert_eq!(report.winners as u64, WRITERS * TXNS_PER_WRITER);
    assert!(report.losers >= 1, "the in-flight txn must be a loser");

    let acked = acked.into_inner();
    assert_eq!(acked.len() as u64, WRITERS * TXNS_PER_WRITER);
    for (rid, data) in &acked {
        let got = heap.fetch(*rid).unwrap();
        assert_eq!(&got, data, "acked commit lost at {rid:?}");
    }
    // The unacknowledged insert must be gone.
    assert!(
        matches!(
            heap.fetch(unacked_rid),
            Err(StorageError::RecordNotFound { .. })
        ),
        "unacked in-flight insert survived recovery"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A log store whose fsync blocks until the test opens a gate, making the
/// group-commit batching deterministic: the first committer is held inside
/// its fsync while seven more stage their records, then one follower-elected
/// leader flushes all seven with a single additional fsync.
#[derive(Default)]
struct GatedStore {
    inner: MemLogStore,
    open: Mutex<bool>,
    cond: Condvar,
    entered: AtomicU64,
    flushes: AtomicU64,
}

impl GatedStore {
    fn wait_entered(&self) {
        while self.entered.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
    }

    fn open_gate(&self) {
        *self.open.lock() = true;
        self.cond.notify_all();
    }
}

impl LogStore for GatedStore {
    fn append(&self, bytes: &[u8]) -> rx_storage::Result<()> {
        self.inner.append(bytes)
    }
    fn flush(&self) -> rx_storage::Result<()> {
        self.flushes.fetch_add(1, Ordering::AcqRel);
        self.entered.fetch_add(1, Ordering::AcqRel);
        let mut open = self.open.lock();
        while !*open {
            self.cond.wait(&mut open);
        }
        Ok(())
    }
    fn read_all(&self) -> rx_storage::Result<Vec<u8>> {
        self.inner.read_all()
    }
    fn truncate(&self) -> rx_storage::Result<()> {
        self.inner.truncate()
    }
}

#[test]
fn one_fsync_amortizes_across_concurrent_committers() {
    const FOLLOWERS: u64 = 7;

    let store = Arc::new(GatedStore::default());
    let wal = Wal::new(Arc::clone(&store) as Arc<dyn LogStore>);
    let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());

    std::thread::scope(|s| {
        // Leader: commits first and blocks inside the gated fsync.
        let leader_txns = Arc::clone(&txns);
        let leader = s.spawn(move || {
            leader_txns.begin().unwrap().commit().unwrap();
        });
        store.wait_entered();

        // Followers: stage Begin+Commit and pile up on the durable-LSN
        // condvar while the leader is stuck in fsync.
        let mut followers = Vec::new();
        for _ in 0..FOLLOWERS {
            let txns = Arc::clone(&txns);
            followers.push(s.spawn(move || {
                txns.begin().unwrap().commit().unwrap();
            }));
        }
        // Every follower has staged its records (2 for the leader + 2 per
        // follower) before the gate opens.
        while wal.records_written() < 2 * (FOLLOWERS + 1) {
            std::thread::yield_now();
        }
        store.open_gate();
        leader.join().unwrap();
        for f in followers {
            f.join().unwrap();
        }
    });

    // Two fsyncs total: the leader's own, then exactly one covering all
    // seven followers as a single batch.
    assert_eq!(store.flushes.load(Ordering::Acquire), 2);
    let s = wal.stats.snapshot();
    assert_eq!(s.fsyncs, 2);
    // The leader always waits, and at least one follower must lead the
    // second flush; a follower scheduled late may find its LSN already
    // durable and skip waiting entirely.
    assert!(
        s.group_commits >= 2 && s.group_commits <= FOLLOWERS + 1,
        "group_commits out of range: {}",
        s.group_commits
    );
    assert!(
        s.batch_records_max >= 2 * FOLLOWERS,
        "second batch must cover all followers, got max {}",
        s.batch_records_max
    );
    assert_eq!(wal.durable_lag(), 0);
}

/// Commits acknowledged before a checkpoint stay durable through it, and the
/// checkpoint coordinates with concurrent committers without losing records.
#[test]
fn checkpoint_coordinates_with_group_commit() {
    let wal = Wal::new(Arc::new(MemLogStore::new()));
    let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let txns = Arc::clone(&txns);
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    txns.begin().unwrap().commit().unwrap();
                }
            });
        }
        for _ in 0..20 {
            let barrier = wal.current_lsn() + 1;
            let keep = txns.oldest_active_lsn().map_or(barrier, |l| l.min(barrier));
            wal.checkpoint(keep).unwrap();
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });
    // The log replays cleanly after heavy checkpoint/commit interleaving and
    // ends with a consistent watermark. Every transaction finished, so the
    // surviving suffix must contain no losers — a Begin carried past a
    // checkpoint must keep its Commit too.
    let report = recover(&wal, &RecoveryEnv::default()).unwrap();
    assert_eq!(report.losers, 0, "checkpoint orphaned a committed txn");
    let recs = wal.read_records().unwrap();
    assert!(recs
        .iter()
        .any(|r| matches!(r, LogRecord::Checkpoint | LogRecord::Commit { .. })));
    assert!(wal.durable_lsn() <= wal.records_written());
}

/// The review scenario for acked-commit loss: checkpoints race a storm of
/// committers, then the process "crashes" without flushing pages. Every
/// commit acknowledged before the crash must be readable after recovery —
/// either from a page image the checkpoint flushed or from a log record the
/// checkpoint carried across its truncation.
#[test]
fn acked_commits_survive_checkpoint_raced_with_commits() {
    const WRITERS: u64 = 4;
    const CHECKPOINTS: usize = 12;

    let dir = tmpdir("ckpt-race");
    let acked: Mutex<Vec<(rx_storage::Rid, Vec<u8>)>> = Mutex::new(Vec::new());
    {
        let pool = BufferPool::new(64);
        let backend = Arc::new(FileBackend::open(&dir.join("space-1.dat")).unwrap());
        let space = TableSpace::create(pool.clone(), SPACE, backend).unwrap();
        let heap = HeapTable::create(space).unwrap();
        pool.flush_all().unwrap();

        let wal = Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log")).unwrap()));
        let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());
        let stop = AtomicBool::new(false);

        std::thread::scope(|s| {
            for owner in 0..WRITERS {
                let txns = Arc::clone(&txns);
                let heap = Arc::clone(&heap);
                let (acked, stop) = (&acked, &stop);
                s.spawn(move || {
                    let mut seq = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let t = txns.begin().unwrap();
                        let data = payload(owner, seq);
                        let rid = heap.insert(&data).unwrap();
                        t.log(&LogRecord::HeapInsert {
                            txn: t.id(),
                            space: SPACE,
                            rid,
                            data: data.clone(),
                        })
                        .unwrap();
                        t.commit().unwrap();
                        acked.lock().push((rid, data));
                        seq += 1;
                    }
                });
            }
            // Checkpoint exactly as Database::checkpoint does: compute the
            // keep floor, flush all pages, then truncate the log to it.
            for _ in 0..CHECKPOINTS {
                let barrier = wal.current_lsn() + 1;
                let keep = txns.oldest_active_lsn().map_or(barrier, |l| l.min(barrier));
                pool.flush_all().unwrap();
                wal.checkpoint(keep).unwrap();
                std::thread::yield_now();
            }
            // Make sure the writers actually raced the checkpoints.
            while acked.lock().len() < 50 {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        // "Crash": drop the pool without flushing dirty pages.
    }

    let pool = BufferPool::new(64);
    let backend = Arc::new(FileBackend::open(&dir.join("space-1.dat")).unwrap());
    let space = TableSpace::open(pool.clone(), SPACE, backend).unwrap();
    let heap = HeapTable::open(space).unwrap();
    let wal = Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log")).unwrap()));
    let env = RecoveryEnv {
        heaps: HashMap::from([(SPACE, Arc::clone(&heap))]),
        ..Default::default()
    };
    let report = recover(&wal, &env).unwrap();
    assert_eq!(report.losers, 0, "all transactions were acked: {report:?}");

    let acked = acked.into_inner();
    assert!(!acked.is_empty());
    for (rid, data) in &acked {
        let got = heap
            .fetch(*rid)
            .unwrap_or_else(|e| panic!("acked commit lost across checkpoint at {rid:?}: {e}"));
        assert_eq!(&got, data, "acked commit corrupted at {rid:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A log store whose next append can be made to fail once, exercising the
/// leader error path where the batch is restored to staging.
#[derive(Default)]
struct FailingAppendStore {
    inner: MemLogStore,
    fail_next: AtomicBool,
}

impl LogStore for FailingAppendStore {
    fn append(&self, bytes: &[u8]) -> rx_storage::Result<()> {
        if self.fail_next.swap(false, Ordering::AcqRel) {
            return Err(StorageError::Catalog("injected append failure".into()));
        }
        self.inner.append(bytes)
    }
    fn flush(&self) -> rx_storage::Result<()> {
        Ok(())
    }
    fn read_all(&self) -> rx_storage::Result<Vec<u8>> {
        self.inner.read_all()
    }
    fn truncate(&self) -> rx_storage::Result<()> {
        self.inner.truncate()
    }
}

/// When a commit's group flush fails, the session is told the commit did not
/// take and rolls back; the orphaned Commit record still reaches the log via
/// a later batch. Recovery must honor the Abort, not redo the "commit".
#[test]
fn failed_commit_flush_recovers_as_aborted() {
    let store = Arc::new(FailingAppendStore::default());
    let wal = Wal::new(Arc::clone(&store) as Arc<dyn LogStore>);
    let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());

    let pool = BufferPool::new(64);
    let backend = Arc::new(rx_storage::MemBackend::new());
    let space = TableSpace::create(pool, SPACE, backend).unwrap();
    let heap = HeapTable::create(space).unwrap();

    let data = b"doomed".to_vec();
    let rid;
    {
        let t = txns.begin().unwrap();
        rid = heap.insert(&data).unwrap();
        t.log(&LogRecord::HeapInsert {
            txn: t.id(),
            space: SPACE,
            rid,
            data: data.clone(),
        })
        .unwrap();
        let (heap, id, data) = (Arc::clone(&heap), t.id(), data.clone());
        t.push_undo(Box::new(move |ctx| {
            heap.delete(rid)?;
            ctx.log(&LogRecord::HeapDelete {
                txn: id,
                space: SPACE,
                rid,
                before: data,
            })?;
            Ok(())
        }));
        store.fail_next.store(true, Ordering::Release);
        // The leader's append fails: the committer is told the commit did
        // not take, and the Drop-rollback undoes the insert, logging the
        // compensation and an Abort (whose flush succeeds and carries the
        // restored batch — including the orphaned Commit — with it).
        assert!(t.commit().is_err());
    }

    // Crash-recover into a fresh heap: the transaction must replay as
    // aborted, leaving no trace of the insert.
    let pool = BufferPool::new(64);
    let backend = Arc::new(rx_storage::MemBackend::new());
    let space = TableSpace::create(pool, SPACE, backend).unwrap();
    let fresh = HeapTable::create(space).unwrap();
    let env = RecoveryEnv {
        heaps: HashMap::from([(SPACE, Arc::clone(&fresh))]),
        ..Default::default()
    };
    let report = recover(&wal, &env).unwrap();
    assert_eq!(report.winners, 0, "failed commit counted as winner");
    assert!(
        matches!(fresh.fetch(rid), Err(StorageError::RecordNotFound { .. })),
        "failed commit's insert survived recovery"
    );
}
