//! Contended-storage stress: many threads hammer the sharded buffer pool and
//! the group-commit WAL at once, then every counter invariant is checked.
//! Thread count scales with `RX_STRESS_THREADS` (default 8) so CI can turn
//! the pressure up without editing the test.

use rx_storage::wal::MemLogStore;
use rx_storage::{
    BufferPool, HeapTable, LockManager, LogRecord, MemBackend, PageId, StorageBackend, TableSpace,
    TxnManager, Wal,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn stress_threads() -> u64 {
    std::env::var("RX_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

/// Tiny deterministic PRNG so the access pattern is reproducible without
/// pulling in a rand dependency.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }
}

const SPACE: u32 = 7;

/// In-memory log whose flush costs a realistic fsync latency. With free
/// flushes committers never overlap and every commit gets a private fsync;
/// this store makes the batching the test asserts on actually observable.
#[derive(Default)]
struct SlowSyncStore(MemLogStore);

impl rx_storage::wal::LogStore for SlowSyncStore {
    fn append(&self, bytes: &[u8]) -> rx_storage::Result<()> {
        self.0.append(bytes)
    }
    fn flush(&self) -> rx_storage::Result<()> {
        std::thread::sleep(std::time::Duration::from_micros(500));
        self.0.flush()
    }
    fn read_all(&self) -> rx_storage::Result<Vec<u8>> {
        self.0.read_all()
    }
    fn truncate(&self) -> rx_storage::Result<()> {
        self.0.truncate()
    }
}

/// Concurrent readers fetching a working set larger than the pool: per-shard
/// hit/miss counters must sum to the global ones, every fetch must be either
/// a hit or a miss, and residency can never exceed capacity.
#[test]
fn sharded_fetches_keep_counters_consistent() {
    const CAPACITY: usize = 64;
    const PAGES: u32 = 256;
    const FETCHES_PER_THREAD: u64 = 2_000;

    let pool = BufferPool::new(CAPACITY);
    let backend = Arc::new(MemBackend::new());
    backend.ensure_pages(PAGES).unwrap();
    pool.register_space(SPACE, backend);
    assert!(pool.shard_count() > 1, "capacity {CAPACITY} must shard");

    let threads = stress_threads();
    let fetches = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let pool = pool.clone();
            let fetches = &fetches;
            s.spawn(move || {
                let mut rng = Lcg(0x5eed ^ t);
                for _ in 0..FETCHES_PER_THREAD {
                    let page = (rng.next() % PAGES as u64) as u32;
                    let g = pool.fetch(PageId::new(SPACE, page)).unwrap();
                    drop(g);
                    fetches.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let (hits, misses, evictions, _writebacks) = pool.stats.snapshot();
    let total = fetches.load(Ordering::Relaxed);
    assert_eq!(total, threads * FETCHES_PER_THREAD);
    assert_eq!(hits + misses, total, "every fetch is a hit or a miss");
    assert!(misses > 0, "working set exceeds capacity: misses expected");
    assert!(
        evictions > 0,
        "working set exceeds capacity: evictions expected"
    );

    let shards = pool.shard_stats();
    assert_eq!(shards.len(), pool.shard_count());
    assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), hits);
    assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), misses);
    let resident: u64 = shards.iter().map(|s| s.resident).sum();
    assert!(
        resident <= pool.capacity() as u64,
        "resident {resident} exceeds capacity {}",
        pool.capacity()
    );
    // The randomized working set must actually spread over the shards.
    assert!(
        shards.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
        "all traffic landed on one shard"
    );
}

/// Concurrent transactional writers: after the storm, all committed rows are
/// readable, the WAL batched fsyncs (fsyncs <= group commits, and strictly
/// fewer fsyncs than commits under real contention), and nothing remains
/// non-durable.
#[test]
fn concurrent_commits_batch_and_stay_consistent() {
    const TXNS_PER_THREAD: u64 = 50;

    let pool = BufferPool::new(128);
    let backend = Arc::new(MemBackend::new());
    let space = TableSpace::create(pool.clone(), SPACE, backend).unwrap();
    let heap = HeapTable::create(space).unwrap();
    let wal = Wal::new(Arc::new(SlowSyncStore::default()));
    let txns = TxnManager::new(Arc::clone(&wal), LockManager::with_defaults());

    let threads = stress_threads();
    let committed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for owner in 0..threads {
            let txns = Arc::clone(&txns);
            let heap = Arc::clone(&heap);
            let committed = &committed;
            s.spawn(move || {
                for seq in 0..TXNS_PER_THREAD {
                    let t = txns.begin().unwrap();
                    let data = format!("stress-{owner}-{seq}").into_bytes();
                    let rid = heap.insert(&data).unwrap();
                    t.log(&LogRecord::HeapInsert {
                        txn: t.id(),
                        space: SPACE,
                        rid,
                        data: data.clone(),
                    })
                    .unwrap();
                    t.commit().unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                    assert_eq!(heap.fetch(rid).unwrap(), data);
                }
            });
        }
    });

    let total = committed.load(Ordering::Relaxed);
    assert_eq!(total, threads * TXNS_PER_THREAD);
    assert_eq!(txns.active_count(), 0, "all transactions finished");

    // Begin + HeapInsert + Commit per transaction.
    assert_eq!(wal.records_written(), total * 3);
    assert_eq!(wal.durable_lag(), 0, "every acked commit is durable");
    assert_eq!(wal.durable_lsn(), total * 3);

    let s = wal.stats.snapshot();
    assert!(s.fsyncs > 0);
    assert!(
        s.fsyncs <= s.group_commits,
        "fsyncs {} must never exceed waiting commits {}",
        s.fsyncs,
        s.group_commits
    );
    if threads >= 8 {
        // Under real contention batching must actually kick in: strictly
        // fewer fsyncs than commits, i.e. batch size > 1 on average.
        assert!(
            s.fsyncs < total,
            "no batching happened: {} fsyncs for {} commits",
            s.fsyncs,
            total
        );
        assert!(
            s.batch_records_max > 1,
            "never batched more than one record"
        );
    }

    // The pool's shard counters stayed coherent under the same storm.
    let (hits, misses, ..) = pool.stats.snapshot();
    let shards = pool.shard_stats();
    assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), hits);
    assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), misses);
    assert!(shards.iter().map(|s| s.resident).sum::<u64>() <= pool.capacity() as u64);
}
