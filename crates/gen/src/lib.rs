//! # rx-gen — deterministic XML workload generators
//!
//! Synthetic documents for the System R/X experiments. Every generator is
//! seeded and parameterized by exactly the knobs the paper's analyses use:
//!
//! * `k` — node count ([`sized_tree`], [`CatalogSpec::products`]);
//! * `n` — node body size ([`CatalogSpec::description_len`], `text_len`);
//! * `r` — recursion degree ([`recursive_doc`]), the variable in QuickXScan's
//!   O(|Q|·r) bound and the Fig. 7 state-blowup comparison;
//! * value distributions for predicate selectivity sweeps (prices/discounts
//!   in [`catalog_xml`] follow closed forms so expected result counts are
//!   computable without evaluating).

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the paper's running catalog example
/// (`/Catalog/Categories/Product/...`, §3.3/§4.3).
#[derive(Debug, Clone)]
pub struct CatalogSpec {
    /// Number of `<Product>` elements.
    pub products: usize,
    /// Number of `<Categories>` groups products are spread over.
    pub categories: usize,
    /// Length of each product's `<Description>` payload (the body-size `n`).
    pub description_len: usize,
    /// Price range: prices are uniform over `[lo, hi)`.
    pub price_lo: f64,
    /// Upper price bound.
    pub price_hi: f64,
    /// Discounts cycle over `i % discount_levels * 0.05`.
    pub discount_levels: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            products: 100,
            categories: 4,
            description_len: 64,
            price_lo: 1.0,
            price_hi: 500.0,
            discount_levels: 8,
            seed: 42,
        }
    }
}

impl CatalogSpec {
    /// The deterministic price of product `i` (a seeded permutation over a
    /// uniform grid) — lets experiments compute expected selectivities
    /// exactly.
    pub fn price(&self, i: usize) -> f64 {
        let n = self.products.max(1);
        let mixed = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(self.seed)
            % n as u64;
        let frac = mixed as f64 / n as f64;
        let cents = (self.price_lo + frac * (self.price_hi - self.price_lo)) * 100.0;
        cents.round() / 100.0
    }

    /// The deterministic discount of product `i`.
    pub fn discount(&self, i: usize) -> f64 {
        (i % self.discount_levels.max(1)) as f64 * 0.05
    }

    /// Expected number of products with `price > threshold`.
    pub fn expected_above(&self, threshold: f64) -> usize {
        (0..self.products)
            .filter(|&i| self.price(i) > threshold)
            .count()
    }
}

/// Generate one catalog document with all products (the large-document
/// shape; E6's NodeID access case).
pub fn catalog_xml(spec: &CatalogSpec) -> String {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut out = String::with_capacity(spec.products * (160 + spec.description_len));
    out.push_str("<Catalog>");
    let per_cat = spec.products.div_ceil(spec.categories.max(1));
    let mut i = 0usize;
    for c in 0..spec.categories.max(1) {
        if i >= spec.products {
            break;
        }
        out.push_str(&format!("<Categories id=\"{c}\">"));
        for _ in 0..per_cat {
            if i >= spec.products {
                break;
            }
            push_product(&mut out, spec, i, &mut rng);
            i += 1;
        }
        out.push_str("</Categories>");
    }
    out.push_str("</Catalog>");
    out
}

/// Generate one *single-product* catalog document (the many-small-documents
/// shape; E6's DocID access case).
pub fn product_doc(spec: &CatalogSpec, i: usize) -> String {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ i as u64);
    let mut out = String::with_capacity(200 + spec.description_len);
    out.push_str("<Catalog><Categories>");
    push_product(&mut out, spec, i, &mut rng);
    out.push_str("</Categories></Catalog>");
    out
}

fn push_product(out: &mut String, spec: &CatalogSpec, i: usize, rng: &mut StdRng) {
    let price = spec.price(i);
    let discount = spec.discount(i);
    out.push_str(&format!(
        "<Product id=\"{i}\"><ProductName>Product-{i:06}</ProductName>\
         <RegPrice>{price:.2}</RegPrice><Discount>{discount:.2}</Discount>\
         <Added>20{:02}-{:02}-{:02}</Added><Description>",
        rng.gen_range(0..25),
        rng.gen_range(1..13),
        rng.gen_range(1..29),
    ));
    push_text(out, spec.description_len, rng);
    out.push_str("</Description></Product>");
}

fn push_text(out: &mut String, len: usize, rng: &mut StdRng) {
    const WORDS: &[&str] = &[
        "durable",
        "portable",
        "enterprise",
        "scalable",
        "native",
        "relational",
        "hierarchical",
        "indexed",
        "streaming",
        "optimal",
        "packed",
        "widget",
        "gadget",
        "engine",
        "catalog",
    ];
    let mut n = 0usize;
    while n < len {
        let w = WORDS[rng.gen_range(0..WORDS.len())];
        if n > 0 {
            out.push(' ');
            n += 1;
        }
        out.push_str(w);
        n += w.len();
    }
}

/// A document of `r` nested same-name elements (`<a><a>…</a></a>`), the
/// recursion-degree workload of Fig. 7: queries like `//a//a//a` make naive
/// streaming matchers track combinatorially many partial matches while
/// QuickXScan stays at O(|Q|·r).
pub fn recursive_doc(name: &str, r: usize, leaf_text: &str) -> String {
    let mut out = String::with_capacity(r * (name.len() * 2 + 5) + leaf_text.len());
    for _ in 0..r {
        out.push('<');
        out.push_str(name);
        out.push('>');
    }
    out.push_str(leaf_text);
    for _ in 0..r {
        out.push_str("</");
        out.push_str(name);
        out.push('>');
    }
    out
}

/// A recursive document with fan-out: each `<part>` contains `fanout`
/// children down to depth `r` (a bill-of-materials shape; total elements
/// ≈ fanout^r).
pub fn bom_doc(r: usize, fanout: usize) -> String {
    fn rec(out: &mut String, depth: usize, fanout: usize, id: &mut usize) {
        out.push_str(&format!("<part><name>p{}</name>", *id));
        *id += 1;
        if depth > 1 {
            for _ in 0..fanout {
                rec(out, depth - 1, fanout, id);
            }
        }
        out.push_str("</part>");
    }
    let mut out = String::new();
    let mut id = 0;
    rec(&mut out, r.max(1), fanout, &mut id);
    out
}

/// A generic tree with exactly `nodes` element nodes below a `<root>`
/// wrapper: implicit heap-shaped tree with the given fan-out, every leaf
/// carrying `text_len` characters. Element names cycle over a small
/// vocabulary so name tests stay selective.
pub fn sized_tree(nodes: usize, fanout: usize, text_len: usize, seed: u64) -> String {
    const NAMES: &[&str] = &["section", "item", "entry", "block", "leaf", "group"];
    let mut rng = StdRng::seed_from_u64(seed);
    let fanout = fanout.max(1);
    fn rec(
        out: &mut String,
        i: usize,
        nodes: usize,
        fanout: usize,
        text_len: usize,
        rng: &mut StdRng,
    ) {
        let name = NAMES[i % NAMES.len()];
        out.push('<');
        out.push_str(name);
        out.push('>');
        let first_child = i * fanout + 1;
        let mut any = false;
        for c in first_child..(first_child + fanout).min(nodes) {
            any = true;
            rec(out, c, nodes, fanout, text_len, rng);
        }
        if !any && text_len > 0 {
            push_text(out, text_len, rng);
        }
        out.push_str("</");
        out.push_str(name);
        out.push('>');
    }
    let mut out = String::with_capacity(nodes * (12 + text_len / fanout));
    out.push_str("<root>");
    if nodes > 0 {
        rec(&mut out, 0, nodes, fanout, text_len, &mut rng);
    }
    out.push_str("</root>");
    out
}

/// Orders documents for the concurrency experiment: `items` line items, each
/// a candidate for disjoint-subtree updates.
pub fn order_doc(order_id: usize, items: usize) -> String {
    let mut out = format!("<Order id=\"{order_id}\"><Customer>cust-{order_id}</Customer>");
    for i in 0..items {
        out.push_str(&format!(
            "<Item><Sku>sku-{i}</Sku><Qty>{}</Qty><Status>new</Status></Item>",
            (i % 9) + 1
        ));
    }
    out.push_str("</Order>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_xml::{NameDict, Parser};

    fn well_formed(doc: &str) {
        let dict = NameDict::new();
        Parser::new(&dict)
            .parse_to_tokens(doc)
            .expect("well-formed");
    }

    #[test]
    fn catalog_shape_and_determinism() {
        let spec = CatalogSpec::default();
        let a = catalog_xml(&spec);
        let b = catalog_xml(&spec);
        assert_eq!(a, b, "seeded generation is deterministic");
        well_formed(&a);
        assert_eq!(a.matches("<Product ").count(), spec.products);
        assert_eq!(a.matches("<Categories ").count(), spec.categories);
    }

    #[test]
    fn price_selectivity_is_computable() {
        let spec = CatalogSpec {
            products: 1000,
            ..Default::default()
        };
        let expected = spec.expected_above(250.0);
        assert!((300..700).contains(&expected), "{expected}");
    }

    #[test]
    fn product_docs_are_small_and_well_formed() {
        let spec = CatalogSpec::default();
        for i in [0, 1, 99] {
            let d = product_doc(&spec, i);
            well_formed(&d);
            assert!(d.contains(&format!("id=\"{i}\"")));
        }
    }

    #[test]
    fn recursive_doc_depth() {
        let d = recursive_doc("a", 5, "x");
        well_formed(&d);
        assert_eq!(d.matches("<a>").count(), 5);
        assert_eq!(d, "<a><a><a><a><a>x</a></a></a></a></a>");
    }

    #[test]
    fn bom_counts() {
        let d = bom_doc(3, 2);
        well_formed(&d);
        assert_eq!(d.matches("<part>").count(), 7);
    }

    #[test]
    fn sized_tree_node_count() {
        for nodes in [1usize, 10, 100, 1000] {
            let d = sized_tree(nodes, 4, 16, 7);
            well_formed(&d);
            let elems: usize = ["section", "item", "entry", "block", "leaf", "group"]
                .iter()
                .map(|n| d.matches(&format!("<{n}>")).count())
                .sum();
            assert_eq!(elems, nodes);
        }
    }

    #[test]
    fn order_doc_items() {
        let d = order_doc(7, 12);
        well_formed(&d);
        assert_eq!(d.matches("<Item>").count(), 12);
    }
}

/// An XMark-flavoured auction site document: `regions > item*` with nested
/// mixed-content descriptions, `people > person*` with optional profiles,
/// and `open_auctions > auction*` with growing bid histories. Exercises
/// deeper nesting, optional elements, and skewed fan-out — shapes the flat
/// catalog generator does not.
pub fn auction_doc(items: usize, people: usize, auctions: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(items * 200 + people * 120 + auctions * 160);
    out.push_str("<site><regions>");
    for i in 0..items {
        let region = ["africa", "asia", "europe", "namerica"][i % 4];
        out.push_str(&format!(
            "<item id=\"item{i}\" region=\"{region}\"><name>Item {i}</name><payment>{}</payment>\
             <description><parlist>",
            ["Cash", "Creditcard", "Wire"][rng.gen_range(0..3usize)]
        ));
        for _ in 0..rng.gen_range(1..4) {
            out.push_str("<listitem><text>");
            push_text(&mut out, 24, &mut rng);
            out.push_str("</text></listitem>");
        }
        out.push_str("</parlist></description></item>");
    }
    out.push_str("</regions><people>");
    for p in 0..people {
        out.push_str(&format!(
            "<person id=\"person{p}\"><name>Person {p}</name>\
             <emailaddress>p{p}@example.org</emailaddress>"
        ));
        if p % 3 == 0 {
            out.push_str(&format!(
                "<profile income=\"{}\"><interest category=\"cat{}\"/></profile>",
                20000 + rng.gen_range(0..80000),
                p % 7
            ));
        }
        out.push_str("</person>");
    }
    out.push_str("</people><open_auctions>");
    for a in 0..auctions {
        out.push_str(&format!(
            "<open_auction id=\"auction{a}\"><itemref item=\"item{}\"/>\
             <initial>{}.00</initial>",
            a % items.max(1),
            5 + rng.gen_range(0..95)
        ));
        let mut price = 10 + rng.gen_range(0..50);
        for b in 0..(a % 6) {
            price += rng.gen_range(1..20);
            out.push_str(&format!(
                "<bidder><personref person=\"person{}\"/><increase>{b}</increase>\
                 <current>{price}.00</current></bidder>",
                (a + b) % people.max(1)
            ));
        }
        out.push_str(&format!("<current>{price}.00</current></open_auction>"));
    }
    out.push_str("</open_auctions></site>");
    out
}

#[cfg(test)]
mod auction_tests {
    use super::*;
    use rx_xml::{NameDict, Parser};

    #[test]
    fn auction_doc_shape() {
        let d = auction_doc(20, 15, 30, 5);
        let dict = NameDict::new();
        Parser::new(&dict).parse_to_tokens(&d).expect("well-formed");
        assert_eq!(d.matches("<item ").count(), 20);
        assert_eq!(d.matches("<person ").count(), 15);
        assert_eq!(d.matches("<open_auction ").count(), 30);
        // Deterministic.
        assert_eq!(d, auction_doc(20, 15, 30, 5));
        assert_ne!(d, auction_doc(20, 15, 30, 6));
    }
}
