//! # rx-bench — shared harness for the System R/X experiments
//!
//! Helpers used by both the Criterion benches (`benches/e*.rs`) and the
//! `report` binary, which regenerates every table/figure-level claim of the
//! paper and prints paper-shape vs measured (see `EXPERIMENTS.md`).

#![warn(missing_docs)]

use rx_engine::db::{ColValue, ColumnKind, Database, DbConfig};
use rx_engine::shred::ShreddedStore;
use rx_engine::{BaseTable, DocId};
use rx_gen::CatalogSpec;
use rx_storage::{BufferPool, MemBackend, TableSpace};
use rx_xml::NameDict;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-memory database with the given target record size.
pub fn mem_db(target_record_size: usize) -> Arc<Database> {
    Database::create_in_memory_with(DbConfig {
        target_record_size,
        buffer_pages: 16_384,
        ..Default::default()
    })
    .expect("in-memory database")
}

/// An in-memory database with the given target record size and a document
/// record-cache budget (0 = cache off, the default everywhere else).
pub fn mem_db_cached(target_record_size: usize, doc_cache_bytes: usize) -> Arc<Database> {
    Database::create_in_memory_with(DbConfig {
        target_record_size,
        buffer_pages: 16_384,
        doc_cache_bytes,
        ..Default::default()
    })
    .expect("in-memory database")
}

/// Create `products` single-product documents in a `products` table with
/// price and discount value indexes. Returns the table and the spec.
pub fn load_product_docs(db: &Arc<Database>, products: usize) -> (Arc<BaseTable>, CatalogSpec) {
    let t = db
        .create_table("products", &[("doc", ColumnKind::Xml)])
        .expect("table");
    db.create_value_index(
        "products",
        "price_idx",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        rx_xml::value::KeyType::Double,
    )
    .expect("index");
    db.create_value_index(
        "products",
        "disc_idx",
        "doc",
        "//Discount",
        rx_xml::value::KeyType::Double,
    )
    .expect("index");
    let spec = CatalogSpec {
        products,
        ..Default::default()
    };
    for i in 0..products {
        db.insert_row(&t, &[ColValue::Xml(rx_gen::product_doc(&spec, i))])
            .expect("insert");
    }
    (t, spec)
}

/// Create one big catalog document (all products in one row) with a price
/// index. Returns (table, spec, docid).
pub fn load_single_catalog(
    db: &Arc<Database>,
    products: usize,
) -> (Arc<BaseTable>, CatalogSpec, DocId) {
    let t = db
        .create_table("catalog", &[("doc", ColumnKind::Xml)])
        .expect("table");
    db.create_value_index(
        "catalog",
        "price_idx",
        "doc",
        "/Catalog/Categories/Product/RegPrice",
        rx_xml::value::KeyType::Double,
    )
    .expect("index");
    let spec = CatalogSpec {
        products,
        categories: (products / 100).max(1),
        ..Default::default()
    };
    let doc = db
        .insert_row(&t, &[ColValue::Xml(rx_gen::catalog_xml(&spec))])
        .expect("insert");
    (t, spec, doc)
}

/// A fresh shredded store over its own in-memory space.
pub fn shredded_store() -> (ShreddedStore, NameDict) {
    let pool = BufferPool::new(16_384);
    let space = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).expect("space");
    (
        ShreddedStore::create(space).expect("store"),
        NameDict::new(),
    )
}

/// A fresh LOB store.
pub fn lob_store() -> rx_engine::lob::LobStore {
    let pool = BufferPool::new(16_384);
    let space = TableSpace::create(pool, 1, Arc::new(MemBackend::new())).expect("space");
    rx_engine::lob::LobStore::create(space).expect("store")
}

/// Median wall time of `runs` executions of `f` (plus one discarded warm-up).
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(runs);
    for i in 0..=runs {
        let t = Instant::now();
        f();
        let d = t.elapsed();
        if i > 0 || runs == 1 {
            samples.push(d);
        }
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Pretty-print a duration in stable units for report tables.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

/// Print a markdown-style report table: header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:width$} |", c, width = widths[i]));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    println!("{}", fmt_row(&head));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
    }
    println!("{sep}");
    for r in rows {
        println!("{}", fmt_row(r));
    }
}
