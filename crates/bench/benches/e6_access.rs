//! E6 (§4.3, Table 2): query latency per access method — full scan vs exact
//! DocID list vs filtering vs ANDing/ORing, plus NodeID-granularity access
//! on one large document.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_bench::{load_product_docs, load_single_catalog, mem_db};
use rx_engine::access::{self, AccessPlan};
use rx_xpath::XPathParser;

fn bench_access(c: &mut Criterion) {
    let db = mem_db(3500);
    let (t, _) = load_product_docs(&db, 1500);
    let col = std::sync::Arc::clone(t.xml_column("doc").unwrap());
    let dict = std::sync::Arc::clone(db.dict());

    let cases = [
        (
            "scan",
            "/Catalog/Categories/Product[RegPrice > 450]",
            true,
            false,
        ),
        (
            "docid_exact",
            "/Catalog/Categories/Product[RegPrice > 450]",
            false,
            false,
        ),
        (
            "docid_filtering",
            "/Catalog/Categories/Product[Discount > 0.30]",
            false,
            false,
        ),
        (
            "docid_anding",
            "/Catalog/Categories/Product[RegPrice > 400 and Discount > 0.20]",
            false,
            false,
        ),
        (
            "docid_oring",
            "/Catalog/Categories/Product[RegPrice < 10 or Discount > 0.30]",
            false,
            false,
        ),
    ];
    let mut g = c.benchmark_group("e6a_small_documents");
    g.sample_size(10);
    for (name, q, force_scan, nodeid) in cases {
        let path = XPathParser::new().parse(q).unwrap();
        let plan = if force_scan {
            AccessPlan::FullScan
        } else {
            access::plan(&path, &col, nodeid)
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let (hits, _) = access::execute(&plan, &t, &col, &dict, &path).unwrap();
                std::hint::black_box(hits.len());
            });
        });
    }
    g.finish();

    let db = mem_db(3500);
    let (t, _, _) = load_single_catalog(&db, 5000);
    let col = std::sync::Arc::clone(t.xml_column("doc").unwrap());
    let dict = std::sync::Arc::clone(db.dict());
    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[RegPrice > 495]")
        .unwrap();
    let mut g = c.benchmark_group("e6b_large_document");
    g.sample_size(10);
    g.bench_function("scan", |b| {
        b.iter(|| {
            let (hits, _) = access::execute(&AccessPlan::FullScan, &t, &col, &dict, &path).unwrap();
            std::hint::black_box(hits.len());
        });
    });
    let plan = access::plan(&path, &col, true);
    g.bench_function("nodeid_exact", |b| {
        b.iter(|| {
            let (hits, _) = access::execute(&plan, &t, &col, &dict, &path).unwrap();
            std::hint::black_box(hits.len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
