//! E10: single-operation costs of the de-serialized storage hot path — a
//! group-commit WAL commit, the no-op fast path once an LSN is already
//! durable, and a sharded buffer-pool hit. (The contended throughput runs —
//! many writers sharing fsyncs, many readers spread over shards — live in
//! the `report` binary.)

use criterion::{criterion_group, criterion_main, Criterion};
use rx_storage::wal::{LogRecord, MemLogStore, Wal};
use rx_storage::{BufferPool, MemBackend, PageId, StorageBackend};
use std::sync::Arc;

fn bench_commit_path(c: &mut Criterion) {
    let wal = Wal::new(Arc::new(MemLogStore::new()));

    let mut g = c.benchmark_group("e10_commit_path");
    g.sample_size(20);
    g.bench_function("log_and_wait_durable", |b| {
        let mut txn = 0u64;
        b.iter(|| {
            txn += 1;
            let lsn = wal.log(&LogRecord::Commit { txn }).unwrap();
            wal.wait_durable(lsn).unwrap();
        });
    });
    g.bench_function("wait_durable_already_durable", |b| {
        let lsn = wal.log(&LogRecord::Commit { txn: u64::MAX }).unwrap();
        wal.wait_durable(lsn).unwrap();
        b.iter(|| wal.wait_durable(std::hint::black_box(lsn)).unwrap());
    });
    g.finish();

    let pool = BufferPool::new(256);
    let backend = Arc::new(MemBackend::new());
    backend.ensure_pages(64).unwrap();
    pool.register_space(1, backend);
    // Warm the shard tables so every fetch is a hit.
    for p in 0..64 {
        pool.fetch(PageId::new(1, p)).unwrap();
    }

    let mut g = c.benchmark_group("e10_sharded_pool");
    g.sample_size(20);
    g.bench_function("fetch_hit", |b| {
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 1) % 64;
            std::hint::black_box(pool.fetch(PageId::new(1, p)).unwrap());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_commit_path);
criterion_main!(benches);
