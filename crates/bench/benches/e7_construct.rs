//! E7 (§4.1, Fig. 5): tagging-template constructors vs naive nested
//! evaluation, and XMLAGG ORDER BY via linked-list quicksort vs a work-file
//! external sort.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rx_engine::construct::{
    external_sort_rows, fig5_emp_ctor, naive_construct_string, Constructed, Template, XmlAgg,
};
use rx_xml::{NameDict, Serializer};
use std::sync::Arc;

fn bench_construct(c: &mut Criterion) {
    let dict = NameDict::new();
    let ctor = fig5_emp_ctor();
    let tpl = Template::compile(&ctor, &dict).unwrap();
    let n = 10_000usize;
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                format!("{i}"),
                format!("First{i}"),
                format!("Last{i}"),
                "2005-06-16".to_string(),
                format!("Dept{:03}", (i * 7919) % 500),
            ]
        })
        .collect();

    let mut g = c.benchmark_group("e7a_constructor");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("tagging_template", |b| {
        b.iter(|| {
            let mut ser = Serializer::new(&dict);
            for args in &rows {
                Constructed::new(Arc::clone(&tpl), args.clone())
                    .unwrap()
                    .replay(&mut ser)
                    .unwrap();
            }
            std::hint::black_box(ser.finish().len());
        });
    });
    g.bench_function("naive_nested", |b| {
        b.iter(|| {
            let mut out = String::new();
            for args in &rows {
                out.push_str(&naive_construct_string(&ctor, args));
            }
            std::hint::black_box(out.len());
        });
    });
    g.finish();

    let mut g = c.benchmark_group("e7b_xmlagg_order_by");
    g.sample_size(10);
    g.bench_function("linked_list_quicksort", |b| {
        b.iter(|| {
            let mut agg = XmlAgg::new(Arc::clone(&tpl), Some((4, false)));
            for args in &rows {
                agg.push(args.clone());
            }
            std::hint::black_box(agg.finish().len());
        });
    });
    g.bench_function("external_workfile_sort", |b| {
        b.iter(|| {
            let sorted = external_sort_rows(rows.clone(), 4, 1024);
            let items: Vec<Constructed> = sorted
                .into_iter()
                .map(|args| Constructed::new(Arc::clone(&tpl), args).unwrap())
                .collect();
            std::hint::black_box(items.len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_construct);
criterion_main!(benches);
