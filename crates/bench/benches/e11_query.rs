//! E11: parallel query execution — full-scan latency at 1 vs N worker
//! lanes over the E6 catalog workload, and plan preparation cold vs warm
//! through the plan cache.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_bench::{load_product_docs, mem_db};
use rx_engine::access::{self, AccessPlan};
use rx_engine::executor::{PlanCache, QueryExecutor};
use rx_xpath::{QueryTree, XPathParser};
use std::sync::Arc;

fn bench_parallel_query(c: &mut Criterion) {
    let db = mem_db(3500);
    let (t, _) = load_product_docs(&db, 1500);
    let col = Arc::clone(t.xml_column("doc").unwrap());
    let dict = Arc::clone(db.dict());

    let path = XPathParser::new()
        .parse("/Catalog/Categories/Product[Description]/ProductName")
        .unwrap();
    let tree = Arc::new(QueryTree::compile(&path).unwrap());

    let mut g = c.benchmark_group("e11_full_scan_workers");
    g.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let exec = QueryExecutor::new(workers);
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter(|| {
                let (hits, _) = access::execute_tree(
                    &AccessPlan::FullScan,
                    &t,
                    &col,
                    &dict,
                    &tree,
                    Some(&exec),
                )
                .unwrap();
                std::hint::black_box(hits.len());
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e11_plan_cache");
    g.bench_function("prepare_cold", |b| {
        b.iter(|| {
            std::hint::black_box(access::prepare(None, &t, &col, &path, false).unwrap());
        })
    });
    let cache = PlanCache::new(128);
    access::prepare(Some(&cache), &t, &col, &path, false).unwrap();
    g.bench_function("prepare_warm", |b| {
        b.iter(|| {
            std::hint::black_box(access::prepare(Some(&cache), &t, &col, &path, false).unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parallel_query);
criterion_main!(benches);
