//! E13: the hot-document record cache — repeated document-order traversal
//! of a hot working set, cache off vs cache warm, plus the point-lookup
//! path (`string_value`) that resolves single anchors.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_bench::{load_product_docs, mem_db, mem_db_cached};
use rx_engine::traverse::{IdEventSink, Traverser};
use rx_engine::{DocId, XmlColumn};

const DOCS: usize = 2000;

struct CountSink(u64);
impl IdEventSink for CountSink {
    fn id_event(
        &mut self,
        _id: &rx_xml::NodeId,
        _ev: rx_xml::event::Event<'_>,
    ) -> rx_engine::Result<()> {
        self.0 += 1;
        Ok(())
    }
}

fn traverse_all(col: &XmlColumn) -> u64 {
    let mut events = 0u64;
    for doc in 1..=DOCS as DocId {
        let mut sink = CountSink(0);
        let mut tr = Traverser::new(col.xml_table(), doc);
        tr.run(&mut sink).unwrap();
        events += sink.0;
    }
    events
}

fn bench_doccache(c: &mut Criterion) {
    let db_off = mem_db(512);
    let db_on = mem_db_cached(512, 8 << 20);
    let (t_off, _) = load_product_docs(&db_off, DOCS);
    let (t_on, _) = load_product_docs(&db_on, DOCS);
    let col_off = t_off.xml_column("doc").unwrap();
    let col_on = t_on.xml_column("doc").unwrap();
    // Populate once so the "warm" benchmark measures hits, not read-through.
    std::hint::black_box(traverse_all(col_on));

    let mut g = c.benchmark_group("e13_traverse_hot_set");
    g.sample_size(20);
    g.bench_function("cache_off", |b| {
        b.iter(|| std::hint::black_box(traverse_all(col_off)))
    });
    g.bench_function("cache_warm", |b| {
        b.iter(|| std::hint::black_box(traverse_all(col_on)))
    });
    g.finish();

    // Point lookups: resolve the root anchor of each document and read its
    // string value — one ceiling probe + fetch cold, one binary search warm.
    let point_all = |col: &XmlColumn| {
        let mut total = 0usize;
        for doc in 1..=DOCS as DocId {
            let root = rx_xml::NodeId::root().child(&rx_xml::RelId::first());
            total += rx_engine::traverse::string_value(col.xml_table(), doc, &root)
                .unwrap()
                .len();
        }
        total
    };
    let mut g = c.benchmark_group("e13_point_lookup");
    g.sample_size(20);
    g.bench_function("cache_off", |b| {
        b.iter(|| std::hint::black_box(point_all(col_off)))
    });
    g.bench_function("cache_warm", |b| {
        b.iter(|| std::hint::black_box(point_all(col_on)))
    });
    g.finish();
}

criterion_group!(benches, bench_doccache);
criterion_main!(benches);
