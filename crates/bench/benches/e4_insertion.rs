//! E4 (§3.2): parsing/validation interface cost — buffered token stream vs
//! per-event SAX callbacks vs DOM construction vs the table-driven
//! validating parse.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rx_gen::{catalog_xml, CatalogSpec};
use rx_xml::dom::DomTree;
use rx_xml::sax::{parse_sax, SaxAttribute, SaxHandler};
use rx_xml::schema::{compile, parse_xsd, validate_to_tokens, SchemaProgram};
use rx_xml::{NameDict, Parser};

struct Count(u64);
impl SaxHandler for Count {
    fn start_element(
        &mut self,
        _u: &str,
        _l: &str,
        _q: &str,
        attrs: &[SaxAttribute],
    ) -> rx_xml::Result<()> {
        self.0 += 1 + attrs.len() as u64;
        Ok(())
    }
    fn characters(&mut self, t: &str) -> rx_xml::Result<()> {
        self.0 += t.len() as u64;
        Ok(())
    }
}

fn schema() -> SchemaProgram {
    let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="Catalog"><xs:complexType><xs:sequence>
    <xs:element name="Categories" maxOccurs="unbounded"><xs:complexType><xs:sequence>
      <xs:element name="Product" minOccurs="0" maxOccurs="unbounded"><xs:complexType><xs:sequence>
        <xs:element name="ProductName" type="xs:string"/>
        <xs:element name="RegPrice" type="xs:decimal"/>
        <xs:element name="Discount" type="xs:double"/>
        <xs:element name="Added" type="xs:date"/>
        <xs:element name="Description" type="xs:string"/>
      </xs:sequence><xs:attribute name="id" type="xs:integer"/></xs:complexType></xs:element>
    </xs:sequence><xs:attribute name="id" type="xs:integer"/></xs:complexType></xs:element>
  </xs:sequence></xs:complexType></xs:element>
</xs:schema>"#;
    SchemaProgram::load(&compile(&parse_xsd(xsd).unwrap()).unwrap()).unwrap()
}

fn bench_insertion(c: &mut Criterion) {
    let doc = catalog_xml(&CatalogSpec {
        products: 500,
        categories: 5,
        description_len: 48,
        ..Default::default()
    });
    let dict = NameDict::new();
    Parser::new(&dict).parse_to_tokens(&doc).unwrap(); // warm dictionary
    let program = schema();

    let mut g = c.benchmark_group("e4_parsing_interfaces");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(doc.len() as u64));
    g.bench_function("token_stream", |b| {
        b.iter(|| std::hint::black_box(Parser::new(&dict).parse_to_tokens(&doc).unwrap()));
    });
    g.bench_function("validating_parse", |b| {
        b.iter(|| std::hint::black_box(validate_to_tokens(&doc, &program, &dict).unwrap()));
    });
    g.bench_function("sax_callbacks", |b| {
        b.iter(|| {
            let mut h = Count(0);
            parse_sax(&doc, &dict, &mut h).unwrap();
            std::hint::black_box(h.0);
        });
    });
    g.bench_function("dom_construction", |b| {
        b.iter(|| std::hint::black_box(DomTree::parse(&doc, &dict).unwrap().len()));
    });
    g.finish();
}

criterion_group!(benches, bench_insertion);
criterion_main!(benches);
