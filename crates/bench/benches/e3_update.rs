//! E3 (§3.1 update analysis): single-text-node update cost — packed record
//! rewrite (~p·n bytes) vs one-row rewrite (n bytes) vs LOB whole-document
//! rewrite.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_bench::{lob_store, mem_db, shredded_store};
use rx_engine::db::{ColValue, ColumnKind};
use rx_engine::{access, update};
use rx_gen::{catalog_xml, CatalogSpec};
use rx_xml::Parser;
use rx_xpath::XPathParser;

fn bench_update(c: &mut Criterion) {
    let doc = catalog_xml(&CatalogSpec {
        products: 100,
        categories: 1,
        description_len: 48,
        ..Default::default()
    });

    let mut g = c.benchmark_group("e3_single_node_update");
    g.sample_size(30);

    let db = mem_db(3500);
    let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
    db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
    let col = std::sync::Arc::clone(t.xml_column("doc").unwrap());
    // ProductName text of the first product, located by query (node IDs
    // shift with attributes, so never hardcode them).
    let target = {
        let path = XPathParser::new()
            .parse("/Catalog/Categories/Product/ProductName/text()")
            .unwrap();
        let (hits, _) =
            access::execute(&access::AccessPlan::FullScan, &t, &col, db.dict(), &path).unwrap();
        hits[0].node.clone().unwrap()
    };
    let mut i = 0u64;
    g.bench_function("packed", |b| {
        b.iter(|| {
            i += 1;
            let txn = db.begin().unwrap();
            update::replace_value(&txn, col.xml_table(), 1, &target, &format!("name-{i}")).unwrap();
            txn.commit().unwrap();
        });
    });

    let (shred, dict) = shredded_store();
    shred
        .insert_document(1, |sink| {
            Parser::new(&dict).parse(&doc, sink).map_err(Into::into)
        })
        .unwrap();
    g.bench_function("one_node_per_row", |b| {
        b.iter(|| {
            i += 1;
            shred
                .update_value(1, &target, &format!("name-{i}"))
                .unwrap();
        });
    });

    let lob = lob_store();
    lob.insert(1, &doc).unwrap();
    g.bench_function("lob_rewrite", |b| {
        b.iter(|| {
            i += 1;
            lob.update_via_rewrite(1, |text| {
                Ok(text.replacen("Product-", &format!("Ren{:03}-", i % 1000), 1))
            })
            .unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
