//! E8 (§4.4, Fig. 8): pipelined virtual-SAX processing vs materializing a
//! unified in-memory tree for the same parse → XPath → serialize task.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_xml::dom::DomTree;
use rx_xml::NameDict;
use rx_xpath::baseline::DomXPath;
use rx_xpath::quickxscan::scan_str;
use rx_xpath::{QueryTree, XPathParser};

fn bench_runtime(c: &mut Criterion) {
    let dict = NameDict::new();
    let doc = rx_gen::sized_tree(50_000, 4, 16, 7);
    let path = XPathParser::new().parse("//item[entry]/leaf").unwrap();
    let tree = QueryTree::compile(&path).unwrap();

    let mut g = c.benchmark_group("e8_pipeline_vs_materialize");
    g.sample_size(10);
    g.bench_function("pipelined_virtual_sax", |b| {
        b.iter(|| {
            let (items, _) = scan_str(&tree, &dict, &doc).unwrap();
            let mut out = String::new();
            for i in &items {
                out.push_str(&i.value);
            }
            std::hint::black_box(out.len());
        });
    });
    g.bench_function("materialize_dom_then_eval", |b| {
        b.iter(|| {
            let dom = DomTree::parse(&doc, &dict).unwrap();
            let values = DomXPath::new(&tree, &dict).eval(&dom);
            let mut out = String::new();
            for v in &values {
                out.push_str(v);
            }
            std::hint::black_box(out.len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
