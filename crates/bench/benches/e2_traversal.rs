//! E2 (§3.1 traversal analysis): full document-order traversal of a stored
//! document — packed records at several packing factors vs the per-node-join
//! traversal of the shredded baseline. The paper predicts a ≈1/p time ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rx_bench::{mem_db, shredded_store};
use rx_engine::db::{ColValue, ColumnKind};
use rx_engine::traverse::{DropIds, Traverser};
use rx_gen::{catalog_xml, CatalogSpec};
use rx_xml::{Parser, Serializer};

fn bench_traversal(c: &mut Criterion) {
    let doc = catalog_xml(&CatalogSpec {
        products: 500,
        categories: 5,
        description_len: 48,
        ..Default::default()
    });
    let mut g = c.benchmark_group("e2_traversal");
    g.sample_size(20);
    for target in [512usize, 3500] {
        let db = mem_db(target);
        let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
        db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
        let col = std::sync::Arc::clone(t.xml_column("doc").unwrap());
        let dict = std::sync::Arc::clone(db.dict());
        g.bench_with_input(BenchmarkId::new("packed", target), &target, |b, _| {
            b.iter(|| {
                let mut ser = Serializer::new(&dict);
                let mut sink = DropIds(&mut ser);
                Traverser::new(col.xml_table(), 1).run(&mut sink).unwrap();
                std::hint::black_box(ser.finish().len());
            });
        });
    }
    let (shred, dict) = shredded_store();
    shred
        .insert_document(1, |sink| {
            Parser::new(&dict).parse(&doc, sink).map_err(Into::into)
        })
        .unwrap();
    g.bench_function("one_node_per_row", |b| {
        b.iter(|| {
            let mut ser = Serializer::new(&dict);
            shred.traverse(1, &mut ser).unwrap();
            std::hint::black_box(ser.finish().len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
