//! E1 (§3.1 storage analysis): document load cost under the packed scheme at
//! several packing factors vs the one-node-per-row baseline. The *size*
//! columns of E1 are printed by the `report` binary; this bench measures the
//! time to build each representation (parse + store + index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rx_bench::{mem_db, shredded_store};
use rx_engine::db::{ColValue, ColumnKind};
use rx_gen::{catalog_xml, CatalogSpec};
use rx_xml::Parser;

fn bench_storage(c: &mut Criterion) {
    let doc = catalog_xml(&CatalogSpec {
        products: 500,
        categories: 5,
        description_len: 48,
        ..Default::default()
    });
    let mut g = c.benchmark_group("e1_storage_load");
    g.sample_size(10);
    for target in [512usize, 1024, 3500] {
        g.bench_with_input(BenchmarkId::new("packed", target), &target, |b, &target| {
            b.iter(|| {
                let db = mem_db(target);
                let t = db.create_table("t", &[("doc", ColumnKind::Xml)]).unwrap();
                db.insert_row(&t, &[ColValue::Xml(doc.clone())]).unwrap();
            });
        });
    }
    g.bench_function("one_node_per_row", |b| {
        b.iter(|| {
            let (shred, dict) = shredded_store();
            shred
                .insert_document(1, |sink| {
                    Parser::new(&dict).parse(&doc, sink).map_err(Into::into)
                })
                .unwrap();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
