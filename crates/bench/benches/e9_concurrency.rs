//! E9 (§5): single-operation costs of the two reader schemes — taking a
//! document S lock vs opening an MVCC snapshot — plus version-commit cost.
//! (The contended-throughput comparison runs in the `report` binary, where a
//! live writer competes with readers.)

use criterion::{criterion_group, criterion_main, Criterion};
use rx_engine::conc;
use rx_engine::db::{ColValue, ColumnKind, Database};
use rx_engine::mvcc::{pack_for_mvcc, MvccXmlStore};
use rx_storage::{BufferPool, MemBackend, TableSpace};
use rx_xml::{NameDict, NodeId};
use std::sync::Arc;

fn bench_concurrency(c: &mut Criterion) {
    let db = Database::create_in_memory().unwrap();
    let t = db.create_table("o", &[("doc", ColumnKind::Xml)]).unwrap();
    let doc = db
        .insert_row(&t, &[ColValue::Xml(rx_gen::order_doc(1, 8))])
        .unwrap();
    let table_id = t.def.id;

    let pool = BufferPool::new(4096);
    let space = TableSpace::create(pool, 9, Arc::new(MemBackend::new())).unwrap();
    let store = MvccXmlStore::create(space).unwrap();
    let dict = NameDict::new();
    let recs = pack_for_mvcc(&rx_gen::order_doc(1, 8), &dict, 3500).unwrap();
    store.commit_version(1, &recs, &[]).unwrap();
    let root = NodeId::from_bytes(&[0x02]).unwrap();

    let mut g = c.benchmark_group("e9_reader_paths");
    g.sample_size(20);
    g.bench_function("lock_based_read", |b| {
        b.iter(|| {
            let txn = db.begin().unwrap();
            conc::lock_document_shared(&txn, table_id, doc).unwrap();
            std::hint::black_box(db.serialize_document(&t, "doc", doc).unwrap().len());
            txn.commit().unwrap();
        });
    });
    g.bench_function("mvcc_snapshot_read", |b| {
        b.iter(|| {
            let snap = store.snapshot();
            let rid = store.locate(1, &root, snap).unwrap().unwrap();
            std::hint::black_box(store.fetch(rid).unwrap().len());
            store.close_snapshot(snap);
        });
    });
    g.bench_function("mvcc_version_commit", |b| {
        b.iter(|| {
            store.commit_version(1, &recs, &[]).unwrap();
        });
    });
    g.finish();
    let _ = store.gc();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
