//! E5 (§4.2): QuickXScan — linearity in |D|, evaluation-only cost vs the
//! DOM baseline, and the Fig. 7 recursive-document workload where the naive
//! per-instance matcher's state blows up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rx_xml::dom::DomTree;
use rx_xml::{NameDict, Parser};
use rx_xpath::baseline::{DomXPath, NaiveStreamMatcher};
use rx_xpath::quickxscan::scan_str;
use rx_xpath::{QueryTree, QuickXScan, XPathParser};

fn bench_quickxscan(c: &mut Criterion) {
    let dict = NameDict::new();
    let path = XPathParser::new().parse("//item[entry]/leaf").unwrap();
    let tree = QueryTree::compile(&path).unwrap();

    // Linearity: time per size.
    let mut g = c.benchmark_group("e5a_linearity");
    g.sample_size(10);
    for nodes in [10_000usize, 40_000, 160_000] {
        let doc = rx_gen::sized_tree(nodes, 4, 16, 7);
        g.throughput(Throughput::Elements(nodes as u64));
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &doc, |b, doc| {
            b.iter(|| std::hint::black_box(scan_str(&tree, &dict, doc).unwrap().0.len()));
        });
    }
    g.finish();

    // Evaluation-only: QuickXScan over a prebuilt token stream vs DOM eval
    // over a prebuilt tree.
    let doc = rx_gen::sized_tree(100_000, 4, 16, 7);
    let tokens = Parser::new(&dict).parse_to_tokens(&doc).unwrap();
    let dom = DomTree::parse(&doc, &dict).unwrap();
    let mut g = c.benchmark_group("e5c_eval_only");
    g.sample_size(10);
    g.bench_function("quickxscan_over_tokens", |b| {
        b.iter(|| {
            let mut scan = QuickXScan::new(&tree, &dict);
            tokens.replay(&mut scan).unwrap();
            std::hint::black_box(scan.finish().unwrap().len());
        });
    });
    g.bench_function("dom_eval", |b| {
        b.iter(|| std::hint::black_box(DomXPath::new(&tree, &dict).eval(&dom).len()));
    });
    g.finish();

    // Fig. 7 recursion workload.
    let p3 = XPathParser::new().parse("//a//a//a").unwrap();
    let t3 = QueryTree::compile(&p3).unwrap();
    let mut g = c.benchmark_group("e5b_recursion_r32");
    g.sample_size(20);
    let rec = rx_gen::recursive_doc("a", 32, "x");
    g.bench_function("quickxscan", |b| {
        b.iter(|| std::hint::black_box(scan_str(&t3, &dict, &rec).unwrap().0.len()));
    });
    g.bench_function("naive_matcher", |b| {
        b.iter(|| {
            let mut m = NaiveStreamMatcher::new(&t3, &dict).unwrap();
            Parser::new(&dict).parse(&rec, &mut m).unwrap();
            std::hint::black_box(m.finish().0.len());
        });
    });
    g.finish();
}

criterion_group!(benches, bench_quickxscan);
criterion_main!(benches);
