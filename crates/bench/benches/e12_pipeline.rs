//! E12: protocol v2 pipelining — queries and latency-bound requests over
//! one loopback TCP connection, lockstep v1 vs multiplexed v2 sessions.

use criterion::{criterion_group, criterion_main, Criterion};
use rx_bench::{load_product_docs, mem_db};
use rx_server::{connect_tcp_multiplexed, connect_tcp_v1, ConnectOptions, Server, ServerConfig};
use std::time::Duration;

fn bench_pipelining(c: &mut Criterion) {
    let db = mem_db(3500);
    let (_t, _spec) = load_product_docs(&db, 200);
    let server = Server::start(
        db,
        ServerConfig {
            workers: 8,
            queue_depth: 256,
            idle_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    );
    let addr = server.listen(("127.0.0.1", 0)).expect("bind");
    let q = "/Catalog/Categories/Product[Description]/ProductName";
    const BATCH: usize = 32;
    const SESSIONS: usize = 8;

    let mut g = c.benchmark_group("e12_query_batch");
    g.sample_size(10);
    let mut lockstep = connect_tcp_v1(addr).expect("v1 client");
    g.bench_function("lockstep_v1", |b| {
        b.iter(|| {
            for _ in 0..BATCH {
                std::hint::black_box(lockstep.query("products", "doc", q).unwrap().len());
            }
        })
    });
    let conn = connect_tcp_multiplexed(addr, ConnectOptions::default()).expect("mux");
    g.bench_function("pipelined_v2_8_sessions", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..SESSIONS)
                .map(|_| {
                    let mut s = conn.session();
                    std::thread::spawn(move || {
                        for _ in 0..BATCH / SESSIONS {
                            std::hint::black_box(s.query("products", "doc", q).unwrap().len());
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();

    let mut g = c.benchmark_group("e12_latency_bound");
    g.sample_size(10);
    g.bench_function("lockstep_v1_8x2ms", |b| {
        b.iter(|| {
            for _ in 0..8 {
                lockstep.sleep_ms(2).unwrap();
            }
        })
    });
    g.bench_function("pipelined_v2_8x2ms", |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let mut s = conn.session();
                    std::thread::spawn(move || s.sleep_ms(2).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
    });
    g.finish();

    server.shutdown();
}

criterion_group!(benches, bench_pipelining);
criterion_main!(benches);
