//! Engine-level errors.

use std::fmt;

/// Result alias for the engine crate.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by the System R/X engine.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-descriptive
pub enum EngineError {
    /// Underlying storage-layer failure.
    Storage(rx_storage::StorageError),
    /// XML parsing / validation / data-model failure.
    Xml(rx_xml::XmlError),
    /// XPath compilation or evaluation failure.
    XPath(rx_xpath::XPathError),
    /// A named object (table, column, index, schema) was not found.
    NotFound { kind: &'static str, name: String },
    /// An object with this name already exists.
    AlreadyExists { kind: &'static str, name: String },
    /// A packed record is structurally invalid.
    Record(String),
    /// Invalid argument or unsupported operation.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Xml(e) => write!(f, "xml: {e}"),
            EngineError::XPath(e) => write!(f, "xpath: {e}"),
            EngineError::NotFound { kind, name } => write!(f, "{kind} {name:?} not found"),
            EngineError::AlreadyExists { kind, name } => {
                write!(f, "{kind} {name:?} already exists")
            }
            EngineError::Record(m) => write!(f, "packed record: {m}"),
            EngineError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Xml(e) => Some(e),
            EngineError::XPath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rx_storage::StorageError> for EngineError {
    fn from(e: rx_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<rx_xml::XmlError> for EngineError {
    fn from(e: rx_xml::XmlError) -> Self {
        EngineError::Xml(e)
    }
}

impl From<rx_xpath::XPathError> for EngineError {
    fn from(e: rx_xpath::XPathError) -> Self {
        EngineError::XPath(e)
    }
}
