//! The hot-document record cache: versioned read-through caching above the
//! buffer pool.
//!
//! The paper's analytic evaluation (§3.4) prices query cost in *records
//! fetched* and *NodeID-index probes*; both are paid again on every query
//! even when back-to-back queries evaluate the same documents. This cache
//! keeps a document's packed records — shareable `Arc<[u8]>` row images
//! plus their parsed [`RecordHeader`]s and the sorted interval-upper table —
//! so a cached traversal does **zero** heap fetches and **zero** NodeID
//! probes: `locate` becomes an in-memory binary search over the uppers.
//!
//! ## Invalidation protocol
//!
//! Every committed mutation of a document bumps that document's *epoch*;
//! cache entries remember the epoch they were built against and are
//! validated at lookup. The full protocol (see DESIGN.md §11):
//!
//! * **touch** (first mutation of `(txn, space, doc)`): evict the entry and
//!   bump the epoch *immediately*, under the shard lock. The writer itself
//!   must not be served the pre-image (its own index re-derivation needs to
//!   see its uncommitted writes), and any reader snapshot captured before
//!   the touch must fail to publish afterwards.
//! * **commit** (txn outcome hook, after the commit record is durable and
//!   locks are released): bump the epoch again and retire the writer
//!   registration. Rollback only retires the registration — epochs are left
//!   as the touch set them, and since the touch already evicted the entry,
//!   no stale pre-image can survive either outcome.
//! * **publish** (read-through): a reader captures a token *before* building
//!   a snapshot and the insert succeeds only if the shard generation and the
//!   document's `(epoch, writers)` state are unchanged — so a snapshot that
//!   might interleave with a writer is silently discarded, and uncommitted
//!   data never enters the cache.
//!
//! Under the §5.1 locking protocol readers hold S locks on every candidate
//! document while evaluating, so a successful publish there always caches
//! exactly the committed state. The unlocked read path gets the same
//! guarantee from the token check alone: any writer active during the build
//! window fails the publish.
//!
//! The cache is memory-bounded (`DbConfig::doc_cache_bytes`) with a sharded
//! tick-LRU, mirroring the buffer pool's sharding so concurrent query lanes
//! do not serialize on one mutex.

use crate::error::Result;
use crate::pack::{read_header, RecordHeader};
use crate::traverse::TraverseStats;
use crate::xmltable::{DocId, XmlTable};
use parking_lot::Mutex;
use rx_storage::codec::Dec;
use rx_storage::{Rid, Txn, TxnId};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lock stripes. Keyed by `(space, doc)` hash; matches the spirit of the
/// buffer pool's sharding without making the budget check global.
const SHARDS: usize = 8;

/// Cheap multiplicative hasher for the fixed-width `(space, doc)` keys. A
/// warm lookup hashes three times (shard pick + two map probes); SipHash is
/// a measurable fraction of the whole hit path for keys this small.
#[derive(Default)]
struct KeyHasher(u64);

impl Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }
}

type KeyMap<V> = HashMap<(u32, DocId), V, std::hash::BuildHasherDefault<KeyHasher>>;

/// One heap row loaded into shareable form: the row image (a single copy out
/// of the latched page), the byte range of its XMLData payload, and the
/// parsed record header. Cloning is three pointer copies — cached and cold
/// traversals share this representation.
#[derive(Clone)]
pub struct LoadedRecord {
    row: Arc<[u8]>,
    data: Range<usize>,
    header: Arc<RecordHeader>,
}

impl LoadedRecord {
    /// Decode a fetched XML-table row image.
    pub fn decode(row: Arc<[u8]>) -> Result<LoadedRecord> {
        let data = row_data_range(&row)?;
        let header = Arc::new(read_header(&row[data.clone()])?);
        Ok(LoadedRecord { row, data, header })
    }

    /// The parsed record header.
    pub fn header(&self) -> &RecordHeader {
        &self.header
    }

    /// The packed node region (XMLData past the header).
    pub fn region(&self) -> &[u8] {
        &self.row[self.data.start + self.header.body_offset..self.data.end]
    }

    /// Resident size of the shared row image.
    fn cost(&self) -> usize {
        self.row.len() + std::mem::size_of::<RecordHeader>() + 64
    }
}

/// An immutable snapshot of one document's stored form: its records plus the
/// NodeID-index interval table, both loaded once. `locate` replaces a B+tree
/// ceiling probe + heap fetch with a binary search + `Arc` clone.
pub struct CachedDoc {
    records: Vec<LoadedRecord>,
    /// `(interval upper endpoint bytes, index into records)`, ascending —
    /// exactly the document's NodeID-index entries at build time.
    uppers: Vec<(Box<[u8]>, u32)>,
    bytes: usize,
}

impl CachedDoc {
    /// Build a snapshot of `doc` from the XML table: one prefix scan of the
    /// NodeID index plus one `fetch_arc` per distinct record. Returns `None`
    /// for a document with no records. The caller accounts the scan and the
    /// fetches in `stats` exactly as a cold traversal would.
    pub fn build(xml: &XmlTable, doc: DocId, stats: &mut TraverseStats) -> Result<Option<Self>> {
        let mut pairs: Vec<(Box<[u8]>, Rid)> = Vec::new();
        stats.index_probes += 1;
        xml.nodeid_index().scan_prefix(&doc.to_be_bytes(), |k, v| {
            pairs.push((k[8..].to_vec().into_boxed_slice(), Rid::from_u64(v)));
            true
        })?;
        if pairs.is_empty() {
            return Ok(None);
        }
        let mut by_rid: HashMap<Rid, u32> = HashMap::new();
        let mut records = Vec::new();
        let mut uppers = Vec::with_capacity(pairs.len());
        let mut bytes = 0usize;
        for (upper, rid) in pairs {
            let idx = match by_rid.get(&rid) {
                Some(i) => *i,
                None => {
                    stats.records_fetched += 1;
                    let rec = LoadedRecord::decode(xml.heap().fetch_arc(rid)?)?;
                    bytes += rec.cost() + 32;
                    let i = records.len() as u32;
                    records.push(rec);
                    by_rid.insert(rid, i);
                    i
                }
            };
            bytes += upper.len() + 16;
            uppers.push((upper, idx));
        }
        Ok(Some(CachedDoc {
            records,
            uppers,
            bytes,
        }))
    }

    /// The in-memory equivalent of the NodeID index's ceiling probe: the
    /// record owning the first interval upper at-or-above `node_bytes`.
    pub fn locate(&self, node_bytes: &[u8]) -> Option<&LoadedRecord> {
        let i = self
            .uppers
            .partition_point(|(u, _)| u.as_ref() < node_bytes);
        self.uppers
            .get(i)
            .map(|(_, idx)| &self.records[*idx as usize])
    }

    /// Resident bytes of this snapshot.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of distinct records held.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

/// Per-document version state, present only while writers are registered.
/// Absent state reads as `(epoch 0, writers 0)`; the shard generation guards
/// tokens across state removal (see [`DocCache::publish`]).
#[derive(Default)]
struct DocState {
    epoch: u64,
    writers: u32,
}

struct Entry {
    doc: Arc<CachedDoc>,
    epoch: u64,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    entries: KeyMap<Entry>,
    states: KeyMap<DocState>,
    bytes: usize,
    tick: u64,
    /// Bumped whenever version state is discarded (writer retirement, space
    /// invalidation): outstanding publish tokens from before the bump are
    /// rejected, closing the captured-before-state-GC race.
    gen: u64,
}

/// A capture token: publish succeeds only if the shard generation and the
/// document's `(epoch, writers = 0)` state still match.
pub struct PublishToken {
    space: u32,
    doc: DocId,
    gen: u64,
    epoch: u64,
}

/// The sharded, memory-bounded document record cache. One instance per
/// [`crate::db::Database`], shared by every XML column (keyed by table-space
/// id, which is unique per column and never reused).
pub struct DocCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count); 0 disables.
    shard_budget: usize,
    /// In-flight `(txn, space, doc)` touch registrations, deduplicating the
    /// epoch bump so one transaction's many record edits count once.
    pending: Mutex<HashSet<(TxnId, u32, DocId)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DocCache {
    /// Create a cache with a total byte budget. 0 disables caching entirely
    /// (every call short-circuits).
    pub fn new(budget_bytes: usize) -> Arc<DocCache> {
        let shard_budget = if budget_bytes == 0 {
            0
        } else {
            (budget_bytes / SHARDS).max(1)
        };
        Arc::new(DocCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget,
            pending: Mutex::new(HashSet::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// True when a non-zero budget was configured.
    pub fn enabled(&self) -> bool {
        self.shard_budget > 0
    }

    fn shard(&self, space: u32, doc: DocId) -> &Mutex<Shard> {
        let mut h = KeyHasher::default();
        (space, doc).hash(&mut h);
        // Take high bits: the multiplicative mix pushes entropy upward.
        &self.shards[(h.finish() >> 56) as usize % SHARDS]
    }

    /// Look up a document snapshot, validating it against the current epoch.
    pub fn get(&self, space: u32, doc: DocId) -> Option<Arc<CachedDoc>> {
        if !self.enabled() {
            return None;
        }
        let key = (space, doc);
        let mut s = self.shard(space, doc).lock();
        s.tick += 1;
        let tick = s.tick;
        // `states` holds entries only while writers are registered; skip the
        // probe entirely in the read-mostly common case.
        let (epoch, writers) = if s.states.is_empty() {
            (0, 0)
        } else {
            s.states
                .get(&key)
                .map_or((0, 0), |st| (st.epoch, st.writers))
        };
        if let Some(e) = s.entries.get_mut(&key) {
            if e.epoch == epoch && writers == 0 {
                e.tick = tick;
                let doc = Arc::clone(&e.doc);
                drop(s);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(doc);
            }
            // Stale (a touch raced in): drop it.
            let e = s.entries.remove(&key).expect("entry just seen");
            s.bytes -= e.doc.bytes();
        }
        drop(s);
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Capture a publish token *before* building a snapshot. `None` when a
    /// writer is registered on the document (an uncommitted mutation may be
    /// visible to the build) or the cache is disabled.
    pub fn begin_publish(&self, space: u32, doc: DocId) -> Option<PublishToken> {
        if !self.enabled() {
            return None;
        }
        let s = self.shard(space, doc).lock();
        let (epoch, writers) = s
            .states
            .get(&(space, doc))
            .map_or((0, 0), |st| (st.epoch, st.writers));
        if writers > 0 {
            return None;
        }
        Some(PublishToken {
            space,
            doc,
            gen: s.gen,
            epoch,
        })
    }

    /// Install a snapshot built under `token`. Fails (returning `false` and
    /// discarding the snapshot) if any writer touched the document — or any
    /// state was discarded in the shard — since the capture.
    pub fn publish(&self, token: PublishToken, snapshot: Arc<CachedDoc>) -> bool {
        let key = (token.space, token.doc);
        let mut s = self.shard(token.space, token.doc).lock();
        if s.gen != token.gen {
            return false;
        }
        let (epoch, writers) = s
            .states
            .get(&key)
            .map_or((0, 0), |st| (st.epoch, st.writers));
        if epoch != token.epoch || writers > 0 {
            return false;
        }
        s.tick += 1;
        let tick = s.tick;
        let added = snapshot.bytes();
        if let Some(old) = s.entries.insert(
            key,
            Entry {
                doc: snapshot,
                epoch,
                tick,
            },
        ) {
            s.bytes -= old.doc.bytes();
        }
        s.bytes += added;
        // Enforce the budget: evict least-recently-used entries until under;
        // the just-inserted entry holds the newest tick, so it is evicted
        // only if it alone exceeds the shard budget.
        while s.bytes > self.shard_budget {
            let victim = s
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    let e = s.entries.remove(&k).expect("victim present");
                    s.bytes -= e.doc.bytes();
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        true
    }

    /// Register a mutation of `doc` by `txn`: evict the entry, bump the
    /// epoch, count a writer, and arm a transaction outcome hook that bumps
    /// the epoch again on commit (rollback leaves it as touched). Idempotent
    /// per `(txn, space, doc)`.
    pub fn touch(self: &Arc<Self>, txn: &Txn, space: u32, doc: DocId) {
        if !self.enabled() {
            return;
        }
        if !self.pending.lock().insert((txn.id(), space, doc)) {
            return; // this transaction already touched this document
        }
        {
            let mut s = self.shard(space, doc).lock();
            if let Some(e) = s.entries.remove(&(space, doc)) {
                s.bytes -= e.doc.bytes();
            }
            let st = s.states.entry((space, doc)).or_default();
            st.epoch += 1;
            st.writers += 1;
        }
        let cache = Arc::clone(self);
        let id = txn.id();
        txn.push_hook(Box::new(move |committed| {
            cache.finish_touch(id, space, doc, committed);
        }));
    }

    fn finish_touch(&self, txn: TxnId, space: u32, doc: DocId, committed: bool) {
        self.pending.lock().remove(&(txn, space, doc));
        let mut s = self.shard(space, doc).lock();
        if let Some(st) = s.states.get_mut(&(space, doc)) {
            if committed {
                st.epoch += 1;
            }
            st.writers = st.writers.saturating_sub(1);
            if st.writers == 0 {
                // Retire the state; the generation bump invalidates any
                // token captured while it existed.
                s.states.remove(&(space, doc));
                s.gen += 1;
            }
        }
    }

    /// Drop every entry and state of one table space (`drop_table`).
    pub fn invalidate_space(&self, space: u32) {
        if !self.enabled() {
            return;
        }
        for shard in &self.shards {
            let mut s = shard.lock();
            let doomed: Vec<(u32, DocId)> = s
                .entries
                .keys()
                .filter(|(sp, _)| *sp == space)
                .copied()
                .collect();
            for k in doomed {
                let e = s.entries.remove(&k).expect("key just listed");
                s.bytes -= e.doc.bytes();
            }
            let had_states = s.states.keys().any(|(sp, _)| *sp == space);
            s.states.retain(|(sp, _), _| *sp != space);
            if had_states {
                s.gen += 1;
            }
        }
        self.pending.lock().retain(|(_, sp, _)| *sp != space);
    }

    /// Snapshot lookups that found a valid entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Snapshot lookups that found nothing (or a stale entry).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes currently resident across all shards.
    pub fn resident_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().bytes as u64).sum()
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Decode just the XMLData byte range of an encoded XML-table row (the
/// zero-copy complement of [`crate::xmltable::decode_row`]).
pub(crate) fn row_data_range(rec: &[u8]) -> Result<Range<usize>> {
    let mut d = Dec::new(rec);
    d.u64()?; // doc
    d.bytes()?; // min_node
    let len = d.varint()? as usize;
    let start = d.pos();
    if start + len > rec.len() {
        return Err(crate::error::EngineError::Record(
            "row data range past end of record".into(),
        ));
    }
    Ok(start..start + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{LockManager, TxnManager};

    fn cache(budget: usize) -> Arc<DocCache> {
        DocCache::new(budget)
    }

    fn snapshot(bytes: usize) -> Arc<CachedDoc> {
        Arc::new(CachedDoc {
            records: Vec::new(),
            uppers: Vec::new(),
            bytes,
        })
    }

    fn txns() -> Arc<TxnManager> {
        TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::with_defaults(),
        )
    }

    #[test]
    fn disabled_cache_is_inert() {
        let c = cache(0);
        assert!(!c.enabled());
        assert!(c.begin_publish(1, 1).is_none());
        assert!(c.get(1, 1).is_none());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn publish_then_get_hits() {
        let c = cache(1 << 20);
        assert!(c.get(1, 7).is_none());
        let t = c.begin_publish(1, 7).unwrap();
        assert!(c.publish(t, snapshot(100)));
        assert!(c.get(1, 7).is_some());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.resident_bytes(), 100);
    }

    #[test]
    fn touch_evicts_and_blocks_publish() {
        let c = cache(1 << 20);
        let mgr = txns();
        let t = c.begin_publish(1, 7).unwrap();
        assert!(c.publish(t, snapshot(100)));
        // A token captured before the touch must fail after it.
        let stale = c.begin_publish(1, 7).unwrap();
        let txn = mgr.begin().unwrap();
        c.touch(&txn, 1, 7);
        assert!(c.get(1, 7).is_none(), "touch evicts immediately");
        assert!(!c.publish(stale, snapshot(50)), "stale token rejected");
        // While the writer is open, no capture is possible.
        assert!(c.begin_publish(1, 7).is_none());
        txn.commit().unwrap();
        // After commit the document is publishable again.
        let t2 = c.begin_publish(1, 7).unwrap();
        assert!(c.publish(t2, snapshot(60)));
        assert!(c.get(1, 7).is_some());
    }

    #[test]
    fn token_across_whole_writer_lifetime_is_rejected() {
        // Capture, then a writer starts AND finishes, then publish: the
        // generation bump at writer retirement must reject the token even
        // though the epoch state was garbage-collected back to "absent".
        let c = cache(1 << 20);
        let mgr = txns();
        let stale = c.begin_publish(1, 7).unwrap();
        let txn = mgr.begin().unwrap();
        c.touch(&txn, 1, 7);
        txn.commit().unwrap();
        assert!(!c.publish(stale, snapshot(50)));
    }

    #[test]
    fn rollback_retires_writer_without_commit_bump() {
        let c = cache(1 << 20);
        let mgr = txns();
        let txn = mgr.begin().unwrap();
        c.touch(&txn, 1, 7);
        assert!(c.begin_publish(1, 7).is_none());
        txn.rollback().unwrap();
        // Writer retired: publishing works again.
        let t = c.begin_publish(1, 7).unwrap();
        assert!(c.publish(t, snapshot(10)));
        assert!(c.get(1, 7).is_some());
    }

    #[test]
    fn budget_evicts_lru() {
        let c = cache(SHARDS * 100); // 100 bytes per shard
                                     // Fill one (space, doc) slot after another; all may land in
                                     // different shards, so drive a single key's shard over budget.
        let t = c.begin_publish(1, 1).unwrap();
        assert!(c.publish(t, snapshot(80)));
        // Same key republished larger: old entry replaced, then the 120-byte
        // snapshot alone exceeds the shard budget and is evicted too.
        let t = c.begin_publish(1, 1).unwrap();
        assert!(c.publish(t, snapshot(120)));
        assert!(c.get(1, 1).is_none(), "oversized snapshot not retained");
        assert!(c.evictions() >= 1);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn invalidate_space_clears_entries() {
        let c = cache(1 << 20);
        let t = c.begin_publish(3, 1).unwrap();
        assert!(c.publish(t, snapshot(10)));
        let t = c.begin_publish(4, 1).unwrap();
        assert!(c.publish(t, snapshot(10)));
        c.invalidate_space(3);
        assert!(c.get(3, 1).is_none());
        assert!(c.get(4, 1).is_some());
    }

    #[test]
    fn touch_is_idempotent_per_txn() {
        let c = cache(1 << 20);
        let mgr = txns();
        let txn = mgr.begin().unwrap();
        c.touch(&txn, 1, 7);
        c.touch(&txn, 1, 7);
        c.touch(&txn, 1, 7);
        txn.commit().unwrap();
        // A single writer registration was retired: capture works.
        assert!(c.begin_publish(1, 7).is_some());
        assert!(c.pending.lock().is_empty());
    }
}
