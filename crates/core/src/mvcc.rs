//! Multiversioning (§5.1–5.2).
//!
//! "Alternatively, multiversioning can be applied to avoid locking by
//! readers, which is more efficient for mostly read workload. To support
//! multiversioning at document level, one scheme is to keep most up-to-date
//! data for XPath value indexes, but keep versions for XML data and the
//! NodeID index required. Without versioning, the index entries for a NodeID
//! index contain (DocID, NodeID, RID), while with versioning, the entries
//! will also include a version number, i.e. … (DocID, ver#, NodeID, RID),
//! with ver# in descending order. This will guarantee a reader's deferred
//! access to be successful."
//!
//! [`MvccXmlStore`] implements exactly that scheme: NodeID-index keys are
//! `(DocID BE, !ver# BE, NodeID)` — the bit-inverted version number makes
//! plain ascending B+tree order run *descending* in versions, so the newest
//! committed version a snapshot may see is found with one ceiling probe.
//! Updates are copy-on-write at record granularity: a new version re-points
//! unchanged intervals at the old records and only changed records are
//! written, which is the §5.2 sub-document refinement. Readers never take
//! locks; garbage collection reclaims versions older than the oldest live
//! snapshot.

use crate::error::{EngineError, Result};
use crate::pack::PackedRecord;
use crate::xmltable::DocId;
use parking_lot::{Mutex, RwLock};
use rx_storage::{BTree, HeapTable, Rid, TableSpace};
use rx_xml::nodeid::NodeId;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Version number of a document.
pub type Version = u64;
/// Global commit timestamp.
pub type Ts = u64;

/// Anchor slot of the versioned NodeID index.
pub const VERSIONED_NODEID_ANCHOR: usize = 2;

/// Encode a versioned NodeID-index key: `(DocID BE, !ver BE, NodeID)`.
pub fn versioned_key(doc: DocId, ver: Version, node: &NodeId) -> Vec<u8> {
    let mut k = Vec::with_capacity(16 + node.as_bytes().len());
    k.extend_from_slice(&doc.to_be_bytes());
    k.extend_from_slice(&(!ver).to_be_bytes());
    k.extend_from_slice(node.as_bytes());
    k
}

/// Decode a versioned key into `(doc, ver, node)`.
pub fn decode_versioned_key(key: &[u8]) -> Option<(DocId, Version, NodeId)> {
    if key.len() < 16 {
        return None;
    }
    let doc = DocId::from_be_bytes(key[..8].try_into().ok()?);
    let ver = !Version::from_be_bytes(key[8..16].try_into().ok()?);
    Some((doc, ver, NodeId::from_bytes_unchecked(key[16..].to_vec())))
}

/// A reader snapshot: sees, per document, the newest version committed at or
/// before `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Snapshot timestamp.
    pub ts: Ts,
    id: u64,
}

struct DocVersions {
    /// (commit ts, version) pairs, ascending by ts.
    committed: Vec<(Ts, Version)>,
}

/// A multiversioned XML document store.
pub struct MvccXmlStore {
    heap: Arc<HeapTable>,
    index: Arc<BTree>,
    clock: AtomicU64,
    next_snapshot: AtomicU64,
    versions: RwLock<HashMap<DocId, DocVersions>>,
    /// Live snapshot timestamps (for GC).
    active: Mutex<BTreeMap<u64, Ts>>,
}

impl MvccXmlStore {
    /// Create a store in `space`.
    pub fn create(space: Arc<TableSpace>) -> Result<MvccXmlStore> {
        let heap = HeapTable::create(space.clone())?;
        let index = BTree::create(space, VERSIONED_NODEID_ANCHOR)?;
        Ok(MvccXmlStore {
            heap,
            index,
            clock: AtomicU64::new(1),
            next_snapshot: AtomicU64::new(1),
            versions: RwLock::new(HashMap::new()),
            active: Mutex::new(BTreeMap::new()),
        })
    }

    /// Open a reader snapshot (no locks taken; must be closed with
    /// [`MvccXmlStore::close_snapshot`] so GC can advance).
    pub fn snapshot(&self) -> Snapshot {
        let ts = self.clock.load(Ordering::Acquire);
        let id = self.next_snapshot.fetch_add(1, Ordering::AcqRel);
        self.active.lock().insert(id, ts);
        Snapshot { ts, id }
    }

    /// Release a snapshot.
    pub fn close_snapshot(&self, s: Snapshot) {
        self.active.lock().remove(&s.id);
    }

    /// Commit a new version of `doc` made of `records` (for the first
    /// version, all of them are new; for updates, unchanged intervals may
    /// instead be re-pointed via `carry` = (upper, rid) pairs of the previous
    /// version that still apply).
    pub fn commit_version(
        &self,
        doc: DocId,
        records: &[PackedRecord],
        carry: &[(NodeId, Rid)],
    ) -> Result<Version> {
        let mut versions = self.versions.write();
        let entry = versions.entry(doc).or_insert(DocVersions {
            committed: Vec::new(),
        });
        let ver = entry.committed.last().map_or(1, |(_, v)| v + 1);
        // Install records + entries for the new version.
        let mut row = Vec::new();
        for rec in records {
            row.clear();
            row.extend_from_slice(&rec.bytes);
            let rid = self.heap.insert(&row)?;
            for upper in &rec.interval_uppers {
                self.index
                    .insert(&versioned_key(doc, ver, upper), rid.to_u64())?;
            }
        }
        for (upper, rid) in carry {
            self.index
                .insert(&versioned_key(doc, ver, upper), rid.to_u64())?;
        }
        // Publish: bump the commit clock after the data is in place.
        let ts = self.clock.fetch_add(1, Ordering::AcqRel) + 1;
        entry.committed.push((ts, ver));
        Ok(ver)
    }

    /// The version of `doc` visible to `snap`, if any.
    pub fn visible_version(&self, doc: DocId, snap: Snapshot) -> Option<Version> {
        let versions = self.versions.read();
        let dv = versions.get(&doc)?;
        dv.committed
            .iter()
            .rev()
            .find(|(ts, _)| *ts <= snap.ts)
            .map(|(_, v)| *v)
    }

    /// Locate the record containing `node` of `doc` in the snapshot-visible
    /// version: one ceiling probe thanks to the descending ver# ordering —
    /// the paper's "guarantee a reader's deferred access to be successful".
    pub fn locate(&self, doc: DocId, node: &NodeId, snap: Snapshot) -> Result<Option<Rid>> {
        let Some(ver) = self.visible_version(doc, snap) else {
            return Ok(None);
        };
        let probe = versioned_key(doc, ver, node);
        match self.index.search_ceil(&probe)? {
            Some((key, rid)) => match decode_versioned_key(&key) {
                Some((d, v, _)) if d == doc && v == ver => Ok(Some(Rid::from_u64(rid))),
                _ => Ok(None),
            },
            None => Ok(None),
        }
    }

    /// Fetch record bytes by RID.
    pub fn fetch(&self, rid: Rid) -> Result<Vec<u8>> {
        Ok(self.heap.fetch(rid)?)
    }

    /// All `(upper, rid)` interval entries of one version (used to carry
    /// unchanged intervals into the next version).
    pub fn version_entries(&self, doc: DocId, ver: Version) -> Result<Vec<(NodeId, Rid)>> {
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(16);
        prefix.extend_from_slice(&doc.to_be_bytes());
        prefix.extend_from_slice(&(!ver).to_be_bytes());
        self.index.scan_prefix(&prefix, |k, v| {
            if let Some((_, _, node)) = decode_versioned_key(k) {
                out.push((node, Rid::from_u64(v)));
            }
            true
        })?;
        Ok(out)
    }

    /// Garbage-collect versions no live snapshot can see, reclaiming records
    /// referenced only by them. Returns (versions dropped, records freed).
    pub fn gc(&self) -> Result<(usize, usize)> {
        let horizon = {
            let active = self.active.lock();
            active
                .values()
                .copied()
                .min()
                .unwrap_or_else(|| self.clock.load(Ordering::Acquire))
        };
        let mut versions = self.versions.write();
        let mut dropped_versions = 0usize;
        let mut dead_keys: Vec<Vec<u8>> = Vec::new();
        let mut dead_candidates: HashSet<Rid> = HashSet::new();
        let mut live_rids: HashSet<Rid> = HashSet::new();
        for (doc, dv) in versions.iter_mut() {
            // The newest version with ts <= horizon must stay (it is what a
            // new snapshot sees); everything older is unreachable.
            let keep_from = dv
                .committed
                .iter()
                .rposition(|(ts, _)| *ts <= horizon)
                .unwrap_or(0);
            let (dead, live) = dv.committed.split_at(keep_from);
            let dead: Vec<(Ts, Version)> = dead.to_vec();
            let live: Vec<(Ts, Version)> = live.to_vec();
            for (_, ver) in &dead {
                dropped_versions += 1;
                let mut prefix = Vec::with_capacity(16);
                prefix.extend_from_slice(&doc.to_be_bytes());
                prefix.extend_from_slice(&(!ver).to_be_bytes());
                self.index.scan_prefix(&prefix, |k, v| {
                    dead_keys.push(k.to_vec());
                    dead_candidates.insert(Rid::from_u64(v));
                    true
                })?;
            }
            for (_, ver) in &live {
                let mut prefix = Vec::with_capacity(16);
                prefix.extend_from_slice(&doc.to_be_bytes());
                prefix.extend_from_slice(&(!ver).to_be_bytes());
                self.index.scan_prefix(&prefix, |_, v| {
                    live_rids.insert(Rid::from_u64(v));
                    true
                })?;
            }
            dv.committed = live;
        }
        for k in &dead_keys {
            self.index.delete(k)?;
        }
        let mut freed = 0usize;
        for rid in dead_candidates {
            if !live_rids.contains(&rid) {
                self.heap.delete(rid)?;
                freed += 1;
            }
        }
        Ok((dropped_versions, freed))
    }

    /// Storage stats: (heap records, index entries).
    pub fn stats(&self) -> Result<(u64, u64)> {
        Ok((self.heap.stats()?.records, self.index.len()?))
    }
}

/// Helper: pack an XML string into records for [`MvccXmlStore`].
pub fn pack_for_mvcc(
    input: &str,
    dict: &rx_xml::NameDict,
    target: usize,
) -> Result<Vec<PackedRecord>> {
    let mut records = Vec::new();
    let mut obs = crate::pack::NoObserver;
    let mut p = crate::pack::Packer::with_target(target, &mut records, &mut obs);
    rx_xml::Parser::new(dict)
        .parse(input, &mut p)
        .map_err(EngineError::from)?;
    p.finish()?;
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_storage::{BufferPool, MemBackend};
    use rx_xml::NameDict;

    fn store() -> (MvccXmlStore, NameDict) {
        let pool = BufferPool::new(1024);
        let space = TableSpace::create(pool, 20, Arc::new(MemBackend::new())).unwrap();
        (MvccXmlStore::create(space).unwrap(), NameDict::new())
    }

    fn root() -> NodeId {
        NodeId::from_bytes(&[0x02]).unwrap()
    }

    #[test]
    fn snapshot_sees_committed_version_only() {
        let (s, dict) = store();
        let v1 = pack_for_mvcc("<a><v>1</v></a>", &dict, 3500).unwrap();
        s.commit_version(1, &v1, &[]).unwrap();
        let snap1 = s.snapshot();
        // Writer commits version 2 after the snapshot.
        let v2 = pack_for_mvcc("<a><v>2</v></a>", &dict, 3500).unwrap();
        s.commit_version(1, &v2, &[]).unwrap();
        let snap2 = s.snapshot();
        assert_eq!(s.visible_version(1, snap1), Some(1));
        assert_eq!(s.visible_version(1, snap2), Some(2));
        // Both locate their own record.
        let r1 = s.locate(1, &root(), snap1).unwrap().unwrap();
        let r2 = s.locate(1, &root(), snap2).unwrap().unwrap();
        assert_ne!(r1, r2);
        let b1 = s.fetch(r1).unwrap();
        let b2 = s.fetch(r2).unwrap();
        assert_ne!(b1, b2);
        s.close_snapshot(snap1);
        s.close_snapshot(snap2);
    }

    #[test]
    fn snapshot_before_any_commit_sees_nothing() {
        let (s, dict) = store();
        let snap = s.snapshot();
        let v1 = pack_for_mvcc("<a/>", &dict, 3500).unwrap();
        s.commit_version(9, &v1, &[]).unwrap();
        assert_eq!(s.visible_version(9, snap), None);
        assert!(s.locate(9, &root(), snap).unwrap().is_none());
        s.close_snapshot(snap);
    }

    #[test]
    fn carry_shares_unchanged_records() {
        let (s, dict) = store();
        let filler = "c".repeat(400);
        let doc = format!("<a><b>{filler}</b><c>{filler}</c><d>x</d></a>");
        let recs = pack_for_mvcc(&doc, &dict, 500).unwrap();
        assert!(recs.len() >= 2);
        s.commit_version(1, &recs, &[]).unwrap();
        let (heap_before, _) = s.stats().unwrap();
        // Version 2: carry every v1 entry, write no new records (a pure
        // metadata version, as if an unchanged region were re-pointed).
        let carry = s.version_entries(1, 1).unwrap();
        s.commit_version(1, &[], &carry).unwrap();
        let (heap_after, entries) = s.stats().unwrap();
        assert_eq!(
            heap_before, heap_after,
            "no record copies for carried intervals"
        );
        assert_eq!(entries, 2 * carry.len() as u64);
        // Both versions resolve to the same record.
        let snap = s.snapshot();
        assert_eq!(s.visible_version(1, snap), Some(2));
        assert!(s.locate(1, &root(), snap).unwrap().is_some());
        s.close_snapshot(snap);
    }

    #[test]
    fn gc_reclaims_invisible_versions() {
        let (s, dict) = store();
        for i in 0..5 {
            let recs = pack_for_mvcc(&format!("<a><v>{i}</v></a>"), &dict, 3500).unwrap();
            s.commit_version(1, &recs, &[]).unwrap();
        }
        let (recs_before, _) = s.stats().unwrap();
        assert_eq!(recs_before, 5);
        // A live snapshot pins the horizon.
        let pin = s.snapshot();
        let (dropped, freed) = s.gc().unwrap();
        assert_eq!(dropped, 4, "versions 1-4 are invisible to any snapshot");
        assert_eq!(freed, 4);
        // The pinned snapshot still reads fine.
        assert_eq!(s.visible_version(1, pin), Some(5));
        assert!(s.locate(1, &root(), pin).unwrap().is_some());
        s.close_snapshot(pin);
        let (recs_after, _) = s.stats().unwrap();
        assert_eq!(recs_after, 1);
    }

    #[test]
    fn gc_respects_old_snapshots() {
        let (s, dict) = store();
        let v1 = pack_for_mvcc("<a><v>1</v></a>", &dict, 3500).unwrap();
        s.commit_version(1, &v1, &[]).unwrap();
        let old = s.snapshot();
        let v2 = pack_for_mvcc("<a><v>2</v></a>", &dict, 3500).unwrap();
        s.commit_version(1, &v2, &[]).unwrap();
        let (dropped, _) = s.gc().unwrap();
        assert_eq!(dropped, 0, "old snapshot still needs version 1");
        assert_eq!(s.visible_version(1, old), Some(1));
        s.close_snapshot(old);
        let (dropped, freed) = s.gc().unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(freed, 1);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let (s, dict) = store();
        let s = Arc::new(s);
        let v = pack_for_mvcc("<a><v>0</v></a>", &dict, 3500).unwrap();
        s.commit_version(1, &v, &[]).unwrap();
        std::thread::scope(|scope| {
            // Writer: new version every iteration.
            let sw = Arc::clone(&s);
            let dictw = &dict;
            scope.spawn(move || {
                for i in 1..=50 {
                    let recs = pack_for_mvcc(&format!("<a><v>{i}</v></a>"), dictw, 3500).unwrap();
                    sw.commit_version(1, &recs, &[]).unwrap();
                }
            });
            // Readers: every snapshot must resolve consistently, lock-free.
            for _ in 0..3 {
                let sr = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let snap = sr.snapshot();
                        if let Some(ver) = sr.visible_version(1, snap) {
                            let rid = sr.locate(1, &root(), snap).unwrap();
                            assert!(rid.is_some(), "version {ver} must resolve");
                        }
                        sr.close_snapshot(snap);
                    }
                });
            }
        });
    }
}
