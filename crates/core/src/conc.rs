//! Concurrency control protocols (§5).
//!
//! §5.1 document-level: "if we allow direct access to the XML data from value
//! indexes or from an uncommitted reader that does not lock the base table
//! rows, a DocID locking scheme is required" — readers take IS(table) +
//! S(document), writers IX(table) + X(document), so no reader ever sees a
//! partially inserted document.
//!
//! §5.2 sub-document: "a multiple granularity locking is needed given the
//! hierarchical nature of XML data. Since we use prefix-encoded node IDs,
//! locking using node IDs can support the protocol efficiently because
//! ancestor-descendant relationship can be checked by testing if one is a
//! prefix of the other." Writers of a subtree take IX(table) + IX(document) +
//! X(node); readers IS + IS + S(node); the storage lock manager resolves node
//! conflicts by Dewey prefix ancestry, so disjoint subtrees of one document
//! update concurrently.

use crate::error::Result;
use crate::xmltable::DocId;
use rx_storage::{LockMode, LockName, Txn};
use rx_xml::nodeid::NodeId;

/// Take the §5.1 reader locks: IS on the table, S on the document.
pub fn lock_document_shared(txn: &Txn, table: u32, doc: DocId) -> Result<()> {
    txn.lock(&LockName::Table(table), LockMode::IS)?;
    txn.lock(&LockName::Document { table, doc }, LockMode::S)?;
    Ok(())
}

/// Take the §5.1 writer locks: IX on the table, X on the document.
pub fn lock_document_exclusive(txn: &Txn, table: u32, doc: DocId) -> Result<()> {
    txn.lock(&LockName::Table(table), LockMode::IX)?;
    txn.lock(&LockName::Document { table, doc }, LockMode::X)?;
    Ok(())
}

/// Take the §5.2 subtree reader locks: IS table, IS document, S subtree.
pub fn lock_subtree_shared(txn: &Txn, table: u32, doc: DocId, node: &NodeId) -> Result<()> {
    txn.lock(&LockName::Table(table), LockMode::IS)?;
    txn.lock(&LockName::Document { table, doc }, LockMode::IS)?;
    txn.lock(
        &LockName::Node {
            table,
            doc,
            node: node.as_bytes().to_vec(),
        },
        LockMode::S,
    )?;
    Ok(())
}

/// Take the §5.2 subtree writer locks: IX table, IX document, X subtree.
pub fn lock_subtree_exclusive(txn: &Txn, table: u32, doc: DocId, node: &NodeId) -> Result<()> {
    txn.lock(&LockName::Table(table), LockMode::IX)?;
    txn.lock(&LockName::Document { table, doc }, LockMode::IX)?;
    txn.lock(
        &LockName::Node {
            table,
            doc,
            node: node.as_bytes().to_vec(),
        },
        LockMode::X,
    )?;
    Ok(())
}

/// Non-blocking variant of [`lock_subtree_exclusive`]; returns whether all
/// three levels were granted (partial grants are left in place — they are
/// compatible intents — and released at transaction end).
pub fn try_lock_subtree_exclusive(
    txn: &Txn,
    table: u32,
    doc: DocId,
    node: &NodeId,
) -> Result<bool> {
    if !txn.try_lock(&LockName::Table(table), LockMode::IX)? {
        return Ok(false);
    }
    if !txn.try_lock(&LockName::Document { table, doc }, LockMode::IX)? {
        return Ok(false);
    }
    Ok(txn.try_lock(
        &LockName::Node {
            table,
            doc,
            node: node.as_bytes().to_vec(),
        },
        LockMode::X,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rx_storage::wal::{MemLogStore, Wal};
    use rx_storage::{LockManager, TxnManager};
    use std::sync::Arc;
    use std::time::Duration;

    fn mgr() -> Arc<TxnManager> {
        TxnManager::new(
            Wal::new(Arc::new(MemLogStore::new())),
            LockManager::new(Duration::from_millis(100)),
        )
    }

    fn nid(bytes: &[u8]) -> NodeId {
        NodeId::from_bytes(bytes).unwrap()
    }

    #[test]
    fn readers_share_documents() {
        let m = mgr();
        let r1 = m.begin().unwrap();
        let r2 = m.begin().unwrap();
        lock_document_shared(&r1, 1, 7).unwrap();
        lock_document_shared(&r2, 1, 7).unwrap();
        r1.commit().unwrap();
        r2.commit().unwrap();
    }

    #[test]
    fn writer_blocks_reader_of_same_document_only() {
        let m = mgr();
        let w = m.begin().unwrap();
        lock_document_exclusive(&w, 1, 7).unwrap();
        let r = m.begin().unwrap();
        // Same document: blocked (times out).
        assert!(lock_document_shared(&r, 1, 7).is_err());
        // Different document of the same table: fine.
        lock_document_shared(&r, 1, 8).unwrap();
        w.commit().unwrap();
        // Now the same document is readable.
        let r2 = m.begin().unwrap();
        lock_document_shared(&r2, 1, 7).unwrap();
        r.commit().unwrap();
        r2.commit().unwrap();
    }

    #[test]
    fn partial_insert_invisible_to_docid_readers() {
        // The §5.1 "reading a partially inserted document" scenario: the
        // inserting txn holds X(doc) until commit, so a reader arriving from
        // a value index (locking the DocID) waits.
        let m = mgr();
        let ins = m.begin().unwrap();
        lock_document_exclusive(&ins, 1, 42).unwrap();
        let reader = m.begin().unwrap();
        assert!(
            !reader
                .try_lock(&LockName::Document { table: 1, doc: 42 }, LockMode::S)
                .unwrap(),
            "reader must not see the in-flight document"
        );
        ins.commit().unwrap();
        assert!(reader
            .try_lock(&LockName::Document { table: 1, doc: 42 }, LockMode::S)
            .unwrap());
        reader.commit().unwrap();
    }

    #[test]
    fn disjoint_subtrees_update_concurrently() {
        let m = mgr();
        let w1 = m.begin().unwrap();
        let w2 = m.begin().unwrap();
        // Two products of the same catalog document.
        lock_subtree_exclusive(&w1, 1, 5, &nid(&[0x02, 0x02])).unwrap();
        lock_subtree_exclusive(&w2, 1, 5, &nid(&[0x02, 0x04])).unwrap();
        w1.commit().unwrap();
        w2.commit().unwrap();
    }

    #[test]
    fn ancestor_descendant_subtrees_conflict() {
        let m = mgr();
        let w1 = m.begin().unwrap();
        lock_subtree_exclusive(&w1, 1, 5, &nid(&[0x02, 0x02])).unwrap();
        let w2 = m.begin().unwrap();
        // Descendant of the locked subtree.
        assert!(!try_lock_subtree_exclusive(&w2, 1, 5, &nid(&[0x02, 0x02, 0x04])).unwrap());
        // Ancestor (the root element).
        assert!(!try_lock_subtree_exclusive(&w2, 1, 5, &nid(&[0x02])).unwrap());
        // Same IDs in another document are unrelated.
        assert!(try_lock_subtree_exclusive(&w2, 1, 6, &nid(&[0x02, 0x02])).unwrap());
        w1.commit().unwrap();
        w2.commit().unwrap();
    }

    #[test]
    fn subtree_writer_compatible_with_other_doc_reader() {
        let m = mgr();
        let w = m.begin().unwrap();
        lock_subtree_exclusive(&w, 1, 5, &nid(&[0x02, 0x02])).unwrap();
        let r = m.begin().unwrap();
        // Reading a *different* subtree of the same document is allowed
        // (IS document lock is compatible with IX).
        lock_subtree_shared(&r, 1, 5, &nid(&[0x02, 0x04])).unwrap();
        // Reading the locked subtree is not.
        let r2 = m.begin().unwrap();
        r2.lock(&LockName::Table(1), LockMode::IS).unwrap();
        r2.lock(&LockName::Document { table: 1, doc: 5 }, LockMode::IS)
            .unwrap();
        assert!(!r2
            .try_lock(
                &LockName::Node {
                    table: 1,
                    doc: 5,
                    node: vec![0x02, 0x02]
                },
                LockMode::S
            )
            .unwrap());
        // A whole-document S lock is also blocked by the IX intent.
        let r3 = m.begin().unwrap();
        r3.lock(&LockName::Table(1), LockMode::IS).unwrap();
        assert!(!r3
            .try_lock(&LockName::Document { table: 1, doc: 5 }, LockMode::S)
            .unwrap());
        w.commit().unwrap();
        r.commit().unwrap();
        r2.commit().unwrap();
        r3.commit().unwrap();
    }
}
