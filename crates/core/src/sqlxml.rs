//! A SQL/XML statement layer (§2).
//!
//! "Currently, all the manipulation and querying of XML data are through SQL
//! and SQL/XML with embedded XPath and XQuery. To SQL, XML is just a new data
//! type with a more complex content."
//!
//! This module implements the dialect the examples use:
//!
//! ```sql
//! CREATE TABLE products (sku VARCHAR, doc XML)
//! CREATE INDEX price_idx ON products (doc) USING XPATH '/Catalog/Product/RegPrice' AS DOUBLE
//! REGISTER SCHEMA cat AS '<xs:schema …>'
//! INSERT INTO products VALUES ('SKU-1', XML('<Catalog>…</Catalog>'))
//! INSERT INTO products VALUES ('SKU-2', XMLVALIDATE('<Catalog>…</Catalog>' ACCORDING TO cat))
//! SELECT XMLQUERY('/Catalog/Product[RegPrice > 100]') FROM products
//! SELECT * FROM products WHERE XMLEXISTS('/Catalog/Product[RegPrice > 100]')
//! SELECT XMLSERIALIZE(doc) FROM products WHERE DOCID = 3
//! DELETE FROM products WHERE DOCID = 3
//! EXPLAIN SELECT XMLQUERY('…') FROM products
//! -- §4.1 publishing functions (evaluated through tagging templates):
//! SELECT XMLELEMENT(NAME Emp, XMLATTRIBUTES(sku AS id), XMLFOREST(region AS r)) FROM products
//! SELECT XMLAGG(XMLELEMENT(NAME p, sku) ORDER BY sku) FROM products
//! -- XQuery-lite FLWOR (§6 future-work extension):
//! XQUERY 'for $p in /Catalog/Product where $p/RegPrice > 100
//!         return <hit>{ $p/ProductName }</hit>' ON products
//! ```

use crate::access::{self, QueryHit};
use crate::construct::{Constructed, Ctor, CtorAttr, Template, ValueExpr, XmlAgg};
use crate::db::{BaseTable, ColValue, ColumnKind, Database, Row};
use crate::error::{EngineError, Result};
use crate::xmltable::DocId;
use rx_xml::value::KeyType;
use rx_xpath::XPathParser;
use std::sync::Arc;

/// Result of executing one statement.
#[derive(Debug)]
pub enum Output {
    /// DDL success.
    Done,
    /// Rows affected.
    Count(u64),
    /// Base-table rows.
    Rows(Vec<Row>),
    /// XPath result sequence.
    Sequence(Vec<QueryHit>),
    /// Serialized documents `(docid, xml)`.
    Documents(Vec<(DocId, String)>),
    /// Plan explanation text.
    Explain(String),
    /// Constructed XML, one string per input row (or one for XMLAGG).
    Xml(Vec<String>),
}

/// A session bound to a database.
pub struct Session {
    db: Arc<Database>,
    /// Prefer NodeID-granularity index plans (the large-document switch).
    pub prefer_nodeid: bool,
}

impl Session {
    /// Open a session.
    pub fn new(db: Arc<Database>) -> Session {
        Session {
            db,
            prefer_nodeid: false,
        }
    }

    /// The database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Execute one statement.
    pub fn execute(&self, sql: &str) -> Result<Output> {
        let toks = lex(sql)?;
        let mut p = P { toks, pos: 0 };
        p.statement(self)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
}

fn lex(input: &str) -> Result<Vec<Tok>> {
    let b = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        match b[i] {
            c if c.is_ascii_whitespace() => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            b'*' => {
                out.push(Tok::Star);
                i += 1;
            }
            b'=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            b'\'' => {
                // SQL string with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    let Some(&c) = b.get(i) else {
                        return Err(EngineError::Invalid("unterminated string literal".into()));
                    };
                    if c == b'\'' {
                        if b.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(input[i..].chars().next().unwrap());
                        i += input[i..].chars().next().unwrap().len_utf8();
                    }
                }
                out.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    i += 1;
                }
                let n: f64 = input[start..i]
                    .parse()
                    .map_err(|_| EngineError::Invalid("bad number".into()))?;
                out.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(EngineError::Invalid(format!(
                    "unexpected character {:?} in SQL",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parser / executor
// ---------------------------------------------------------------------------

/// A parsed WHERE clause.
enum Filter {
    /// No filter.
    None,
    /// `WHERE XMLEXISTS('path')`.
    Exists(String),
    /// `WHERE XMLCONTAINS('terms')` — all terms, via the full-text index.
    Contains(String),
    /// `WHERE DOCID = n`.
    Doc(DocId),
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| EngineError::Invalid("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn kw(&mut self, word: &str) -> Result<()> {
        match self.next()? {
            Tok::Ident(s) if s.eq_ignore_ascii_case(word) => Ok(()),
            other => Err(EngineError::Invalid(format!(
                "expected {word}, found {other:?}"
            ))),
        }
    }

    fn is_kw(&self, word: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(word))
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(EngineError::Invalid(format!(
                "expected an identifier, found {other:?}"
            ))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Str(s) => Ok(s),
            other => Err(EngineError::Invalid(format!(
                "expected a string literal, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == t {
            Ok(())
        } else {
            Err(EngineError::Invalid(format!(
                "expected {t:?}, found {got:?}"
            )))
        }
    }

    fn end(&self) -> Result<()> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(EngineError::Invalid(format!(
                "trailing tokens after statement: {:?}",
                &self.toks[self.pos..]
            )))
        }
    }

    fn statement(&mut self, s: &Session) -> Result<Output> {
        match self.peek() {
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("CREATE") => self.create(s),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("REGISTER") => self.register(s),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("INSERT") => self.insert(s),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("SELECT") => self.select(s, false),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("DELETE") => self.delete(s),
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("EXPLAIN") => {
                self.next()?;
                self.select(s, true)
            }
            Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("XQUERY") => {
                // XQUERY 'for … return …' ON table [(column)]
                self.next()?;
                let text = self.string()?;
                self.kw("ON")?;
                let tname = self.ident()?;
                let column = if self.peek() == Some(&Tok::LParen) {
                    self.next()?;
                    let c = self.ident()?;
                    self.expect(&Tok::RParen)?;
                    Some(c)
                } else {
                    None
                };
                self.end()?;
                let table = s.db.table(&tname)?;
                let col = Arc::clone(Self::xml_column_of(&table, column.as_deref())?);
                let flwor = crate::xquery::parse_flwor(&text, &rx_xpath::XPathParser::new())?;
                let out = crate::xquery::execute_flwor(s.db(), &table, &col, &flwor)?;
                Ok(Output::Xml(out))
            }
            other => Err(EngineError::Invalid(format!(
                "unsupported statement starting with {other:?}"
            ))),
        }
    }

    fn create(&mut self, s: &Session) -> Result<Output> {
        self.kw("CREATE")?;
        if self.is_kw("FULLTEXT") {
            // CREATE FULLTEXT INDEX f ON t (col) USING XPATH 'path'
            self.kw("FULLTEXT")?;
            self.kw("INDEX")?;
            let iname = self.ident()?;
            self.kw("ON")?;
            let tname = self.ident()?;
            self.expect(&Tok::LParen)?;
            let col = self.ident()?;
            self.expect(&Tok::RParen)?;
            self.kw("USING")?;
            self.kw("XPATH")?;
            let path = self.string()?;
            self.end()?;
            s.db.create_fulltext_index(&tname, &iname, &col, &path)?;
            return Ok(Output::Done);
        }
        if self.is_kw("TABLE") {
            self.kw("TABLE")?;
            let name = self.ident()?;
            self.expect(&Tok::LParen)?;
            let mut cols: Vec<(String, ColumnKind)> = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = self.ident()?;
                let kind = if ty.eq_ignore_ascii_case("XML") {
                    ColumnKind::Xml
                } else {
                    ColumnKind::Str
                };
                cols.push((cname, kind));
                match self.next()? {
                    Tok::Comma => continue,
                    Tok::RParen => break,
                    other => {
                        return Err(EngineError::Invalid(format!(
                            "expected ',' or ')', found {other:?}"
                        )))
                    }
                }
            }
            self.end()?;
            let refs: Vec<(&str, ColumnKind)> =
                cols.iter().map(|(n, k)| (n.as_str(), *k)).collect();
            s.db.create_table(&name, &refs)?;
            return Ok(Output::Done);
        }
        // CREATE INDEX i ON t (col) USING XPATH 'path' AS TYPE
        self.kw("INDEX")?;
        let iname = self.ident()?;
        self.kw("ON")?;
        let tname = self.ident()?;
        self.expect(&Tok::LParen)?;
        let col = self.ident()?;
        self.expect(&Tok::RParen)?;
        self.kw("USING")?;
        self.kw("XPATH")?;
        let path = self.string()?;
        self.kw("AS")?;
        let ty = self.ident()?;
        self.end()?;
        let key_type = match ty.to_ascii_uppercase().as_str() {
            "DOUBLE" => KeyType::Double,
            "DECIMAL" => KeyType::Decimal,
            "DATE" => KeyType::Date,
            "VARCHAR" | "STRING" => KeyType::String,
            other => {
                return Err(EngineError::Invalid(format!(
                    "unsupported index key type {other}"
                )))
            }
        };
        s.db.create_value_index(&tname, &iname, &col, &path, key_type)?;
        Ok(Output::Done)
    }

    fn register(&mut self, s: &Session) -> Result<Output> {
        self.kw("REGISTER")?;
        self.kw("SCHEMA")?;
        let name = self.ident()?;
        self.kw("AS")?;
        let xsd = self.string()?;
        self.end()?;
        s.db.register_schema(&name, &xsd)?;
        Ok(Output::Done)
    }

    fn insert(&mut self, s: &Session) -> Result<Output> {
        self.kw("INSERT")?;
        self.kw("INTO")?;
        let tname = self.ident()?;
        self.kw("VALUES")?;
        self.expect(&Tok::LParen)?;
        let table = s.db.table(&tname)?;
        let mut values = Vec::new();
        loop {
            match self.next()? {
                Tok::Str(v) => values.push(ColValue::Str(v)),
                Tok::Num(n) => values.push(ColValue::Str(rx_xml::value::format_double(n))),
                Tok::Ident(f) if f.eq_ignore_ascii_case("XML") => {
                    self.expect(&Tok::LParen)?;
                    let text = self.string()?;
                    self.expect(&Tok::RParen)?;
                    values.push(ColValue::Xml(text));
                }
                Tok::Ident(f) if f.eq_ignore_ascii_case("XMLVALIDATE") => {
                    self.expect(&Tok::LParen)?;
                    let text = self.string()?;
                    self.kw("ACCORDING")?;
                    self.kw("TO")?;
                    let schema = self.ident()?;
                    self.expect(&Tok::RParen)?;
                    values.push(ColValue::XmlValidated { text, schema });
                }
                other => {
                    return Err(EngineError::Invalid(format!(
                        "unsupported value expression {other:?}"
                    )))
                }
            }
            match self.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => {
                    return Err(EngineError::Invalid(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        self.end()?;
        s.db.insert_row(&table, &values)?;
        Ok(Output::Count(1))
    }

    fn xml_column_of<'t>(
        table: &'t Arc<BaseTable>,
        name: Option<&str>,
    ) -> Result<&'t Arc<crate::db::XmlColumn>> {
        match name {
            Some(n) => table.xml_column(n),
            None => table
                .xml_columns()
                .first()
                .ok_or_else(|| EngineError::NotFound {
                    kind: "XML column",
                    name: format!("(any) in table {}", table.def.name),
                }),
        }
    }

    /// Parse a scalar value expression inside a constructor: a column name,
    /// a string literal, or `CONCAT(a, b, …)`.
    fn value_expr(&mut self, table: &Arc<BaseTable>) -> Result<ValueExpr> {
        match self.next()? {
            Tok::Str(s) => Ok(ValueExpr::Literal(s)),
            Tok::Num(n) => Ok(ValueExpr::Literal(rx_xml::value::format_double(n))),
            Tok::Ident(f) if f.eq_ignore_ascii_case("CONCAT") => {
                self.expect(&Tok::LParen)?;
                let mut parts = Vec::new();
                loop {
                    parts.push(self.value_expr(table)?);
                    match self.next()? {
                        Tok::Comma => continue,
                        Tok::RParen => break,
                        other => {
                            return Err(EngineError::Invalid(format!(
                                "expected ',' or ')' in CONCAT, found {other:?}"
                            )))
                        }
                    }
                }
                Ok(ValueExpr::Concat(parts))
            }
            Tok::Ident(col) => Ok(ValueExpr::Column(Self::column_slot(table, &col)?)),
            other => Err(EngineError::Invalid(format!(
                "expected a value expression, found {other:?}"
            ))),
        }
    }

    fn column_slot(table: &Arc<BaseTable>, name: &str) -> Result<usize> {
        table
            .def
            .columns
            .iter()
            .position(|c| c.name == name && c.kind == ColumnKind::Str)
            .ok_or_else(|| EngineError::NotFound {
                kind: "relational column",
                name: name.to_string(),
            })
    }

    /// Parse `(name AS alias, …)`-style pairs used by XMLATTRIBUTES/XMLFOREST.
    fn named_values(&mut self, table: &Arc<BaseTable>) -> Result<Vec<(String, ValueExpr)>> {
        self.expect(&Tok::LParen)?;
        let mut out = Vec::new();
        loop {
            let value = self.value_expr(table)?;
            let alias = if self.is_kw("AS") {
                self.kw("AS")?;
                self.ident()?
            } else if let ValueExpr::Column(i) = value {
                table.def.columns[i].name.clone()
            } else {
                return Err(EngineError::Invalid(
                    "non-column expressions need an AS alias".into(),
                ));
            };
            out.push((alias, value));
            match self.next()? {
                Tok::Comma => continue,
                Tok::RParen => break,
                other => {
                    return Err(EngineError::Invalid(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Parse `XMLELEMENT(NAME n, [XMLATTRIBUTES(...)], content…)` — the §4.1
    /// publishing functions. `self.pos` sits after the XMLELEMENT keyword.
    fn xmlelement(&mut self, table: &Arc<BaseTable>) -> Result<Ctor> {
        self.expect(&Tok::LParen)?;
        self.kw("NAME")?;
        let name = self.ident()?;
        let mut attrs: Vec<CtorAttr> = Vec::new();
        let mut content: Vec<Ctor> = Vec::new();
        loop {
            match self.next()? {
                Tok::RParen => break,
                Tok::Comma => {}
                other => {
                    return Err(EngineError::Invalid(format!(
                        "expected ',' or ')' in XMLELEMENT, found {other:?}"
                    )))
                }
            }
            match self.peek() {
                Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("XMLATTRIBUTES") => {
                    self.next()?;
                    for (alias, value) in self.named_values(table)? {
                        attrs.push(CtorAttr { name: alias, value });
                    }
                }
                Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("XMLFOREST") => {
                    self.next()?;
                    content.push(Ctor::Forest(self.named_values(table)?));
                }
                Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("XMLELEMENT") => {
                    self.next()?;
                    content.push(self.xmlelement(table)?);
                }
                Some(Tok::Ident(w)) if w.eq_ignore_ascii_case("XMLCOMMENT") => {
                    self.next()?;
                    self.expect(&Tok::LParen)?;
                    let v = self.value_expr(table)?;
                    self.expect(&Tok::RParen)?;
                    content.push(Ctor::Comment(v));
                }
                _ => content.push(Ctor::Text(self.value_expr(table)?)),
            }
        }
        Ok(Ctor::Element {
            name,
            attrs,
            content,
        })
    }

    fn select(&mut self, s: &Session, explain_only: bool) -> Result<Output> {
        self.kw("SELECT")?;
        enum Proj {
            Query {
                xpath: String,
                passing: Option<String>,
            },
            Serialize {
                col: Option<String>,
            },
            Star,
            Construct(Ctor),
            Agg {
                ctor: Ctor,
                order: Option<(String, bool)>,
            },
        }
        let proj = match self.next()? {
            Tok::Star => Proj::Star,
            Tok::Ident(f) if f.eq_ignore_ascii_case("XMLELEMENT") => {
                // Constructors need the table's columns; peek ahead for FROM.
                let ctor_start = self.pos - 1;
                let table_name = Self::table_after_from(&self.toks)?;
                let table = s.db.table(&table_name)?;
                self.pos = ctor_start + 1;
                Proj::Construct(self.xmlelement(&table)?)
            }
            Tok::Ident(f) if f.eq_ignore_ascii_case("XMLAGG") => {
                let table_name = Self::table_after_from(&self.toks)?;
                let table = s.db.table(&table_name)?;
                self.expect(&Tok::LParen)?;
                self.kw("XMLELEMENT")?;
                let ctor = self.xmlelement(&table)?;
                let order = if self.is_kw("ORDER") {
                    self.kw("ORDER")?;
                    self.kw("BY")?;
                    let col = self.ident()?;
                    let desc = if self.is_kw("DESC") {
                        self.kw("DESC")?;
                        true
                    } else {
                        if self.is_kw("ASC") {
                            self.kw("ASC")?;
                        }
                        false
                    };
                    Some((col, desc))
                } else {
                    None
                };
                self.expect(&Tok::RParen)?;
                Proj::Agg { ctor, order }
            }
            Tok::Ident(f) if f.eq_ignore_ascii_case("XMLQUERY") => {
                self.expect(&Tok::LParen)?;
                let xpath = self.string()?;
                let passing = if self.is_kw("PASSING") {
                    self.kw("PASSING")?;
                    Some(self.ident()?)
                } else {
                    None
                };
                self.expect(&Tok::RParen)?;
                Proj::Query { xpath, passing }
            }
            Tok::Ident(f) if f.eq_ignore_ascii_case("XMLSERIALIZE") => {
                self.expect(&Tok::LParen)?;
                let col = match self.next()? {
                    Tok::Ident(c) => Some(c),
                    Tok::RParen => None,
                    other => {
                        return Err(EngineError::Invalid(format!(
                            "bad XMLSERIALIZE argument {other:?}"
                        )))
                    }
                };
                if col.is_some() {
                    self.expect(&Tok::RParen)?;
                }
                Proj::Serialize { col }
            }
            other => {
                return Err(EngineError::Invalid(format!(
                    "unsupported projection {other:?}"
                )))
            }
        };
        self.kw("FROM")?;
        let tname = self.ident()?;
        let table = s.db.table(&tname)?;
        // Optional WHERE clause.
        let mut filter = Filter::None;
        if self.is_kw("WHERE") {
            self.kw("WHERE")?;
            match self.next()? {
                Tok::Ident(w) if w.eq_ignore_ascii_case("XMLEXISTS") => {
                    self.expect(&Tok::LParen)?;
                    let xp = self.string()?;
                    self.expect(&Tok::RParen)?;
                    filter = Filter::Exists(xp);
                }
                Tok::Ident(w) if w.eq_ignore_ascii_case("XMLCONTAINS") => {
                    self.expect(&Tok::LParen)?;
                    let terms = self.string()?;
                    self.expect(&Tok::RParen)?;
                    filter = Filter::Contains(terms);
                }
                Tok::Ident(w) if w.eq_ignore_ascii_case("DOCID") => {
                    self.expect(&Tok::Eq)?;
                    match self.next()? {
                        Tok::Num(n) => filter = Filter::Doc(n as DocId),
                        other => {
                            return Err(EngineError::Invalid(format!(
                                "expected a DocID number, found {other:?}"
                            )))
                        }
                    }
                }
                other => {
                    return Err(EngineError::Invalid(format!(
                        "unsupported WHERE clause {other:?}"
                    )))
                }
            }
        }
        self.end()?;
        let dict = s.db.dict();

        // Helper: run an XPath over the table with access-path selection.
        let run = |xpath: &str, passing: Option<&str>, explain: bool| -> Result<Output> {
            let col = Self::xml_column_of(&table, passing)?;
            let path = XPathParser::new().parse(xpath)?;
            if explain {
                let p = access::plan(&path, col, s.prefer_nodeid);
                return Ok(Output::Explain(p.explain()));
            }
            let (hits, _, _) = s.db.query(&table, col, &path, s.prefer_nodeid)?;
            Ok(Output::Sequence(hits))
        };

        match (proj, filter) {
            (Proj::Query { xpath, passing }, Filter::None) => {
                run(&xpath, passing.as_deref(), explain_only)
            }
            (Proj::Query { xpath, passing }, Filter::Doc(doc)) => {
                if explain_only {
                    return run(&xpath, passing.as_deref(), true);
                }
                let col = Self::xml_column_of(&table, passing.as_deref())?;
                let path = XPathParser::new().parse(&xpath)?;
                let tree = rx_xpath::QueryTree::compile(&path)?;
                let mut stats = access::AccessStats::default();
                let hits = access::evaluate_document(col, dict, &tree, doc, &mut stats)?;
                Ok(Output::Sequence(hits))
            }
            (Proj::Star, Filter::Exists(xp)) => {
                if explain_only {
                    return run(&xp, None, true);
                }
                let col = Self::xml_column_of(&table, None)?;
                let path = XPathParser::new().parse(&xp)?;
                let (hits, _, _) = s.db.query(&table, col, &path, s.prefer_nodeid)?;
                let mut docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
                docs.sort_unstable();
                docs.dedup();
                let mut rows = Vec::new();
                for d in docs {
                    if let Some(r) = s.db.fetch_row(&table, d)? {
                        rows.push(r);
                    }
                }
                Ok(Output::Rows(rows))
            }
            (Proj::Star, Filter::None) => {
                let mut rows = Vec::new();
                for d in access::all_docids(&table)? {
                    if let Some(r) = s.db.fetch_row(&table, d)? {
                        rows.push(r);
                    }
                }
                Ok(Output::Rows(rows))
            }
            (Proj::Star, Filter::Doc(doc)) => {
                let mut rows = Vec::new();
                if let Some(r) = s.db.fetch_row(&table, doc)? {
                    rows.push(r);
                }
                Ok(Output::Rows(rows))
            }
            (Proj::Star, Filter::Contains(terms)) => {
                let mut rows = Vec::new();
                for d in Self::contains_docs(&table, &terms)? {
                    if let Some(r) = s.db.fetch_row(&table, d)? {
                        rows.push(r);
                    }
                }
                Ok(Output::Rows(rows))
            }
            (Proj::Serialize { col }, Filter::Contains(terms)) => {
                let name = match col {
                    Some(c) => c,
                    None => table.xml_columns().first().unwrap().name.clone(),
                };
                let mut out = Vec::new();
                for d in Self::contains_docs(&table, &terms)? {
                    out.push((d, s.db.serialize_document(&table, &name, d)?));
                }
                Ok(Output::Documents(out))
            }
            (Proj::Query { xpath, passing }, Filter::Contains(terms)) => {
                // Full-text prefilter, then evaluate the path per document.
                let col = Self::xml_column_of(&table, passing.as_deref())?;
                let path = XPathParser::new().parse(&xpath)?;
                let tree = rx_xpath::QueryTree::compile(&path)?;
                let mut stats = access::AccessStats::default();
                let mut hits = Vec::new();
                for d in Self::contains_docs(&table, &terms)? {
                    hits.extend(access::evaluate_document(col, dict, &tree, d, &mut stats)?);
                }
                Ok(Output::Sequence(hits))
            }
            (Proj::Serialize { col }, Filter::Doc(doc)) => {
                let c = Self::xml_column_of(&table, col.as_deref())?;
                let _ = c;
                let name = col.unwrap_or_else(|| table.xml_columns().first().unwrap().name.clone());
                Ok(Output::Documents(vec![(
                    doc,
                    s.db.serialize_document(&table, &name, doc)?,
                )]))
            }
            (Proj::Serialize { col }, Filter::None) => {
                let name = match col {
                    Some(c) => c,
                    None => table.xml_columns().first().unwrap().name.clone(),
                };
                let mut out = Vec::new();
                for d in access::all_docids(&table)? {
                    out.push((d, s.db.serialize_document(&table, &name, d)?));
                }
                Ok(Output::Documents(out))
            }
            (Proj::Serialize { .. }, Filter::Exists(xp)) => {
                let col = Self::xml_column_of(&table, None)?;
                let path = XPathParser::new().parse(&xp)?;
                let (hits, _, _) = s.db.query(&table, col, &path, s.prefer_nodeid)?;
                let mut docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
                docs.sort_unstable();
                docs.dedup();
                let name = table.xml_columns().first().unwrap().name.clone();
                let mut out = Vec::new();
                for d in docs {
                    out.push((d, s.db.serialize_document(&table, &name, d)?));
                }
                Ok(Output::Documents(out))
            }
            (Proj::Query { .. }, Filter::Exists(_)) => Err(EngineError::Invalid(
                "combine the XMLEXISTS predicate into the XMLQUERY path instead".into(),
            )),
            (Proj::Construct(ctor), filter) => {
                let rows = Self::filtered_rows(s, &table, &filter, self.prefer_or(s))?;
                let tpl = Template::compile(&ctor, dict)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let c = Constructed::new(Arc::clone(&tpl), row.values)?;
                    out.push(c.to_xml(dict)?);
                }
                Ok(Output::Xml(out))
            }
            (Proj::Agg { ctor, order }, filter) => {
                let rows = Self::filtered_rows(s, &table, &filter, self.prefer_or(s))?;
                let tpl = Template::compile(&ctor, dict)?;
                let order_by = match order {
                    Some((col, desc)) => Some((Self::column_slot(&table, &col)?, desc)),
                    None => None,
                };
                let mut agg = XmlAgg::new(tpl, order_by);
                for row in rows {
                    agg.push(row.values);
                }
                Ok(Output::Xml(vec![agg.finish_to_xml(dict)?]))
            }
        }
    }

    /// Tokens of the FROM table for look-ahead during constructor parsing.
    fn table_after_from(toks: &[Tok]) -> Result<String> {
        let mut it = toks.iter().peekable();
        while let Some(t) = it.next() {
            if matches!(t, Tok::Ident(w) if w.eq_ignore_ascii_case("FROM")) {
                if let Some(Tok::Ident(name)) = it.next() {
                    return Ok(name.clone());
                }
            }
        }
        Err(EngineError::Invalid("missing FROM clause".into()))
    }

    fn prefer_or(&self, s: &Session) -> bool {
        s.prefer_nodeid
    }

    /// Documents whose full-text index contains all `terms` (AND semantics
    /// across the column's full-text indexes: any index may satisfy).
    fn contains_docs(table: &Arc<BaseTable>, terms: &str) -> Result<Vec<DocId>> {
        let col = Self::xml_column_of(table, None)?;
        let ftis = col.fulltext_indexes();
        if ftis.is_empty() {
            return Err(EngineError::NotFound {
                kind: "full-text index",
                name: format!("on table {}", table.def.name),
            });
        }
        let mut docs: Vec<DocId> = Vec::new();
        for fti in &ftis {
            docs.extend(fti.search_all_terms(terms)?);
        }
        docs.sort_unstable();
        docs.dedup();
        Ok(docs)
    }

    /// Rows of `table` surviving the WHERE clause.
    fn filtered_rows(
        s: &Session,
        table: &Arc<BaseTable>,
        filter: &Filter,
        prefer_nodeid: bool,
    ) -> Result<Vec<Row>> {
        let docs: Vec<DocId> = match filter {
            Filter::None => access::all_docids(table)?,
            Filter::Doc(d) => vec![*d],
            Filter::Exists(xp) => {
                let col = Self::xml_column_of(table, None)?;
                let path = XPathParser::new().parse(xp)?;
                let (hits, _, _) = s.db.query(table, col, &path, prefer_nodeid)?;
                let mut docs: Vec<DocId> = hits.iter().map(|h| h.doc).collect();
                docs.sort_unstable();
                docs.dedup();
                docs
            }
            Filter::Contains(terms) => Self::contains_docs(table, terms)?,
        };
        let mut rows = Vec::with_capacity(docs.len());
        for d in docs {
            if let Some(r) = s.db.fetch_row(table, d)? {
                rows.push(r);
            }
        }
        Ok(rows)
    }

    fn delete(&mut self, s: &Session) -> Result<Output> {
        self.kw("DELETE")?;
        self.kw("FROM")?;
        let tname = self.ident()?;
        let table = s.db.table(&tname)?;
        self.kw("WHERE")?;
        self.kw("DOCID")?;
        self.expect(&Tok::Eq)?;
        let doc = match self.next()? {
            Tok::Num(n) => n as DocId,
            other => {
                return Err(EngineError::Invalid(format!(
                    "expected a DocID number, found {other:?}"
                )))
            }
        };
        self.end()?;
        let removed = s.db.delete_row(&table, doc)?;
        Ok(Output::Count(u64::from(removed)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(Database::create_in_memory().unwrap())
    }

    #[test]
    fn ddl_insert_query_roundtrip() {
        let s = session();
        s.execute("CREATE TABLE products (sku VARCHAR, doc XML)")
            .unwrap();
        s.execute("CREATE INDEX price_idx ON products (doc) USING XPATH '/c/p/price' AS DOUBLE")
            .unwrap();
        s.execute("INSERT INTO products VALUES ('A', XML('<c><p><price>10</price></p></c>'))")
            .unwrap();
        s.execute("INSERT INTO products VALUES ('B', XML('<c><p><price>99</price></p></c>'))")
            .unwrap();
        let out = s
            .execute("SELECT XMLQUERY('/c/p[price > 50]') FROM products")
            .unwrap();
        match out {
            Output::Sequence(hits) => {
                assert_eq!(hits.len(), 1);
                assert_eq!(hits[0].value, "99");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn xmlexists_returns_rows() {
        let s = session();
        s.execute("CREATE TABLE t (tag VARCHAR, doc XML)").unwrap();
        s.execute("INSERT INTO t VALUES ('one', XML('<r><v>1</v></r>'))")
            .unwrap();
        s.execute("INSERT INTO t VALUES ('two', XML('<r><v>2</v></r>'))")
            .unwrap();
        let out = s
            .execute("SELECT * FROM t WHERE XMLEXISTS('/r[v = 2]')")
            .unwrap();
        match out {
            Output::Rows(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].values[0], "two");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn serialize_and_delete() {
        let s = session();
        s.execute("CREATE TABLE t (doc XML)").unwrap();
        s.execute("INSERT INTO t VALUES (XML('<a><b>x</b></a>'))")
            .unwrap();
        let out = s
            .execute("SELECT XMLSERIALIZE(doc) FROM t WHERE DOCID = 1")
            .unwrap();
        match out {
            Output::Documents(docs) => {
                assert_eq!(docs[0].1, "<a><b>x</b></a>");
            }
            other => panic!("unexpected {other:?}"),
        }
        match s.execute("DELETE FROM t WHERE DOCID = 1").unwrap() {
            Output::Count(1) => {}
            other => panic!("unexpected {other:?}"),
        }
        match s.execute("SELECT * FROM t").unwrap() {
            Output::Rows(rows) => assert!(rows.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn explain_shows_access_path() {
        let s = session();
        s.execute("CREATE TABLE t (doc XML)").unwrap();
        s.execute("CREATE INDEX i ON t (doc) USING XPATH '/r/v' AS DOUBLE")
            .unwrap();
        s.execute("INSERT INTO t VALUES (XML('<r><v>5</v></r>'))")
            .unwrap();
        let out = s
            .execute("EXPLAIN SELECT XMLQUERY('/r[v > 1]') FROM t")
            .unwrap();
        match out {
            Output::Explain(text) => {
                assert!(text.contains("DocID list access"), "{text}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unindexed query explains as a scan.
        let out = s
            .execute("EXPLAIN SELECT XMLQUERY('/r[w = 1]') FROM t")
            .unwrap();
        match out {
            Output::Explain(text) => assert!(text.contains("FULL SCAN"), "{text}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validated_insert_via_sql() {
        let s = session();
        s.execute("CREATE TABLE t (doc XML)").unwrap();
        s.execute(concat!(
            "REGISTER SCHEMA simple AS '",
            "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">",
            "<xs:element name=\"r\" type=\"xs:integer\"/>",
            "</xs:schema>'"
        ))
        .unwrap();
        s.execute("INSERT INTO t VALUES (XMLVALIDATE('<r>42</r>' ACCORDING TO simple))")
            .unwrap();
        assert!(s
            .execute("INSERT INTO t VALUES (XMLVALIDATE('<r>nope</r>' ACCORDING TO simple))")
            .is_err());
    }

    #[test]
    fn string_escaping() {
        let s = session();
        s.execute("CREATE TABLE t (doc XML)").unwrap();
        s.execute("INSERT INTO t VALUES (XML('<a t=\"x\">it''s</a>'))")
            .unwrap();
        match s
            .execute("SELECT XMLSERIALIZE(doc) FROM t WHERE DOCID = 1")
            .unwrap()
        {
            Output::Documents(d) => assert_eq!(d[0].1, "<a t=\"x\">it's</a>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors() {
        let s = session();
        assert!(s.execute("DROP TABLE x").is_err());
        assert!(s.execute("SELECT").is_err());
        assert!(s.execute("CREATE TABLE t (doc XML) extra").is_err());
        assert!(s.execute("SELECT * FROM missing").is_err());
    }
}

#[cfg(test)]
mod publish_tests {
    use super::*;

    fn session_with_emps() -> Session {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE emps (id VARCHAR, fname VARCHAR, lname VARCHAR, dept VARCHAR)")
            .unwrap();
        for (id, f, l, d) in [
            ("1234", "John", "Doe", "Accting"),
            ("1235", "Ada", "Lovelace", "Math"),
            ("1236", "Edgar", "Codd", "Databases"),
        ] {
            s.execute(&format!(
                "INSERT INTO emps VALUES ('{id}', '{f}', '{l}', '{d}')"
            ))
            .unwrap();
        }
        s
    }

    #[test]
    fn xmlelement_per_row_matches_fig5() {
        let s = session_with_emps();
        // The paper's §4.1 example, spelled in SQL.
        let out = s
            .execute(
                "SELECT XMLELEMENT(NAME Emp, \
                   XMLATTRIBUTES(id AS id, CONCAT(fname, ' ', lname) AS name), \
                   XMLFOREST(dept AS department)) FROM emps",
            )
            .unwrap();
        match out {
            Output::Xml(rows) => {
                assert_eq!(rows.len(), 3);
                assert_eq!(
                    rows[0],
                    r#"<Emp id="1234" name="John Doe"><department>Accting</department></Emp>"#
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xmlagg_order_by() {
        let s = session_with_emps();
        let out = s
            .execute("SELECT XMLAGG(XMLELEMENT(NAME d, dept) ORDER BY dept) FROM emps")
            .unwrap();
        match out {
            Output::Xml(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0], "<d>Accting</d><d>Databases</d><d>Math</d>");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Descending.
        let out = s
            .execute("SELECT XMLAGG(XMLELEMENT(NAME d, dept) ORDER BY dept DESC) FROM emps")
            .unwrap();
        match out {
            Output::Xml(v) => assert!(v[0].starts_with("<d>Math</d>")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_elements_and_filters() {
        let s = session_with_emps();
        let out = s
            .execute(
                "SELECT XMLELEMENT(NAME r, XMLELEMENT(NAME inner, fname)) \
                 FROM emps WHERE DOCID = 2",
            )
            .unwrap();
        match out {
            Output::Xml(rows) => {
                assert_eq!(rows, vec!["<r><inner>Ada</inner></r>".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_errors() {
        let s = session_with_emps();
        // Unknown column.
        assert!(s
            .execute("SELECT XMLELEMENT(NAME x, salary) FROM emps")
            .is_err());
        // XMLAGG must wrap an XMLELEMENT.
        assert!(s.execute("SELECT XMLAGG(dept) FROM emps").is_err());
        // Missing NAME keyword.
        assert!(s.execute("SELECT XMLELEMENT(Emp, id) FROM emps").is_err());
    }

    #[test]
    fn construct_over_xmlexists_filter() {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE t (tag VARCHAR, doc XML)").unwrap();
        s.execute("INSERT INTO t VALUES ('hot', XML('<r><v>9</v></r>'))")
            .unwrap();
        s.execute("INSERT INTO t VALUES ('cold', XML('<r><v>1</v></r>'))")
            .unwrap();
        let out = s
            .execute("SELECT XMLELEMENT(NAME pick, tag) FROM t WHERE XMLEXISTS('/r[v > 5]')")
            .unwrap();
        match out {
            Output::Xml(rows) => assert_eq!(rows, vec!["<pick>hot</pick>".to_string()]),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod fulltext_sql_tests {
    use super::*;

    #[test]
    fn xmlcontains_end_to_end() {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE docs (title VARCHAR, doc XML)")
            .unwrap();
        s.execute("CREATE FULLTEXT INDEX ft ON docs (doc) USING XPATH '//Description'")
            .unwrap();
        s.execute(
            "INSERT INTO docs VALUES ('a', XML('<p><Description>durable portable widget</Description></p>'))",
        )
        .unwrap();
        s.execute(
            "INSERT INTO docs VALUES ('b', XML('<p><Description>enterprise gadget</Description></p>'))",
        )
        .unwrap();
        // Single + multi term.
        match s
            .execute("SELECT * FROM docs WHERE XMLCONTAINS('portable')")
            .unwrap()
        {
            Output::Rows(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].values[0], "a");
            }
            other => panic!("unexpected {other:?}"),
        }
        match s
            .execute("SELECT * FROM docs WHERE XMLCONTAINS('durable widget')")
            .unwrap()
        {
            Output::Rows(rows) => assert_eq!(rows.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match s
            .execute("SELECT * FROM docs WHERE XMLCONTAINS('durable gadget')")
            .unwrap()
        {
            Output::Rows(rows) => assert!(rows.is_empty(), "terms span documents"),
            other => panic!("unexpected {other:?}"),
        }
        // Combined with a projection path.
        match s
            .execute("SELECT XMLQUERY('/p/Description') FROM docs WHERE XMLCONTAINS('gadget')")
            .unwrap()
        {
            Output::Sequence(hits) => {
                assert_eq!(hits.len(), 1);
                assert!(hits[0].value.contains("enterprise"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Postings follow deletes.
        s.execute("DELETE FROM docs WHERE DOCID = 1").unwrap();
        match s
            .execute("SELECT * FROM docs WHERE XMLCONTAINS('portable')")
            .unwrap()
        {
            Output::Rows(rows) => assert!(rows.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xmlcontains_without_index_errors() {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE d (doc XML)").unwrap();
        s.execute("INSERT INTO d VALUES (XML('<a>x</a>'))").unwrap();
        assert!(s.execute("SELECT * FROM d WHERE XMLCONTAINS('x')").is_err());
    }
}

#[cfg(test)]
mod xquery_sql_tests {
    use super::*;

    #[test]
    fn flwor_through_the_session() {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE c (doc XML)").unwrap();
        for (n, p) in [("A", 5), ("B", 50)] {
            s.execute(&format!(
                "INSERT INTO c VALUES (XML('<r><i><n>{n}</n><p>{p}</p></i></r>'))"
            ))
            .unwrap();
        }
        match s
            .execute("XQUERY 'for $i in /r/i where $i/p > 10 return <big>{ $i/n }</big>' ON c")
            .unwrap()
        {
            Output::Xml(v) => assert_eq!(v, vec!["<big>B</big>"]),
            other => panic!("unexpected {other:?}"),
        }
        // Explicit column form.
        match s
            .execute("XQUERY 'for $i in /r/i return <n>{ $i/n }</n>' ON c (doc)")
            .unwrap()
        {
            Output::Xml(v) => assert_eq!(v.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[cfg(test)]
mod empty_edge_tests {
    use super::*;

    #[test]
    fn aggregates_and_queries_over_empty_tables() {
        let s = Session::new(Database::create_in_memory().unwrap());
        s.execute("CREATE TABLE e (name VARCHAR, doc XML)").unwrap();
        match s
            .execute("SELECT XMLAGG(XMLELEMENT(NAME n, name) ORDER BY name) FROM e")
            .unwrap()
        {
            Output::Xml(v) => assert_eq!(v, vec![String::new()]),
            other => panic!("unexpected {other:?}"),
        }
        match s.execute("SELECT XMLQUERY('/r/v') FROM e").unwrap() {
            Output::Sequence(hits) => assert!(hits.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match s.execute("SELECT * FROM e").unwrap() {
            Output::Rows(r) => assert!(r.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match s
            .execute("XQUERY 'for $x in /r return <y>{ $x }</y>' ON e")
            .unwrap()
        {
            Output::Xml(v) => assert!(v.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
