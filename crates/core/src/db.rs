//! The database façade: base tables with XML columns on shared relational
//! infrastructure (Fig. 1 / Fig. 2).
//!
//! "A base table with an XML column will have an implicit DocID column,
//! shared by all the XML columns in the table, and used to link from the base
//! table to the XML table. In addition, a DocID index on the base table is
//! used for getting to base table rows from XPath value indexes." (§3.1)
//!
//! One [`Database`] owns: a buffer pool shared by all table spaces, the
//! persistent catalog (object definitions, compiled schemas, counters, the
//! name dictionary), the WAL + transaction manager, and the lock manager.

use crate::error::{EngineError, Result};
use crate::fulltext::{FullTextIndex, FullTextIndexDef, FullTextKeyGen};
use crate::pack::{NodeObserver, Packer};
use crate::validx::{IndexKeyGen, ValueIndex, ValueIndexDef};
use crate::xmltable::{DocId, XmlTable};
use parking_lot::RwLock;
use rx_storage::codec::{Dec, Enc};
use rx_storage::wal::{FileLogStore, LogRecord, MemLogStore, RecoveryEnv, Wal};
use rx_storage::{
    BTree, BufferPool, Catalog, FileBackend, HeapTable, LockManager, MemBackend, Rid,
    StorageBackend, TableSpace, Txn, TxnManager,
};
use rx_xml::name::NameDict;
use rx_xml::parser::Parser;
use rx_xml::schema::{compile as compile_schema, parse_xsd, SchemaProgram};
use rx_xml::value::KeyType;
use rx_xpath::QueryTree;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Where the database lives.
#[derive(Debug, Clone)]
pub enum Storage {
    /// Everything in memory (tests, CPU-bound benchmarks).
    Memory,
    /// One file per table space plus a WAL file under a directory.
    Dir(PathBuf),
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Target packed-record size (the packing-factor knob).
    pub target_record_size: usize,
    /// Lock wait timeout.
    pub lock_timeout: Duration,
    /// Query-executor lanes: how many candidate-document partitions a single
    /// query may evaluate concurrently. 1 disables intra-query parallelism.
    pub query_workers: usize,
    /// Plan-cache capacity in entries (compiled `QueryTree` + `AccessPlan`
    /// per distinct query). 0 disables the cache.
    pub plan_cache_capacity: usize,
    /// Document record-cache budget in bytes, shared by every XML table of
    /// the database (§3.4 traversal short-circuit). 0 disables the cache;
    /// repeated traversals of a hot document then always re-probe the NodeID
    /// index and re-fetch records through the buffer pool.
    pub doc_cache_bytes: usize,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            buffer_pages: 4096,
            target_record_size: crate::pack::DEFAULT_TARGET_RECORD,
            lock_timeout: Duration::from_secs(2),
            query_workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            plan_cache_capacity: 128,
            doc_cache_bytes: 0,
        }
    }
}

impl DbConfig {
    /// Check the knobs make sense; every `create_*`/`open_*` entry point
    /// calls this so a zeroed config fails with a clear error instead of a
    /// panic deep in the buffer pool or an unwaitable lock timeout.
    pub fn validate(&self) -> Result<()> {
        if self.buffer_pages < rx_storage::buffer::MIN_BUFFER_PAGES {
            return Err(EngineError::Invalid(format!(
                "buffer_pages must be at least {} (got {})",
                rx_storage::buffer::MIN_BUFFER_PAGES,
                self.buffer_pages
            )));
        }
        if self.target_record_size == 0 {
            return Err(EngineError::Invalid(
                "target_record_size must be positive".to_string(),
            ));
        }
        if self.lock_timeout.is_zero() {
            return Err(EngineError::Invalid(
                "lock_timeout must be positive".to_string(),
            ));
        }
        if self.query_workers == 0 {
            return Err(EngineError::Invalid(
                "query_workers must be positive (1 disables parallelism)".to_string(),
            ));
        }
        Ok(())
    }
}

/// A point-in-time snapshot of the engine's internal counters, aggregated
/// across the buffer pool, WAL, lock manager, and transaction manager.
/// Served remotely through the rx-server `stats` request.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Buffer-pool page hits.
    pub buffer_hits: u64,
    /// Buffer-pool page misses (reads from the backend).
    pub buffer_misses: u64,
    /// Pages evicted to make room.
    pub buffer_evictions: u64,
    /// Dirty pages written back.
    pub buffer_writebacks: u64,
    /// Pages currently resident.
    pub buffer_resident: u64,
    /// Buffer-pool lock stripes.
    pub buffer_shards: u64,
    /// Shard-mutex acquisitions that found the mutex already held.
    pub buffer_contention: u64,
    /// Total WAL bytes appended.
    pub wal_bytes: u64,
    /// Total WAL records appended.
    pub wal_records: u64,
    /// Fsyncs issued by the WAL group-commit flusher.
    pub wal_fsyncs: u64,
    /// Commits whose records were not yet durable on arrival, i.e. that
    /// joined a group-commit flush as leader or waiter (fewer fsyncs than
    /// this under concurrent load means batching is working).
    pub wal_group_commits: u64,
    /// Largest number of records one fsync covered.
    pub wal_batch_max: u64,
    /// Highest LSN known durable (the replication-shipping watermark).
    pub wal_durable_lsn: u64,
    /// Assigned LSNs not yet durable.
    pub wal_durable_lag: u64,
    /// Lock requests that blocked at least once.
    pub lock_waits: u64,
    /// Lock requests that timed out.
    pub lock_timeouts: u64,
    /// Lock requests refused as deadlock victims.
    pub lock_deadlocks: u64,
    /// Transactions currently active.
    pub active_txns: u64,
    /// Query-executor lanes configured (`DbConfig::query_workers`).
    pub query_workers: u64,
    /// Queries whose candidate evaluation actually fanned out across lanes.
    pub parallel_queries: u64,
    /// Plan-cache lookups that found a compiled plan.
    pub plan_cache_hits: u64,
    /// Plan-cache lookups that compiled afresh.
    pub plan_cache_misses: u64,
    /// Compiled plans currently cached.
    pub plan_cache_entries: u64,
    /// Document-cache lookups that found a valid snapshot.
    pub doc_cache_hits: u64,
    /// Document-cache lookups that fell through to the buffer pool.
    pub doc_cache_misses: u64,
    /// Document snapshots evicted to stay inside the byte budget.
    pub doc_cache_evictions: u64,
    /// Bytes currently held by resident document snapshots.
    pub doc_cache_bytes: u64,
}

/// Column kinds of a base table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// A relational string column.
    Str,
    /// A native XML column (backed by an internal XML table, §3.1).
    Xml,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Kind.
    pub kind: ColumnKind,
}

/// A base-table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Table id.
    pub id: u32,
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

/// A value supplied for one column on insert.
#[derive(Debug, Clone, PartialEq)]
pub enum ColValue {
    /// A relational string value.
    Str(String),
    /// XML text to parse and store natively.
    Xml(String),
    /// XML text validated against a registered schema before storage.
    XmlValidated {
        /// Document text.
        text: String,
        /// Registered schema name.
        schema: String,
    },
}

/// One XML column of a base table with its internal XML table and value
/// indexes.
pub struct XmlColumn {
    /// Column name.
    pub name: String,
    /// Position within the table's column list.
    pub position: usize,
    xml: XmlTable,
    indexes: RwLock<Vec<Arc<ValueIndex>>>,
    ft_indexes: RwLock<Vec<Arc<FullTextIndex>>>,
}

impl XmlColumn {
    /// The internal XML table.
    pub fn xml_table(&self) -> &XmlTable {
        &self.xml
    }

    /// Snapshot of the column's value indexes.
    pub fn indexes(&self) -> Vec<Arc<ValueIndex>> {
        self.indexes.read().clone()
    }

    /// Snapshot of the column's full-text indexes.
    pub fn fulltext_indexes(&self) -> Vec<Arc<FullTextIndex>> {
        self.ft_indexes.read().clone()
    }
}

/// A base table: relational row heap + DocID index + XML columns.
pub struct BaseTable {
    /// Definition.
    pub def: TableDef,
    heap: Arc<HeapTable>,
    docid_index: Arc<BTree>,
    xml_columns: Vec<Arc<XmlColumn>>,
    base_space: u32,
}

/// Anchor of the DocID index within the base table's space.
pub const DOCID_INDEX_ANCHOR: usize = 2;

impl BaseTable {
    /// The XML column named `name`.
    pub fn xml_column(&self, name: &str) -> Result<&Arc<XmlColumn>> {
        self.xml_columns
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| EngineError::NotFound {
                kind: "XML column",
                name: name.to_string(),
            })
    }

    /// All XML columns.
    pub fn xml_columns(&self) -> &[Arc<XmlColumn>] {
        &self.xml_columns
    }

    /// The base-row heap.
    pub fn heap(&self) -> &Arc<HeapTable> {
        &self.heap
    }

    /// The DocID index (DocID → base-row RID).
    pub fn docid_index(&self) -> &Arc<BTree> {
        &self.docid_index
    }

    /// Look up a base row's RID by DocID ("getting to base table rows from
    /// XPath value indexes", §3.1).
    pub fn row_rid(&self, doc: DocId) -> Result<Option<Rid>> {
        Ok(self
            .docid_index
            .search(&doc.to_be_bytes())?
            .map(Rid::from_u64))
    }
}

/// Per-index derived items: (value-index lists, full-text lists), one inner
/// list per index in declaration order.
type DerivedItems = (
    Vec<Vec<rx_xpath::ResultItem>>,
    Vec<Vec<rx_xpath::ResultItem>>,
);

/// A decoded base-table row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The implicit DocID.
    pub doc: DocId,
    /// Relational string values, in column order (XML columns contribute an
    /// empty marker here; their data lives in the internal XML tables).
    pub values: Vec<String>,
}

fn encode_base_row(doc: DocId, values: &[String]) -> Vec<u8> {
    let mut e = Enc::with_capacity(16);
    e.u64(doc);
    e.varint(values.len() as u64);
    for v in values {
        e.str(v);
    }
    e.into_bytes()
}

fn decode_base_row(rec: &[u8]) -> Result<Row> {
    let mut d = Dec::new(rec);
    let doc = d.u64()?;
    let n = d.varint()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(d.str()?.to_string());
    }
    Ok(Row { doc, values })
}

// Catalog key prefixes.
const K_NEXT_SPACE: &[u8] = b"meta/next_space";
const K_NEXT_TABLE: &[u8] = b"meta/next_table";
const K_DICT_STRINGS: &[u8] = b"meta/dict_strings";
const K_DICT_QNAMES: &[u8] = b"meta/dict_qnames";

fn k_table(name: &str) -> Vec<u8> {
    [b"tbl/", name.as_bytes()].concat()
}

fn k_doccnt(table_id: u32) -> Vec<u8> {
    format!("doccnt/{table_id}").into_bytes()
}

fn k_index(table: &str, index: &str) -> Vec<u8> {
    format!("idx/{table}/{index}").into_bytes()
}

fn k_ft_index(table: &str, index: &str) -> Vec<u8> {
    format!("fti/{table}/{index}").into_bytes()
}

fn k_schema(name: &str) -> Vec<u8> {
    [b"schema/", name.as_bytes()].concat()
}

/// The database.
pub struct Database {
    /// Configuration used to open it.
    pub config: DbConfig,
    storage: Storage,
    pool: Arc<BufferPool>,
    catalog: Arc<Catalog>,
    dict: Arc<NameDict>,
    txns: Arc<TxnManager>,
    tables: RwLock<HashMap<String, Arc<BaseTable>>>,
    schemas: RwLock<HashMap<String, Arc<SchemaProgram>>>,
    /// (strings, qnames) counts last persisted to the catalog.
    dict_persisted: parking_lot::Mutex<(usize, usize)>,
    executor: crate::executor::QueryExecutor,
    plan_cache: crate::executor::PlanCache,
    doc_cache: Arc<crate::doccache::DocCache>,
}

impl Database {
    /// Create a fresh in-memory database.
    pub fn create_in_memory() -> Result<Arc<Database>> {
        Self::create_with(Storage::Memory, DbConfig::default())
    }

    /// Create a fresh in-memory database with explicit config.
    pub fn create_in_memory_with(config: DbConfig) -> Result<Arc<Database>> {
        Self::create_with(Storage::Memory, config)
    }

    /// Create a fresh file-backed database under `dir`.
    pub fn create_dir(dir: impl Into<PathBuf>) -> Result<Arc<Database>> {
        Self::create_with(Storage::Dir(dir.into()), DbConfig::default())
    }

    fn make_backend(storage: &Storage, space: u32) -> Result<Arc<dyn StorageBackend>> {
        Ok(match storage {
            Storage::Memory => Arc::new(MemBackend::new()),
            Storage::Dir(dir) => {
                Arc::new(FileBackend::open(&dir.join(format!("space-{space}.dat")))?)
            }
        })
    }

    /// Create a new database with explicit storage and config.
    pub fn create_with(storage: Storage, config: DbConfig) -> Result<Arc<Database>> {
        config.validate()?;
        if let Storage::Dir(dir) = &storage {
            std::fs::create_dir_all(dir).map_err(rx_storage::StorageError::from)?;
        }
        let pool = BufferPool::new(config.buffer_pages);
        // Space 0: the catalog.
        let cat_space = TableSpace::create(pool.clone(), 0, Self::make_backend(&storage, 0)?)?;
        let catalog = Catalog::create(cat_space)?;
        catalog.put(K_NEXT_SPACE, &1u64.to_le_bytes())?;
        let wal: Arc<Wal> = match &storage {
            Storage::Memory => Wal::new(Arc::new(MemLogStore::new())),
            Storage::Dir(dir) => Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log"))?)),
        };
        let locks = LockManager::new(config.lock_timeout);
        let txns = TxnManager::new(wal, locks);
        let executor = crate::executor::QueryExecutor::new(config.query_workers);
        let plan_cache = crate::executor::PlanCache::new(config.plan_cache_capacity);
        let doc_cache = crate::doccache::DocCache::new(config.doc_cache_bytes);
        Ok(Arc::new(Database {
            config,
            storage,
            pool,
            catalog,
            dict: Arc::new(NameDict::new()),
            txns,
            tables: RwLock::new(HashMap::new()),
            schemas: RwLock::new(HashMap::new()),
            dict_persisted: parking_lot::Mutex::new((1, 0)),
            executor,
            plan_cache,
            doc_cache,
        }))
    }

    /// Reopen a file-backed database, running crash recovery.
    pub fn open_dir(dir: impl Into<PathBuf>) -> Result<Arc<Database>> {
        Self::open_with(dir, DbConfig::default())
    }

    /// Reopen with explicit config.
    pub fn open_with(dir: impl Into<PathBuf>, config: DbConfig) -> Result<Arc<Database>> {
        config.validate()?;
        let dir: PathBuf = dir.into();
        let storage = Storage::Dir(dir.clone());
        let pool = BufferPool::new(config.buffer_pages);
        let cat_space = TableSpace::open(pool.clone(), 0, Self::make_backend(&storage, 0)?)?;
        let catalog = Catalog::open(cat_space)?;
        // Rebuild the name dictionary.
        let dict = match (catalog.get(K_DICT_STRINGS), catalog.get(K_DICT_QNAMES)) {
            (Some(sb), Some(qb)) => Arc::new(decode_dict(&sb, &qb)?),
            _ => Arc::new(NameDict::new()),
        };
        let wal = Wal::new(Arc::new(FileLogStore::open(&dir.join("wal.log"))?));
        let locks = LockManager::new(config.lock_timeout);
        let txns = TxnManager::new(wal, locks);
        let executor = crate::executor::QueryExecutor::new(config.query_workers);
        let plan_cache = crate::executor::PlanCache::new(config.plan_cache_capacity);
        let doc_cache = crate::doccache::DocCache::new(config.doc_cache_bytes);
        let db = Arc::new(Database {
            config,
            storage,
            pool,
            catalog,
            dict,
            txns,
            tables: RwLock::new(HashMap::new()),
            schemas: RwLock::new(HashMap::new()),
            dict_persisted: parking_lot::Mutex::new((0, 0)),
            executor,
            plan_cache,
            doc_cache,
        });
        // Load all tables so recovery can reach every space.
        let mut env = RecoveryEnv::default();
        let table_keys: Vec<Vec<u8>> = db
            .catalog
            .list_prefix(b"tbl/")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for key in table_keys {
            let name = String::from_utf8_lossy(&key[4..]).to_string();
            let table = db.load_table(&name)?;
            env.heaps.insert(table.base_space, Arc::clone(&table.heap));
            env.indexes.insert(
                (table.base_space, DOCID_INDEX_ANCHOR as u32),
                Arc::clone(&table.docid_index),
            );
            for col in &table.xml_columns {
                env.heaps
                    .insert(col.xml.space_id(), Arc::clone(col.xml.heap()));
                env.indexes.insert(
                    (
                        col.xml.space_id(),
                        crate::xmltable::NODEID_INDEX_ANCHOR as u32,
                    ),
                    Arc::clone(col.xml.nodeid_index()),
                );
                for vi in col.indexes() {
                    env.indexes.insert(
                        (vi.def.space_id, crate::validx::VALUE_INDEX_ANCHOR as u32),
                        vi.btree_arc(),
                    );
                }
                for fti in col.fulltext_indexes() {
                    env.indexes.insert(
                        (fti.def.space_id, crate::fulltext::FULLTEXT_ANCHOR as u32),
                        fti.btree_arc(),
                    );
                }
            }
        }
        rx_storage::recover(db.txns.wal(), &env)?;
        // Doc counters may lag the recovered data (they live in catalog
        // pages that might not have been flushed): raise each to the max
        // recovered DocID.
        let tables: Vec<Arc<BaseTable>> = db.tables.read().values().cloned().collect();
        for table in tables {
            let mut max_doc = 0u64;
            table.docid_index.scan_all(|k, _| {
                if let Ok(b) = <[u8; 8]>::try_from(k) {
                    max_doc = max_doc.max(u64::from_be_bytes(b));
                }
                true
            })?;
            let key = k_doccnt(table.def.id);
            while db.catalog.counter(&key) < max_doc {
                db.catalog.bump_counter(&key)?;
            }
        }
        Ok(db)
    }

    /// The shared name dictionary.
    pub fn dict(&self) -> &Arc<NameDict> {
        &self.dict
    }

    /// The transaction manager.
    pub fn txns(&self) -> &Arc<TxnManager> {
        &self.txns
    }

    /// The buffer pool (for stats).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Begin a transaction.
    pub fn begin(&self) -> Result<Txn> {
        Ok(self.txns.begin()?)
    }

    /// The shared query worker pool.
    pub fn executor(&self) -> &crate::executor::QueryExecutor {
        &self.executor
    }

    /// The shared query-plan cache.
    pub fn plan_cache(&self) -> &crate::executor::PlanCache {
        &self.plan_cache
    }

    /// Plan + execute an XPath query over `column`, through the plan cache
    /// and the worker pool. Returns `(hits, stats, explain)`.
    pub fn query(
        &self,
        table: &Arc<BaseTable>,
        column: &Arc<XmlColumn>,
        path: &rx_xpath::Path,
        prefer_nodeid: bool,
    ) -> Result<(
        Vec<crate::access::QueryHit>,
        crate::access::AccessStats,
        String,
    )> {
        crate::access::run_query_with(
            Some(&self.executor),
            Some(&self.plan_cache),
            table,
            column,
            &self.dict,
            path,
            prefer_nodeid,
        )
    }

    /// [`Database::query`] under the §5.1 DocID-locking protocol: all
    /// candidate S locks are taken in `txn` before evaluation fans out.
    pub fn query_locked(
        &self,
        txn: &Txn,
        table: &Arc<BaseTable>,
        column: &Arc<XmlColumn>,
        path: &rx_xpath::Path,
        prefer_nodeid: bool,
    ) -> Result<(Vec<crate::access::QueryHit>, crate::access::AccessStats)> {
        crate::access::run_query_locked_with(
            Some(&self.executor),
            Some(&self.plan_cache),
            txn,
            table,
            column,
            &self.dict,
            path,
            prefer_nodeid,
        )
    }

    /// Snapshot the engine's internal counters. Cheap (a few atomic loads
    /// and two short mutex holds) — safe to call from a stats endpoint on
    /// every request.
    pub fn stats(&self) -> DbStats {
        let (buffer_hits, buffer_misses, buffer_evictions, buffer_writebacks) =
            self.pool.stats.snapshot();
        let (lock_waits, lock_timeouts, lock_deadlocks) = self.txns.locks().stats.snapshot();
        let wal = self.txns.wal();
        let wal_stats = wal.stats.snapshot();
        DbStats {
            buffer_hits,
            buffer_misses,
            buffer_evictions,
            buffer_writebacks,
            buffer_resident: self.pool.resident() as u64,
            buffer_shards: self.pool.shard_count() as u64,
            buffer_contention: self
                .pool
                .stats
                .contention
                .load(std::sync::atomic::Ordering::Relaxed),
            wal_bytes: wal.bytes_written(),
            wal_records: wal.records_written(),
            wal_fsyncs: wal_stats.fsyncs,
            wal_group_commits: wal_stats.group_commits,
            wal_batch_max: wal_stats.batch_records_max,
            wal_durable_lsn: wal.durable_lsn(),
            wal_durable_lag: wal.durable_lag(),
            lock_waits,
            lock_timeouts,
            lock_deadlocks,
            active_txns: self.txns.active_count() as u64,
            query_workers: self.executor.workers() as u64,
            parallel_queries: self.executor.parallel_queries(),
            plan_cache_hits: self.plan_cache.hits(),
            plan_cache_misses: self.plan_cache.misses(),
            plan_cache_entries: self.plan_cache.len() as u64,
            doc_cache_hits: self.doc_cache.hits(),
            doc_cache_misses: self.doc_cache.misses(),
            doc_cache_evictions: self.doc_cache.evictions(),
            doc_cache_bytes: self.doc_cache.resident_bytes(),
        }
    }

    /// The shared document record cache (disabled when
    /// [`DbConfig::doc_cache_bytes`] is 0).
    pub fn doc_cache(&self) -> &Arc<crate::doccache::DocCache> {
        &self.doc_cache
    }

    fn allocate_space(&self) -> Result<Arc<TableSpace>> {
        let id = self.catalog.bump_counter(K_NEXT_SPACE)? as u32;
        TableSpace::create(
            self.pool.clone(),
            id,
            Self::make_backend(&self.storage, id)?,
        )
        .map_err(EngineError::from)
    }

    fn open_space(&self, id: u32) -> Result<Arc<TableSpace>> {
        TableSpace::open(
            self.pool.clone(),
            id,
            Self::make_backend(&self.storage, id)?,
        )
        .map_err(EngineError::from)
    }

    // -- tables -------------------------------------------------------------

    /// Create a base table.
    pub fn create_table(
        &self,
        name: &str,
        columns: &[(&str, ColumnKind)],
    ) -> Result<Arc<BaseTable>> {
        if self.catalog.contains(&k_table(name)) {
            return Err(EngineError::AlreadyExists {
                kind: "table",
                name: name.to_string(),
            });
        }
        let id = self.catalog.bump_counter(K_NEXT_TABLE)? as u32;
        let base_space = self.allocate_space()?;
        let base_space_id = base_space.id();
        let heap = HeapTable::create(base_space.clone())?;
        let docid_index = BTree::create(base_space, DOCID_INDEX_ANCHOR)?;
        let mut defs = Vec::new();
        let mut xml_columns = Vec::new();
        let mut col_spaces: Vec<u32> = Vec::new();
        for (pos, (cname, kind)) in columns.iter().enumerate() {
            defs.push(ColumnDef {
                name: (*cname).to_string(),
                kind: *kind,
            });
            if *kind == ColumnKind::Xml {
                let space = self.allocate_space()?;
                col_spaces.push(space.id());
                let xml = XmlTable::create(space)?;
                xml.set_doc_cache(Arc::clone(&self.doc_cache));
                xml_columns.push(Arc::new(XmlColumn {
                    name: (*cname).to_string(),
                    position: pos,
                    xml,
                    indexes: RwLock::new(Vec::new()),
                    ft_indexes: RwLock::new(Vec::new()),
                }));
            } else {
                col_spaces.push(0);
            }
        }
        // Persist the definition.
        let mut e = Enc::new();
        e.u32(id).u32(base_space_id).varint(defs.len() as u64);
        for (i, c) in defs.iter().enumerate() {
            e.str(&c.name)
                .u8(match c.kind {
                    ColumnKind::Str => 0,
                    ColumnKind::Xml => 1,
                })
                .u32(col_spaces[i]);
        }
        self.catalog.put(&k_table(name), &e.into_bytes())?;
        let table = Arc::new(BaseTable {
            def: TableDef {
                id,
                name: name.to_string(),
                columns: defs,
            },
            heap,
            docid_index,
            xml_columns,
            base_space: base_space_id,
        });
        self.tables
            .write()
            .insert(name.to_string(), Arc::clone(&table));
        // DDL is durable immediately.
        self.pool.flush_all()?;
        Ok(table)
    }

    fn load_table(&self, name: &str) -> Result<Arc<BaseTable>> {
        if let Some(t) = self.tables.read().get(name) {
            return Ok(Arc::clone(t));
        }
        let bytes = self
            .catalog
            .get(&k_table(name))
            .ok_or_else(|| EngineError::NotFound {
                kind: "table",
                name: name.to_string(),
            })?;
        let mut d = Dec::new(&bytes);
        let id = d.u32()?;
        let base_space_id = d.u32()?;
        let ncols = d.varint()? as usize;
        let mut defs = Vec::with_capacity(ncols);
        let mut xml_cols_raw = Vec::new();
        for pos in 0..ncols {
            let cname = d.str()?.to_string();
            let kind = if d.u8()? == 1 {
                ColumnKind::Xml
            } else {
                ColumnKind::Str
            };
            let space = d.u32()?;
            if kind == ColumnKind::Xml {
                xml_cols_raw.push((cname.clone(), pos, space));
            }
            defs.push(ColumnDef { name: cname, kind });
        }
        let base_space = self.open_space(base_space_id)?;
        let heap = HeapTable::open(base_space.clone())?;
        let docid_index = BTree::open(base_space, DOCID_INDEX_ANCHOR)?;
        let mut xml_columns = Vec::new();
        for (cname, pos, space) in xml_cols_raw {
            let xml = XmlTable::open(self.open_space(space)?)?;
            xml.set_doc_cache(Arc::clone(&self.doc_cache));
            let col = Arc::new(XmlColumn {
                name: cname.clone(),
                position: pos,
                xml,
                indexes: RwLock::new(Vec::new()),
                ft_indexes: RwLock::new(Vec::new()),
            });
            // Load value indexes for this column.
            for (key, val) in self.catalog.list_prefix(&k_index(name, "")) {
                let mut d = Dec::new(&val);
                let col_name = d.str()?.to_string();
                if col_name != cname {
                    continue;
                }
                let path_text = d.str()?.to_string();
                let key_type = KeyType::from_u8(d.u8()?)?;
                let space_id = d.u32()?;
                let idx_name = String::from_utf8_lossy(&key)
                    .rsplit('/')
                    .next()
                    .unwrap_or_default()
                    .to_string();
                let vi = ValueIndex::open(
                    self.open_space(space_id)?,
                    ValueIndexDef {
                        name: idx_name,
                        path_text,
                        key_type,
                        space_id,
                    },
                )?;
                col.indexes.write().push(Arc::new(vi));
            }
            // Load full-text indexes for this column.
            for (key, val) in self.catalog.list_prefix(&k_ft_index(name, "")) {
                let mut d = Dec::new(&val);
                let col_name = d.str()?.to_string();
                if col_name != cname {
                    continue;
                }
                let path_text = d.str()?.to_string();
                let space_id = d.u32()?;
                let idx_name = String::from_utf8_lossy(&key)
                    .rsplit('/')
                    .next()
                    .unwrap_or_default()
                    .to_string();
                let fti = FullTextIndex::open(
                    self.open_space(space_id)?,
                    FullTextIndexDef {
                        name: idx_name,
                        path_text,
                        space_id,
                    },
                )?;
                col.ft_indexes.write().push(Arc::new(fti));
            }
            xml_columns.push(col);
        }
        let table = Arc::new(BaseTable {
            def: TableDef {
                id,
                name: name.to_string(),
                columns: defs,
            },
            heap,
            docid_index,
            xml_columns,
            base_space: base_space_id,
        });
        self.tables
            .write()
            .insert(name.to_string(), Arc::clone(&table));
        Ok(table)
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> Result<Arc<BaseTable>> {
        self.load_table(name)
    }

    /// Drop a base table: remove its definition, index definitions, and doc
    /// counter from the catalog, evict it from the table map, and invalidate
    /// every cached plan that compiled against it. The table's spaces are
    /// abandoned rather than reclaimed (recovery skips WAL records whose
    /// space is no longer reachable from the catalog).
    pub fn drop_table(&self, name: &str) -> Result<()> {
        let t = self.load_table(name)?;
        let index_keys: Vec<Vec<u8>> = self
            .catalog
            .list_prefix(&k_index(name, ""))
            .into_iter()
            .map(|(k, _)| k)
            .chain(
                self.catalog
                    .list_prefix(&k_ft_index(name, ""))
                    .into_iter()
                    .map(|(k, _)| k),
            )
            .collect();
        for key in index_keys {
            self.catalog.delete(&key)?;
        }
        self.catalog.delete(&k_table(name))?;
        self.catalog.delete(&k_doccnt(t.def.id))?;
        self.tables.write().remove(name);
        self.plan_cache.invalidate_table(t.def.id);
        // A recreated table may reuse the dropped table's document IDs, so
        // cached snapshots (and writer epoch state) for its spaces must go.
        for col in t.xml_columns() {
            self.doc_cache.invalidate_space(col.xml.space_id());
        }
        // DDL is durable immediately.
        self.pool.flush_all()?;
        Ok(())
    }

    // -- value indexes --------------------------------------------------------

    /// `CREATE INDEX … ON table(column) GENERATE KEY USING XPATH 'path' AS type`
    /// (§3.3). The table must currently be empty of committed documents for
    /// simplicity of the reproduction (create indexes before loading).
    pub fn create_value_index(
        &self,
        table: &str,
        index_name: &str,
        column: &str,
        path: &str,
        key_type: KeyType,
    ) -> Result<Arc<ValueIndex>> {
        let t = self.table(table)?;
        let col = t.xml_column(column)?;
        if self.catalog.contains(&k_index(table, index_name)) {
            return Err(EngineError::AlreadyExists {
                kind: "index",
                name: index_name.to_string(),
            });
        }
        let space = self.allocate_space()?;
        let space_id = space.id();
        let vi = Arc::new(ValueIndex::create(
            space,
            ValueIndexDef {
                name: index_name.to_string(),
                path_text: path.to_string(),
                key_type,
                space_id,
            },
        )?);
        let mut e = Enc::new();
        e.str(column).str(path).u8(key_type as u8).u32(space_id);
        self.catalog
            .put(&k_index(table, index_name), &e.into_bytes())?;
        col.indexes.write().push(Arc::clone(&vi));
        // Cached plans chose their access path before this index existed.
        self.plan_cache.invalidate_table(t.def.id);
        self.pool.flush_all()?;
        Ok(vi)
    }

    /// `CREATE FULLTEXT INDEX … ON table(column) USING XPATH 'path'` — the
    /// §6 future-work extension: an inverted term index over the string
    /// values of the nodes the path selects.
    pub fn create_fulltext_index(
        &self,
        table: &str,
        index_name: &str,
        column: &str,
        path: &str,
    ) -> Result<Arc<FullTextIndex>> {
        let t = self.table(table)?;
        let col = t.xml_column(column)?;
        if self.catalog.contains(&k_ft_index(table, index_name)) {
            return Err(EngineError::AlreadyExists {
                kind: "full-text index",
                name: index_name.to_string(),
            });
        }
        let space = self.allocate_space()?;
        let space_id = space.id();
        let fti = Arc::new(FullTextIndex::create(
            space,
            FullTextIndexDef {
                name: index_name.to_string(),
                path_text: path.to_string(),
                space_id,
            },
        )?);
        let mut e = Enc::new();
        e.str(column).str(path).u32(space_id);
        self.catalog
            .put(&k_ft_index(table, index_name), &e.into_bytes())?;
        col.ft_indexes.write().push(Arc::clone(&fti));
        // Cached plans chose their access path before this index existed.
        self.plan_cache.invalidate_table(t.def.id);
        self.pool.flush_all()?;
        Ok(fti)
    }

    // -- schemas --------------------------------------------------------------

    /// Register an XML schema: compile to the binary format and store it in
    /// the catalog (Fig. 4).
    pub fn register_schema(&self, name: &str, xsd_text: &str) -> Result<()> {
        let doc = parse_xsd(xsd_text)?;
        let bin = compile_schema(&doc)?;
        // Validate the binary loads.
        let program = SchemaProgram::load(&bin)?;
        self.catalog.put(&k_schema(name), &bin)?;
        self.schemas
            .write()
            .insert(name.to_string(), Arc::new(program));
        self.pool.flush_space(0)?;
        Ok(())
    }

    /// Load a registered schema program.
    pub fn schema(&self, name: &str) -> Result<Arc<SchemaProgram>> {
        if let Some(p) = self.schemas.read().get(name) {
            return Ok(Arc::clone(p));
        }
        let bin = self
            .catalog
            .get(&k_schema(name))
            .ok_or_else(|| EngineError::NotFound {
                kind: "schema",
                name: name.to_string(),
            })?;
        let program = Arc::new(SchemaProgram::load(&bin)?);
        self.schemas
            .write()
            .insert(name.to_string(), Arc::clone(&program));
        Ok(program)
    }

    // -- rows -------------------------------------------------------------

    /// Insert a row within `txn`. XML column values are parsed (optionally
    /// validated), packed, and indexed in the same transaction.
    pub fn insert_row_txn(
        &self,
        txn: &Txn,
        table: &Arc<BaseTable>,
        values: &[ColValue],
    ) -> Result<DocId> {
        if values.len() != table.def.columns.len() {
            return Err(EngineError::Invalid(format!(
                "expected {} column values, got {}",
                table.def.columns.len(),
                values.len()
            )));
        }
        let doc = self.catalog.bump_counter(&k_doccnt(table.def.id))?;
        // §5.1: X-lock the document (plus table intent) so no reader ever
        // sees a partially inserted document.
        txn.lock(
            &rx_storage::LockName::Table(table.def.id),
            rx_storage::LockMode::IX,
        )?;
        txn.lock(
            &rx_storage::LockName::Document {
                table: table.def.id,
                doc,
            },
            rx_storage::LockMode::X,
        )?;
        let mut base_values = Vec::with_capacity(values.len());
        for (cv, cd) in values.iter().zip(&table.def.columns) {
            match (cv, cd.kind) {
                (ColValue::Str(s), ColumnKind::Str) => base_values.push(s.clone()),
                (ColValue::Xml(text), ColumnKind::Xml) => {
                    let col = table.xml_column(&cd.name)?;
                    self.store_document(txn, col, doc, text, None)?;
                    base_values.push(String::new());
                }
                (ColValue::XmlValidated { text, schema }, ColumnKind::Xml) => {
                    let col = table.xml_column(&cd.name)?;
                    let program = self.schema(schema)?;
                    self.store_document(txn, col, doc, text, Some(&program))?;
                    base_values.push(String::new());
                }
                _ => {
                    return Err(EngineError::Invalid(format!(
                        "value kind mismatch for column {}",
                        cd.name
                    )))
                }
            }
        }
        // Base row + DocID index.
        let row = encode_base_row(doc, &base_values);
        let rid = table.heap.insert(&row)?;
        txn.log(&LogRecord::HeapInsert {
            txn: txn.id(),
            space: table.base_space,
            rid,
            data: row.clone(),
        })?;
        {
            let heap = Arc::clone(&table.heap);
            let space = table.base_space;
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapDelete {
                    txn: ctx.txn(),
                    space,
                    rid,
                    before: row.clone(),
                })?;
                heap.delete(rid)?;
                Ok(())
            }));
        }
        let dkey = doc.to_be_bytes().to_vec();
        let prev = table.docid_index.insert(&dkey, rid.to_u64())?;
        txn.log(&LogRecord::IndexInsert {
            txn: txn.id(),
            space: table.base_space,
            anchor: DOCID_INDEX_ANCHOR as u32,
            key: dkey.clone(),
            value: rid.to_u64(),
            prev,
        })?;
        {
            let index = Arc::clone(&table.docid_index);
            let space = table.base_space;
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::IndexDelete {
                    txn: ctx.txn(),
                    space,
                    anchor: DOCID_INDEX_ANCHOR as u32,
                    key: dkey.clone(),
                    value: rid.to_u64(),
                })?;
                index.delete(&dkey)?;
                Ok(())
            }));
        }
        Ok(doc)
    }

    /// Insert a row in its own transaction.
    pub fn insert_row(&self, table: &Arc<BaseTable>, values: &[ColValue]) -> Result<DocId> {
        let txn = self.begin()?;
        let t = self.table(&table.def.name)?;
        let doc = self.insert_row_txn(&txn, &t, values)?;
        txn.commit()?;
        Ok(doc)
    }

    /// Parse/validate, pack, and index one document into an XML column.
    fn store_document(
        &self,
        txn: &Txn,
        col: &XmlColumn,
        doc: DocId,
        text: &str,
        schema: Option<&SchemaProgram>,
    ) -> Result<()> {
        let indexes = col.indexes();
        let ft_indexes = col.fulltext_indexes();
        let trees: Vec<QueryTree> = indexes.iter().map(|i| i.tree.clone()).collect();
        let ft_trees: Vec<QueryTree> = ft_indexes.iter().map(|i| i.tree.clone()).collect();
        let mut keygen = IndexKeyGen::new(&trees, &self.dict);
        let mut ft_keygen = FullTextKeyGen::new(&ft_trees, &self.dict);
        let mut observer = crate::pack::TeeObserver {
            a: &mut keygen,
            b: &mut ft_keygen,
        };
        let xml = &col.xml;
        let mut err: Option<EngineError> = None;
        {
            let mut sink = |rec: crate::pack::PackedRecord| -> Result<()> {
                xml.insert_record(txn, doc, &rec)?;
                Ok(())
            };
            let mut packer =
                Packer::with_target(self.config.target_record_size, &mut sink, &mut observer);
            let parse_result = match schema {
                None => Parser::new(&self.dict).parse(text, &mut packer),
                Some(program) => {
                    // Validating path: schema VM feeds the packer directly
                    // (streaming, no intermediate tree) via a tee through an
                    // annotated token stream.
                    let stream = rx_xml::schema::validate_to_tokens(text, program, &self.dict)?;
                    stream.replay(&mut packer)
                }
            };
            if let Err(e) = parse_result {
                err = Some(e.into());
            } else if let Err(e) = packer.finish() {
                err = Some(e);
            }
        }
        if let Some(e) = err {
            return Err(e);
        }
        let all_items = keygen.finish()?;
        for (vi, items) in indexes.iter().zip(&all_items) {
            vi.insert_entries(txn, doc, xml, items)?;
        }
        let ft_items = ft_keygen.finish()?;
        for (fti, items) in ft_indexes.iter().zip(&ft_items) {
            fti.insert_entries(txn, doc, xml, items)?;
        }
        self.persist_dict_if_grown()?;
        Ok(())
    }

    /// Fetch a base row by DocID.
    pub fn fetch_row(&self, table: &Arc<BaseTable>, doc: DocId) -> Result<Option<Row>> {
        match table.row_rid(doc)? {
            Some(rid) => {
                let rec = table.heap.fetch(rid)?;
                Ok(Some(decode_base_row(&rec)?))
            }
            None => Ok(None),
        }
    }

    /// Delete a row (and its XML documents + index entries) within `txn`.
    pub fn delete_row_txn(&self, txn: &Txn, table: &Arc<BaseTable>, doc: DocId) -> Result<bool> {
        txn.lock(
            &rx_storage::LockName::Table(table.def.id),
            rx_storage::LockMode::IX,
        )?;
        txn.lock(
            &rx_storage::LockName::Document {
                table: table.def.id,
                doc,
            },
            rx_storage::LockMode::X,
        )?;
        let Some(rid) = table.row_rid(doc)? else {
            return Ok(false);
        };
        for col in &table.xml_columns {
            // Re-derive full-text postings by replaying the stored document.
            let ft_indexes = col.fulltext_indexes();
            if !ft_indexes.is_empty() {
                let trees: Vec<QueryTree> = ft_indexes.iter().map(|i| i.tree.clone()).collect();
                let mut keygen = FullTextKeyGen::new(&trees, &self.dict);
                let mut t = crate::traverse::Traverser::new(&col.xml, doc);
                struct FtObs<'a, 'q, 'd>(&'a mut FullTextKeyGen<'q, 'd>);
                impl crate::traverse::IdEventSink for FtObs<'_, '_, '_> {
                    fn id_event(
                        &mut self,
                        id: &rx_xml::NodeId,
                        ev: rx_xml::event::Event<'_>,
                    ) -> Result<()> {
                        self.0.node(id, &ev)
                    }
                }
                t.run(&mut FtObs(&mut keygen))?;
                let all_items = keygen.finish()?;
                for (fti, items) in ft_indexes.iter().zip(&all_items) {
                    fti.delete_entries(txn, doc, items)?;
                }
            }
            // Re-derive value index keys by replaying the stored document.
            let indexes = col.indexes();
            if !indexes.is_empty() {
                let trees: Vec<QueryTree> = indexes.iter().map(|i| i.tree.clone()).collect();
                let mut keygen = IndexKeyGen::new(&trees, &self.dict);
                let mut t = crate::traverse::Traverser::new(&col.xml, doc);
                struct Obs<'a, 'q, 'd>(&'a mut IndexKeyGen<'q, 'd>);
                impl crate::traverse::IdEventSink for Obs<'_, '_, '_> {
                    fn id_event(
                        &mut self,
                        id: &rx_xml::NodeId,
                        ev: rx_xml::event::Event<'_>,
                    ) -> Result<()> {
                        self.0.node(id, &ev)
                    }
                }
                t.run(&mut Obs(&mut keygen))?;
                let all_items = keygen.finish()?;
                for (vi, items) in indexes.iter().zip(&all_items) {
                    vi.delete_entries(txn, doc, items)?;
                }
            }
            col.xml.delete_document(txn, doc)?;
        }
        // Base row + DocID index entry.
        let before = table.heap.fetch(rid)?;
        table.heap.delete(rid)?;
        txn.log(&LogRecord::HeapDelete {
            txn: txn.id(),
            space: table.base_space,
            rid,
            before: before.clone(),
        })?;
        {
            let heap = Arc::clone(&table.heap);
            let space = table.base_space;
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::HeapInsert {
                    txn: ctx.txn(),
                    space,
                    rid,
                    data: before.clone(),
                })?;
                heap.insert_at(rid, &before)?;
                Ok(())
            }));
        }
        let dkey = doc.to_be_bytes().to_vec();
        if let Some(v) = table.docid_index.delete(&dkey)? {
            txn.log(&LogRecord::IndexDelete {
                txn: txn.id(),
                space: table.base_space,
                anchor: DOCID_INDEX_ANCHOR as u32,
                key: dkey.clone(),
                value: v,
            })?;
            let index = Arc::clone(&table.docid_index);
            let space = table.base_space;
            txn.push_undo(Box::new(move |ctx| {
                ctx.log(&LogRecord::IndexInsert {
                    txn: ctx.txn(),
                    space,
                    anchor: DOCID_INDEX_ANCHOR as u32,
                    key: dkey.clone(),
                    value: v,
                    prev: None,
                })?;
                index.insert(&dkey, v)?;
                Ok(())
            }));
        }
        Ok(true)
    }

    /// Delete a row in its own transaction.
    pub fn delete_row(&self, table: &Arc<BaseTable>, doc: DocId) -> Result<bool> {
        let txn = self.begin()?;
        let ok = self.delete_row_txn(&txn, table, doc)?;
        txn.commit()?;
        Ok(ok)
    }

    /// Re-derive every value-index and full-text entry of one document in
    /// `column` (used around sub-document updates: derive → delete, mutate,
    /// derive → insert). Returns per-index item lists.
    fn derive_index_items(&self, col: &XmlColumn, doc: DocId) -> Result<DerivedItems> {
        let indexes = col.indexes();
        let ft_indexes = col.fulltext_indexes();
        let trees: Vec<QueryTree> = indexes.iter().map(|i| i.tree.clone()).collect();
        let ft_trees: Vec<QueryTree> = ft_indexes.iter().map(|i| i.tree.clone()).collect();
        let mut keygen = IndexKeyGen::new(&trees, &self.dict);
        let mut ft_keygen = FullTextKeyGen::new(&ft_trees, &self.dict);
        struct Obs<'a, 'b, 'q, 'd> {
            a: &'a mut IndexKeyGen<'q, 'd>,
            b: &'b mut FullTextKeyGen<'q, 'd>,
        }
        impl crate::traverse::IdEventSink for Obs<'_, '_, '_, '_> {
            fn id_event(
                &mut self,
                id: &rx_xml::NodeId,
                ev: rx_xml::event::Event<'_>,
            ) -> Result<()> {
                self.a.node(id, &ev)?;
                self.b.node(id, &ev)
            }
        }
        let mut t = crate::traverse::Traverser::new(&col.xml, doc);
        t.run(&mut Obs {
            a: &mut keygen,
            b: &mut ft_keygen,
        })?;
        Ok((keygen.finish()?, ft_keygen.finish()?))
    }

    /// Run a sub-document mutation under the §5.2 locking protocol with
    /// value-index and full-text maintenance: old index entries derived from
    /// the pre-image are removed, the mutation runs, and entries are
    /// re-derived from the post-image — all in `txn`.
    pub fn update_document_txn(
        &self,
        txn: &Txn,
        table: &Arc<BaseTable>,
        column: &str,
        doc: DocId,
        subtree: &rx_xml::NodeId,
        mutate: impl FnOnce(&Txn, &XmlTable) -> Result<crate::update::UpdateStats>,
    ) -> Result<crate::update::UpdateStats> {
        let col = table.xml_column(column)?;
        crate::conc::lock_subtree_exclusive(txn, table.def.id, doc, subtree)?;
        let has_indexes = !col.indexes().is_empty() || !col.fulltext_indexes().is_empty();
        let before = if has_indexes {
            Some(self.derive_index_items(col, doc)?)
        } else {
            None
        };
        if let Some((vals, fts)) = &before {
            for (vi, items) in col.indexes().iter().zip(vals) {
                vi.delete_entries(txn, doc, items)?;
            }
            for (fti, items) in col.fulltext_indexes().iter().zip(fts) {
                fti.delete_entries(txn, doc, items)?;
            }
        }
        let stats = mutate(txn, &col.xml)?;
        if before.is_some() {
            let (vals, fts) = self.derive_index_items(col, doc)?;
            for (vi, items) in col.indexes().iter().zip(&vals) {
                vi.insert_entries(txn, doc, &col.xml, items)?;
            }
            for (fti, items) in col.fulltext_indexes().iter().zip(&fts) {
                fti.insert_entries(txn, doc, &col.xml, items)?;
            }
        }
        Ok(stats)
    }

    /// Serialize a stored document back to XML text (§4.4 task 1).
    pub fn serialize_document(
        &self,
        table: &Arc<BaseTable>,
        column: &str,
        doc: DocId,
    ) -> Result<String> {
        let col = table.xml_column(column)?;
        let mut ser = rx_xml::Serializer::new(&self.dict);
        let mut sink = crate::traverse::DropIds(&mut ser);
        crate::traverse::Traverser::new(&col.xml, doc).run(&mut sink)?;
        Ok(ser.finish())
    }

    /// Persist the name dictionary if it has grown since the last persist,
    /// flushing the catalog space so the names are durable *before* the
    /// commit record of any document that uses them (packed records store
    /// integer name IDs, so the dictionary must never lag the data).
    fn persist_dict_if_grown(&self) -> Result<()> {
        let mut last = self.dict_persisted.lock();
        let now = (self.dict.string_count(), self.dict.qname_count());
        if now == *last {
            return Ok(());
        }
        let (sb, qb) = encode_dict(&self.dict);
        self.catalog.put(K_DICT_STRINGS, &sb)?;
        self.catalog.put(K_DICT_QNAMES, &qb)?;
        self.pool.flush_space(0)?;
        *last = now;
        Ok(())
    }

    /// Flush all dirty pages, persist the name dictionary, and truncate the
    /// WAL (a checkpoint).
    pub fn checkpoint(&self) -> Result<()> {
        // Safe truncation floor: the engine mutates pages before logging, so
        // every record assigned up to here has its page effect in the pool
        // before the flush below reads it — once the flush succeeds those
        // effects are durable as page images. Records of still-active
        // transactions must survive regardless (recovery may need their undo
        // chain, and their commit may be staged concurrently), so the floor
        // backs up to the oldest active Begin LSN.
        let barrier = self.txns.wal().current_lsn() + 1;
        let keep_from = self
            .txns
            .oldest_active_lsn()
            .map_or(barrier, |lsn| lsn.min(barrier));
        let (sb, qb) = encode_dict(&self.dict);
        self.catalog.put(K_DICT_STRINGS, &sb)?;
        self.catalog.put(K_DICT_QNAMES, &qb)?;
        self.pool.flush_all()?;
        self.txns.wal().checkpoint(keep_from)?;
        Ok(())
    }
}

fn encode_dict(dict: &NameDict) -> (Vec<u8>, Vec<u8>) {
    let (strings, qnames) = dict.export();
    let mut es = Enc::new();
    es.varint(strings.len() as u64);
    for s in &strings {
        es.str(s);
    }
    let mut eq = Enc::new();
    eq.varint(qnames.len() as u64);
    for q in &qnames {
        eq.u32(q.uri).u32(q.prefix).u32(q.local);
    }
    (es.into_bytes(), eq.into_bytes())
}

fn decode_dict(sb: &[u8], qb: &[u8]) -> Result<NameDict> {
    let mut d = Dec::new(sb);
    let n = d.varint()? as usize;
    let mut strings = Vec::with_capacity(n);
    for _ in 0..n {
        strings.push(d.str()?.to_string());
    }
    let mut d = Dec::new(qb);
    let n = d.varint()? as usize;
    let mut qnames = Vec::with_capacity(n);
    for _ in 0..n {
        qnames.push(rx_xml::QName {
            uri: d.u32()?,
            prefix: d.u32()?,
            local: d.u32()?,
        });
    }
    Ok(NameDict::import(&strings, &qnames))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_table(db: &Arc<Database>) -> Arc<BaseTable> {
        db.create_table(
            "products",
            &[("sku", ColumnKind::Str), ("doc", ColumnKind::Xml)],
        )
        .unwrap()
    }

    const DOC1: &str = r#"<Catalog><Product><ProductName>Widget</ProductName><RegPrice>9.99</RegPrice></Product></Catalog>"#;
    const DOC2: &str = r#"<Catalog><Product><ProductName>Gadget</ProductName><RegPrice>120</RegPrice><Discount>0.25</Discount></Product></Catalog>"#;

    #[test]
    fn config_validation_rejects_zeroed_knobs() {
        let bad_pool = DbConfig {
            buffer_pages: 0,
            ..DbConfig::default()
        };
        assert!(matches!(
            Database::create_in_memory_with(bad_pool),
            Err(EngineError::Invalid(_))
        ));
        let bad_timeout = DbConfig {
            lock_timeout: Duration::ZERO,
            ..DbConfig::default()
        };
        assert!(matches!(
            Database::create_in_memory_with(bad_timeout),
            Err(EngineError::Invalid(_))
        ));
        let bad_record = DbConfig {
            target_record_size: 0,
            ..DbConfig::default()
        };
        assert!(matches!(
            Database::create_in_memory_with(bad_record),
            Err(EngineError::Invalid(_))
        ));
        let bad_workers = DbConfig {
            query_workers: 0,
            ..DbConfig::default()
        };
        assert!(matches!(
            Database::create_in_memory_with(bad_workers),
            Err(EngineError::Invalid(_))
        ));
        assert!(DbConfig::default().validate().is_ok());
    }

    #[test]
    fn plan_cache_serves_repeats_and_invalidates_on_ddl() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        db.create_value_index(
            "products",
            "price_idx",
            "doc",
            "/Catalog/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        for doc in [DOC1, DOC2] {
            db.insert_row(
                &t,
                &[ColValue::Str("s".into()), ColValue::Xml(doc.to_string())],
            )
            .unwrap();
        }
        let col = t.xml_column("doc").unwrap();
        let path = rx_xpath::XPathParser::new()
            .parse("/Catalog/Product[RegPrice > 50]")
            .unwrap();
        let (hits, _, explain) = db.query(&t, col, &path, false).unwrap();
        assert_eq!(hits.len(), 1);
        assert!(explain.contains("list access"), "got plan: {explain}");
        let (again, _, _) = db.query(&t, col, &path, false).unwrap();
        assert_eq!(again, hits);
        let s = db.stats();
        assert_eq!(s.plan_cache_misses, 1);
        assert_eq!(s.plan_cache_hits, 1);
        assert_eq!(s.plan_cache_entries, 1);
        assert_eq!(s.query_workers, db.config.query_workers as u64);
        // Index DDL drops every cached plan for the table: a plan chosen
        // under the old index set may no longer be the right one.
        db.create_fulltext_index("products", "name_ft", "doc", "/Catalog/Product/ProductName")
            .unwrap();
        let s = db.stats();
        assert_eq!(s.plan_cache_entries, 0);
        let (replanned, _, _) = db.query(&t, col, &path, false).unwrap();
        assert_eq!(replanned, hits);
        assert_eq!(db.stats().plan_cache_misses, 2);
    }

    #[test]
    fn drop_table_removes_definition_and_cached_plans() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        db.create_value_index(
            "products",
            "price_idx",
            "doc",
            "/Catalog/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        db.insert_row(
            &t,
            &[ColValue::Str("a".into()), ColValue::Xml(DOC1.to_string())],
        )
        .unwrap();
        let col = t.xml_column("doc").unwrap();
        let path = rx_xpath::XPathParser::new().parse("/Catalog").unwrap();
        db.query(&t, col, &path, false).unwrap();
        assert_eq!(db.stats().plan_cache_entries, 1);
        db.drop_table("products").unwrap();
        assert_eq!(db.stats().plan_cache_entries, 0);
        assert!(matches!(
            db.table("products"),
            Err(EngineError::NotFound { .. })
        ));
        // The name (and its index names) are free again, and the fresh
        // table starts empty.
        let t2 = catalog_table(&db);
        db.create_value_index(
            "products",
            "price_idx",
            "doc",
            "/Catalog/Product/RegPrice",
            KeyType::Double,
        )
        .unwrap();
        let (hits, _, _) = db
            .query(&t2, t2.xml_column("doc").unwrap(), &path, false)
            .unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn stats_snapshot_moves_with_activity() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        let before = db.stats();
        db.insert_row(
            &t,
            &[
                ColValue::Str("SKU-1".into()),
                ColValue::Xml(DOC1.to_string()),
            ],
        )
        .unwrap();
        let after = db.stats();
        assert!(after.wal_records > before.wal_records);
        assert!(after.wal_bytes > before.wal_bytes);
        assert!(after.buffer_hits + after.buffer_misses > 0);
        assert_eq!(after.active_txns, 0);
        let txn = db.begin().unwrap();
        assert_eq!(db.stats().active_txns, 1);
        txn.commit().unwrap();
        assert_eq!(db.stats().active_txns, 0);
    }

    #[test]
    fn insert_fetch_serialize() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        let d1 = db
            .insert_row(
                &t,
                &[
                    ColValue::Str("SKU-1".into()),
                    ColValue::Xml(DOC1.to_string()),
                ],
            )
            .unwrap();
        let d2 = db
            .insert_row(
                &t,
                &[
                    ColValue::Str("SKU-2".into()),
                    ColValue::Xml(DOC2.to_string()),
                ],
            )
            .unwrap();
        assert_ne!(d1, d2);
        let row = db.fetch_row(&t, d1).unwrap().unwrap();
        assert_eq!(row.values[0], "SKU-1");
        assert_eq!(db.serialize_document(&t, "doc", d1).unwrap(), DOC1);
        assert_eq!(db.serialize_document(&t, "doc", d2).unwrap(), DOC2);
    }

    #[test]
    fn value_index_maintained_on_insert_and_delete() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        let vi = db
            .create_value_index(
                "products",
                "price_idx",
                "doc",
                "/Catalog/Product/RegPrice",
                KeyType::Double,
            )
            .unwrap();
        let d1 = db
            .insert_row(
                &t,
                &[ColValue::Str("a".into()), ColValue::Xml(DOC1.to_string())],
            )
            .unwrap();
        let _d2 = db
            .insert_row(
                &t,
                &[ColValue::Str("b".into()), ColValue::Xml(DOC2.to_string())],
            )
            .unwrap();
        assert_eq!(vi.len().unwrap(), 2);
        assert!(db.delete_row(&t, d1).unwrap());
        assert_eq!(vi.len().unwrap(), 1);
        assert!(db.fetch_row(&t, d1).unwrap().is_none());
        assert!(!db.delete_row(&t, d1).unwrap());
    }

    #[test]
    fn validated_insert_annotates_and_rejects() {
        let db = Database::create_in_memory().unwrap();
        let t = catalog_table(&db);
        db.register_schema(
            "cat",
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
                <xs:element name="Catalog">
                  <xs:complexType><xs:sequence>
                    <xs:element name="Product" maxOccurs="unbounded">
                      <xs:complexType><xs:sequence>
                        <xs:element name="ProductName" type="xs:string"/>
                        <xs:element name="RegPrice" type="xs:decimal"/>
                        <xs:element name="Discount" type="xs:double" minOccurs="0"/>
                      </xs:sequence></xs:complexType>
                    </xs:element>
                  </xs:sequence></xs:complexType>
                </xs:element>
               </xs:schema>"#,
        )
        .unwrap();
        let ok = db.insert_row(
            &t,
            &[
                ColValue::Str("v".into()),
                ColValue::XmlValidated {
                    text: DOC1.to_string(),
                    schema: "cat".into(),
                },
            ],
        );
        assert!(ok.is_ok());
        let bad = db.insert_row(
            &t,
            &[
                ColValue::Str("w".into()),
                ColValue::XmlValidated {
                    text: "<Catalog><Oops/></Catalog>".to_string(),
                    schema: "cat".into(),
                },
            ],
        );
        assert!(bad.is_err());
        // The failed insert must leave nothing behind.
        let col = t.xml_column("doc").unwrap();
        let rids = col.xml_table().document_rids(2).unwrap();
        assert!(rids.is_empty(), "aborted insert left records: {rids:?}");
    }

    #[test]
    fn persists_across_reopen_with_recovery() {
        let dir = std::env::temp_dir().join(format!("rxdb-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (d1, d2);
        {
            let db = Database::create_dir(&dir).unwrap();
            let t = catalog_table(&db);
            db.create_value_index(
                "products",
                "price_idx",
                "doc",
                "/Catalog/Product/RegPrice",
                KeyType::Double,
            )
            .unwrap();
            d1 = db
                .insert_row(
                    &t,
                    &[ColValue::Str("a".into()), ColValue::Xml(DOC1.to_string())],
                )
                .unwrap();
            d2 = db
                .insert_row(
                    &t,
                    &[ColValue::Str("b".into()), ColValue::Xml(DOC2.to_string())],
                )
                .unwrap();
            db.checkpoint().unwrap();
        }
        let db = Database::open_dir(&dir).unwrap();
        let t = db.table("products").unwrap();
        assert_eq!(db.serialize_document(&t, "doc", d1).unwrap(), DOC1);
        assert_eq!(db.serialize_document(&t, "doc", d2).unwrap(), DOC2);
        let col = t.xml_column("doc").unwrap();
        assert_eq!(col.indexes().len(), 1);
        assert_eq!(col.indexes()[0].len().unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_uncheckpointed_commits() {
        let dir = std::env::temp_dir().join(format!("rxdb-rec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let d1;
        {
            let db = Database::create_dir(&dir).unwrap();
            let t = catalog_table(&db);
            // Checkpoint the catalog state (table definition), then insert
            // WITHOUT flushing pages — simulating a crash after commit.
            db.checkpoint().unwrap();
            d1 = db
                .insert_row(
                    &t,
                    &[ColValue::Str("a".into()), ColValue::Xml(DOC1.to_string())],
                )
                .unwrap();
            // No checkpoint: dirty pages are lost; the WAL survives.
        }
        let db = Database::open_with(&dir, DbConfig::default()).unwrap();
        let t = db.table("products").unwrap();
        assert_eq!(
            db.serialize_document(&t, "doc", d1).unwrap(),
            DOC1,
            "committed document must survive crash recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
